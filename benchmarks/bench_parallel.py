"""Shared-memory executor benchmark -- thin wrapper over ``repro bench grid``.

The workload declarations (the same exact-rectangle query batch replayed
through the serial, pickle-based process-pool and zero-copy shared-memory
engines with the result cache disabled, bit-for-bit gates against serial,
the shared-process-beats-process gate, and the per-phase span probe) live
in :class:`repro.bench.suites.ParallelSuite`; this script runs that one
suite and writes the unified ``repro-bench-grid/1`` artifact to
``BENCH_parallel.json``::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # full (200k points)
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI-sized

Equivalent to ``repro bench grid --suite parallel``; see
``docs/benchmarks.md`` for the schema and the regression workflow.
Exits non-zero if any answer differs from serial or shared-process fails
to beat the pickle-based backend.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.grid import run_grid  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (smaller dataset, fewer rounds)")
    parser.add_argument("--n", type=int, default=None,
                        help="dataset size (default: 200000, quick: 60000)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="batch replays per executor (default: 4, quick: 3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the pooled executors (default: 2)")
    parser.add_argument("--output", default="BENCH_parallel.json",
                        help="destination JSON path")
    parser.add_argument("--history", default=None,
                        help="append this run to a PERF_HISTORY.jsonl trajectory")
    args = parser.parse_args(argv)
    overrides = {key: value for key, value in
                 (("n", args.n), ("rounds", args.rounds),
                  ("workers", args.workers)) if value is not None}
    return run_grid(names=["parallel"], quick=args.quick, output=args.output,
                    history=args.history, overrides=overrides or None)


if __name__ == "__main__":
    raise SystemExit(main())
