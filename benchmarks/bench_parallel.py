"""Benchmark: zero-copy shared-memory execution vs the pickle-based process pool.

Replays the same exact-rectangle query batch through three engines over one
large weighted dataset:

* ``serial``         -- the reference: inline shard tasks, no serialization;
* ``process``        -- the pickle-based ``ProcessPoolExecutor`` backend
                        (full shard point payloads pickled per task);
* ``shared-process`` -- :mod:`repro.parallel`: the dataset published once as
                        shared memory, tasks carrying only index descriptors,
                        exact weighted shards resolved as raw array slices.

Each engine solves the batch for ``--rounds`` rounds with the result cache
disabled: round 1 is the cold publish/pickle round, later rounds model the
serving/streaming steady state (repeated re-solves over a fixed sharding --
the dirty-shard monitors' and invalidation-heavy serving loops' pattern)
where the process backend re-pickles every payload and the shared store
sends nothing.

Differential gate: every compared answer must be **bit-for-bit** identical
to the serial engine's (value and placement), and ``shared-process`` must
beat ``process`` on total wall-clock.  Exit status 1 on any violation, so CI
can gate on it.  Results land in ``BENCH_parallel.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # full (200k points)
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.obs as obs  # noqa: E402
from repro.datasets import uniform_weighted_points  # noqa: E402
from repro.engine import Query, QueryEngine  # noqa: E402

EXECUTORS = ("serial", "process", "shared-process")


def trace_phase_summary(points, weights, queries, workers: int) -> Dict:
    """Replay the batch once on ``shared-process`` with tracing forced on
    and return the per-phase span summary.  Runs outside the timed rounds,
    so the gated comparison above never pays for span capture."""
    sink = obs.ListSink()
    obs.add_sink(sink)
    obs.set_enabled(True)
    try:
        engine = QueryEngine(points, weights=weights,
                             executor="shared-process", workers=workers,
                             cache_size=0)
        try:
            engine.solve_batch(queries)
        finally:
            engine.close()
    finally:
        obs.set_enabled(None)
        obs.remove_sink(sink)
    return {
        "executor": "shared-process",
        "queries": len(queries),
        "spans": obs.summarize_spans(sink.spans()),
    }


def run_engine(label: str, points, weights, queries, warmup, rounds: int,
               workers: int) -> Dict:
    """Time one executor over ``rounds`` replays of the batch; returns
    timings plus the last round's results for the differential check."""
    engine = QueryEngine(points, weights=weights, executor=label,
                         workers=workers, cache_size=0)
    try:
        setup_started = time.perf_counter()
        engine.solve(warmup)  # start the pool, pay one plan outside the timer
        setup = time.perf_counter() - setup_started
        round_times: List[float] = []
        results = []
        for _ in range(rounds):
            started = time.perf_counter()
            results = engine.solve_batch(queries)
            round_times.append(time.perf_counter() - started)
        stats = dict(engine.stats)
    finally:
        engine.close()
    return {
        "setup_seconds": round(setup, 4),
        "round_seconds": [round(t, 4) for t in round_times],
        "total_seconds": round(sum(round_times), 4),
        "cold_seconds": round(round_times[0], 4),
        "warm_seconds": (round(sum(round_times[1:]) / (len(round_times) - 1), 4)
                         if len(round_times) > 1 else None),
        "shards_solved": stats["shards_solved"],
        "results": [
            {"query": q.describe(), "value": r.value,
             "center": list(r.center) if r.center is not None else None}
            for q, r in zip(queries, results)
        ],
        "_raw_results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (smaller dataset, fewer rounds)")
    parser.add_argument("--n", type=int, default=None,
                        help="dataset size (default: 200000, quick: 60000)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="batch replays per executor (default: 4, quick: 3)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count for the pooled executors")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="artifact path")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (60_000 if args.quick else 200_000)
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 4)
    points, weights = uniform_weighted_points(n, dim=2, extent=100.0, seed=7)
    # Distinct extents so every query gets its own sharding plan: nothing is
    # answered from a cache, and the cold round pays one publish per plan.
    queries = [Query.rectangle(2.0, 1.6), Query.rectangle(2.5, 2.0)]
    warmup = Query.rectangle(3.0, 2.4)

    print("bench_parallel: n=%d rounds=%d workers=%d (%s)"
          % (n, rounds, args.workers, "quick" if args.quick else "full"))
    report = {
        "benchmark": "parallel",
        "workload": {
            "kind": "uniform-weighted",
            "n": n,
            "dim": 2,
            "extent": 100.0,
            "seed": 7,
            "queries": [q.describe() for q in queries],
            "rounds": rounds,
            "workers": args.workers,
        },
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "executors": {},
    }

    raw = {}
    for label in EXECUTORS:
        measured = run_engine(label, points, weights, queries, warmup,
                              rounds, args.workers)
        raw[label] = measured.pop("_raw_results")
        report["executors"][label] = measured
        print("  %-15s total=%.2fs cold=%.2fs warm=%s"
              % (label, measured["total_seconds"], measured["cold_seconds"],
                 "%.2fs" % measured["warm_seconds"]
                 if measured["warm_seconds"] is not None else "n/a"))

    mismatches = []
    for label in EXECUTORS[1:]:
        for query, reference, result in zip(queries, raw["serial"], raw[label]):
            if (result.value != reference.value
                    or result.center != reference.center):
                mismatches.append("%s on %s: value=%r center=%r vs serial "
                                  "value=%r center=%r"
                                  % (label, query.describe(), result.value,
                                     result.center, reference.value,
                                     reference.center))
    speedup = (report["executors"]["process"]["total_seconds"]
               / report["executors"]["shared-process"]["total_seconds"])
    warm_process = report["executors"]["process"]["warm_seconds"]
    warm_shared = report["executors"]["shared-process"]["warm_seconds"]
    report["comparison"] = {
        "bit_for_bit_vs_serial": not mismatches,
        "mismatches": mismatches,
        "speedup_shared_vs_process_total": round(speedup, 3),
        "speedup_shared_vs_process_warm": (
            round(warm_process / warm_shared, 3)
            if warm_process and warm_shared else None),
    }

    span_summary = trace_phase_summary(points, weights, queries, args.workers)
    report["span_summary"] = span_summary
    heaviest = sorted(span_summary["spans"].items(),
                      key=lambda kv: -kv[1]["total_s"])[:3]
    print("[spans] heaviest phases: %s"
          % ", ".join("%s %.0fms" % (name, 1e3 * stats["total_s"])
                      for name, stats in heaviest))

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print("wrote %s" % args.out)
    print("speedup shared-process vs process: %.2fx total, %s warm"
          % (speedup,
             "%.2fx" % report["comparison"]["speedup_shared_vs_process_warm"]
             if report["comparison"]["speedup_shared_vs_process_warm"] else "n/a"))

    if mismatches:
        print("FAIL: executors disagree with the serial engine:", file=sys.stderr)
        for line in mismatches:
            print("  " + line, file=sys.stderr)
        return 1
    if speedup <= 1.0:
        print("FAIL: shared-process (%.2fs) did not beat the pickle-based "
              "process backend (%.2fs)"
              % (report["executors"]["shared-process"]["total_seconds"],
                 report["executors"]["process"]["total_seconds"]),
              file=sys.stderr)
        return 1
    print("OK: bit-for-bit agreement and shared-process beats process")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
