"""E14 -- colored box MaxRS: the Technique 2 extension (Section 7, open problem 1).

Times, on the same trajectory workload, the [ZGH+22]-style exact baseline,
the box arrangement solver (Lemma 4.2 analogue), the grid-localised
output-sensitive solver (Theorem 4.6 analogue) and the (1 - eps)
color-sampling solver (Theorem 1.6 analogue), and asserts the exact variants
agree with the baseline.
"""

import pytest

from repro.boxes import (
    colored_maxrs_box,
    colored_maxrs_box_arrangement,
    colored_maxrs_box_output_sensitive,
)
from repro.exact import colored_maxrs_rectangle_exact

WIDTH = 2.0
HEIGHT = 2.0


@pytest.mark.benchmark(group="E14-colored-boxes")
def test_zgh_style_exact_baseline(benchmark, trajectory_cloud_colored_boxes):
    points, colors = trajectory_cloud_colored_boxes
    result = benchmark(
        lambda: colored_maxrs_rectangle_exact(points, width=WIDTH, height=HEIGHT, colors=colors)
    )
    assert result.value >= 1


@pytest.mark.benchmark(group="E14-colored-boxes")
def test_box_arrangement(benchmark, trajectory_cloud_colored_boxes):
    points, colors = trajectory_cloud_colored_boxes
    result = benchmark(
        lambda: colored_maxrs_box_arrangement(points, width=WIDTH, height=HEIGHT, colors=colors)
    )
    assert result.value >= 1


@pytest.mark.benchmark(group="E14-colored-boxes")
def test_box_output_sensitive(benchmark, trajectory_cloud_colored_boxes):
    points, colors = trajectory_cloud_colored_boxes
    result = benchmark(
        lambda: colored_maxrs_box_output_sensitive(points, width=WIDTH, height=HEIGHT,
                                                   colors=colors)
    )
    assert result.value >= 1


@pytest.mark.benchmark(group="E14-colored-boxes")
def test_box_color_sampling(benchmark, trajectory_cloud_colored_boxes):
    points, colors = trajectory_cloud_colored_boxes
    result = benchmark(
        lambda: colored_maxrs_box(points, width=WIDTH, height=HEIGHT, epsilon=0.25,
                                  colors=colors, seed=5)
    )
    assert result.value >= 1


@pytest.mark.benchmark(group="E14-colored-boxes")
def test_extension_matches_baseline(benchmark, trajectory_cloud_colored_boxes):
    points, colors = trajectory_cloud_colored_boxes
    baseline = colored_maxrs_rectangle_exact(points, width=WIDTH, height=HEIGHT, colors=colors)
    result = benchmark(
        lambda: colored_maxrs_box_output_sensitive(points, width=WIDTH, height=HEIGHT,
                                                   colors=colors)
    )
    assert result.value == baseline.value
