"""E5 -- (1 - eps)-approximate colored disk MaxRS via color sampling (Theorem 1.6).

Times the final color-sampling algorithm (both the exact-cut-off branch and a
forced sampling branch) against the exact sweep on a controlled-opt instance.
"""

import pytest

from repro.core import colored_maxrs_disk
from repro.exact import colored_maxrs_disk_sweep


@pytest.mark.benchmark(group="E5-colored-disk-eps")
def test_final_algorithm_default_cutoff(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark.pedantic(
        lambda: colored_maxrs_disk(points, radius=1.0, epsilon=0.25, colors=colors, seed=10),
        rounds=3, iterations=1,
    )
    assert result.value >= (1 - 0.25) * opt - 1e-9


@pytest.mark.benchmark(group="E5-colored-disk-eps")
def test_final_algorithm_forced_sampling(benchmark, planted_colored_150):
    """A small sampling constant forces the color-sampling branch."""
    points, colors, opt = planted_colored_150
    result = benchmark.pedantic(
        lambda: colored_maxrs_disk(points, radius=1.0, epsilon=0.3, colors=colors,
                                   seed=11, sampling_constant=0.25),
        rounds=3, iterations=1,
    )
    assert result.value >= (1 - 0.3) * opt - 1e-9


@pytest.mark.benchmark(group="E5-colored-disk-eps")
def test_exact_sweep_reference(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark(lambda: colored_maxrs_disk_sweep(points, radius=1.0, colors=colors))
    assert result.value == opt
