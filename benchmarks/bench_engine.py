"""Engine benchmarks -- thin wrapper over ``repro bench grid``.

The workload declarations (direct one-shot solver calls vs the sharded
:class:`repro.engine.QueryEngine` on the linearithmic rectangle and
quadratic disk workloads, value-equality checks, and the full-size
acceptance gate that the sharded disk path beats the direct sweep
outright) live in :class:`repro.bench.suites.EngineSuite`; this script
runs that one suite and writes the unified ``repro-bench-grid/1``
artifact to ``BENCH_engine.json``::

    PYTHONPATH=src python benchmarks/bench_engine.py            # 12k points
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI-sized

Equivalent to ``repro bench grid --suite engine``; see
``docs/benchmarks.md`` for the schema and the regression workflow.
Exits non-zero if any engine answer differs from the direct sweep.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.grid import run_grid  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (4k points)")
    parser.add_argument("--output", default="BENCH_engine.json",
                        help="destination JSON path")
    parser.add_argument("--history", default=None,
                        help="append this run to a PERF_HISTORY.jsonl trajectory")
    args = parser.parse_args(argv)
    return run_grid(names=["engine"], quick=args.quick, output=args.output,
                    history=args.history)


if __name__ == "__main__":
    raise SystemExit(main())
