"""Engine benchmarks: serial solver calls vs the sharded execution engine.

Two workloads of >= 10k points compare the direct (serial, one-shot) solver
path against :class:`repro.engine.QueryEngine`:

* **rectangle**: the direct sweep is already ``O(n log n)``, so the sharded
  path competes on partitioning overhead vs smaller per-shard sweeps and
  should sit at parity on one core;
* **disk**: the direct sweep is ``O(n^2 log n)`` -- more than a minute at
  12k points -- while the sharded engine solves the same instance exactly in
  seconds, because per-shard cost is quadratic only in the (small) shard
  population.  This is the headline: on quadratic solvers sharding reduces
  total *work*, so the engine wins serially, before any executor
  parallelism (which this container, often 1-core, cannot show) kicks in.
  ``test_sharded_faster_than_serial_disk`` times both paths on the same
  12k-point workload and asserts the sharded one is faster outright.

Each benchmarked engine call clears the LRU first so the solvers (not the
cache) are measured; ``test_cached_query_is_instant`` measures the cache-hit
path by itself.
"""

import time

import pytest

from repro.approx import maxrs_disk_grid_decomposition
from repro.datasets import clustered_points, uniform_weighted_points
from repro.engine import Query, QueryEngine
from repro.exact import maxrs_disk_exact, maxrs_rectangle_exact

N_LARGE = 12_000
RECT_QUERY = Query.rectangle(2.0, 2.0)
DISK_QUERY = Query.disk(1.0)


@pytest.fixture(scope="module")
def rect_cloud_12k():
    """12k weighted uniform points in [0, 60]^2 (rectangle workload)."""
    return uniform_weighted_points(N_LARGE, dim=2, extent=60.0, seed=211)


@pytest.fixture(scope="module")
def disk_cloud_12k():
    """12k points in [0, 80]^2 with six broad hotspots (disk workload)."""
    return clustered_points(N_LARGE, dim=2, extent=80.0, clusters=6,
                            cluster_std=2.0, seed=212)


def _engine_call(engine, query):
    def run():
        engine.clear_cache()
        return engine.solve(query)
    return run


# --------------------------------------------------------------------------- #
# rectangle, 12k points: direct O(n log n) sweep vs the engine
# --------------------------------------------------------------------------- #

@pytest.mark.benchmark(group="engine-rectangle-12k")
def test_rectangle_direct_serial(benchmark, rect_cloud_12k):
    points, weights = rect_cloud_12k
    result = benchmark.pedantic(
        lambda: maxrs_rectangle_exact(points, width=2.0, height=2.0, weights=weights),
        rounds=3, iterations=1)
    assert result.value > 0


@pytest.mark.benchmark(group="engine-rectangle-12k")
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_rectangle_sharded(benchmark, rect_cloud_12k, backend):
    points, weights = rect_cloud_12k
    reference = maxrs_rectangle_exact(points, width=2.0, height=2.0, weights=weights)
    with QueryEngine(points, weights=weights, executor=backend, workers=4) as engine:
        result = benchmark.pedantic(_engine_call(engine, RECT_QUERY), rounds=3, iterations=1)
    assert abs(result.value - reference.value) < 1e-9


# --------------------------------------------------------------------------- #
# disk, 12k points: the engine vs the serial exact alternatives
# --------------------------------------------------------------------------- #

@pytest.mark.benchmark(group="engine-disk-12k")
@pytest.mark.parametrize("backend", ["serial", "process"])
def test_disk_sharded(benchmark, disk_cloud_12k, backend):
    with QueryEngine(disk_cloud_12k, executor=backend, workers=4) as engine:
        result = benchmark.pedantic(_engine_call(engine, DISK_QUERY), rounds=2, iterations=1)
    assert result.value > 0 and result.exact


@pytest.mark.benchmark(group="engine-disk-12k")
def test_disk_grid_decomposition_serial(benchmark, disk_cloud_12k):
    """The seed's shifted-grid trick, the strongest pre-engine serial baseline
    (it still re-solves every cell under 4 grid shifts; the engine's halo
    replication is cheaper)."""
    result = benchmark.pedantic(
        lambda: maxrs_disk_grid_decomposition(disk_cloud_12k, radius=1.0),
        rounds=1, iterations=1)
    assert result.value > 0


@pytest.mark.benchmark(group="engine-cache")
def test_cached_query_is_instant(benchmark, disk_cloud_12k):
    with QueryEngine(disk_cloud_12k, executor="serial") as engine:
        engine.solve(DISK_QUERY)  # warm the cache
        result = benchmark(lambda: engine.solve(DISK_QUERY))
        assert engine.stats["cache_hits"] > 0
    assert result.value > 0


# --------------------------------------------------------------------------- #
# the acceptance check: sharded not slower than serial at >= 10k points
# --------------------------------------------------------------------------- #

def test_sharded_faster_than_serial_disk(disk_cloud_12k):
    """Time the direct ``O(n^2 log n)`` sweep and the sharded engine on the
    *same* 12k-point workload: identical values, sharded strictly faster."""
    t0 = time.perf_counter()
    direct = maxrs_disk_exact(disk_cloud_12k, radius=1.0)
    direct_time = time.perf_counter() - t0

    with QueryEngine(disk_cloud_12k, executor="serial") as engine:
        t0 = time.perf_counter()
        sharded = engine.solve(DISK_QUERY)
        sharded_time = time.perf_counter() - t0

    assert sharded.exact
    assert sharded.value == direct.value
    assert sharded_time < direct_time, (
        "sharded engine (%.2fs) should beat the direct serial sweep (%.2fs) "
        "on %d points" % (sharded_time, direct_time, N_LARGE)
    )
