"""Streaming monitor benchmarks -- thin wrapper over ``repro bench grid``.

The workload declarations (a localized churn phase over a large live set,
replayed through the exact-recompute baseline, the dirty-shard monitors --
python / batched-auto / threaded -- and the multi-query shared store, with
post-churn differential checks and the full-size 5x acceptance gate) live
in :class:`repro.bench.suites.StreamingSuite`; this script runs that one
suite and writes the unified ``repro-bench-grid/1`` artifact to
``BENCH_streaming.json``::

    PYTHONPATH=src python benchmarks/bench_streaming.py            # 50k live
    PYTHONPATH=src python benchmarks/bench_streaming.py --quick    # CI-sized

Equivalent to ``repro bench grid --suite streaming``; see
``docs/benchmarks.md`` for the schema and the regression workflow.
Exits non-zero if any exact monitor disagrees on the post-churn optimum.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.grid import run_grid  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (5k live points)")
    parser.add_argument("--output", default="BENCH_streaming.json",
                        help="destination JSON path")
    parser.add_argument("--history", default=None,
                        help="append this run to a PERF_HISTORY.jsonl trajectory")
    args = parser.parse_args(argv)
    return run_grid(names=["streaming"], quick=args.quick, output=args.output,
                    history=args.history)


if __name__ == "__main__":
    raise SystemExit(main())
