"""Streaming monitor benchmarks: recompute vs dirty-shard vs multi-query.

Builds a large live point set, then times a churn phase (localized
inserts/deletes with a hotspot query every ``query_every`` events) through
each monitor configuration:

* ``recompute``            -- :class:`ExactRecomputeMonitor`, the from-scratch
                              baseline (NumPy sweep at these sizes);
* ``dirty-shard-python``   -- :class:`ShardedMaxRSMonitor`, pure-Python
                              per-shard sweeps;
* ``dirty-shard-batched``  -- the same monitor with ``backend="auto"``
                              (planner-resolved per shard) and batched
                              ingestion -- the configuration the acceptance
                              target measures;
* ``dirty-shard-threaded`` -- batched + thread-pool executor for the
                              per-query dirty-shard fan-out;
* ``multi-query-shared``   -- :class:`MultiQueryMonitor` answering three
                              standing queries from one shard store, against
                              ``independent-monitors`` running one replica
                              per query.  Throughput is near parity (the
                              shared max-halo tiling slightly inflates the
                              smaller queries' shards, offsetting the shared
                              ingestion/bookkeeping saving); the shared
                              store's wins are the ``1/N`` live-state
                              footprint and snapshot consistency (every
                              standing query answered at the same stream
                              prefix), both recorded in the JSON.

Writes ``BENCH_streaming.json`` (schema ``bench_streaming/v1``) with
events/sec and mean query latency per variant, plus the headline speedups::

    PYTHONPATH=src python benchmarks/bench_streaming.py            # 50k live
    PYTHONPATH=src python benchmarks/bench_streaming.py --quick    # CI-sized

The script exits non-zero if any exact monitor disagrees with the recompute
baseline on the final hotspot value, so it doubles as a coarse differential
check at sizes the unit suite cannot afford.

This file is a standalone script, not a pytest-benchmark module: the JSON
artifact is the point, and the 50k-point live set is too heavy for the
default benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List

from repro.core.sampling import default_rng
from repro.datasets import UpdateEvent, UpdateStream, uniform_points
from repro.engine import Query
from repro.streaming import (
    ExactRecomputeMonitor,
    MultiQueryMonitor,
    ShardedMaxRSMonitor,
)

RADIUS = 1.0


def build_workload(n_live: int, churn_events: int, seed: int = 1):
    """Base insertions reaching ``n_live`` live points, then a churn phase of
    alternating localized inserts and deletions keeping the live set steady.

    The base field is uniform at constant density (the extent scales with
    ``sqrt(n)``), so the recompute baseline's per-query cost grows with the
    live-set size while each spatial tile stays modest.  The churn is
    *localized*: inserts cluster around a handful of active sites (hotspots
    forming) and deletions pick among points near those same sites (the same
    hotspots fading) -- the Section 1.1 monitoring shape, where activity
    concentrates in a few regions while the quiet majority of the live set
    is untouched.  This is exactly the regime dirty-shard monitoring is
    built for; globally scattered deletions would dirty O(events) tiles per
    query and erode the gap.
    """
    extent = math.sqrt(n_live) * 0.8
    base = uniform_points(n_live, dim=2, extent=extent, seed=seed)
    rng = default_rng(seed + 1)
    events: List[UpdateEvent] = [
        UpdateEvent(kind="insert", point=point) for point in base
    ]
    sites = [base[int(rng.integers(0, n_live))] for _ in range(8)]
    site_reach = 4.5
    local_alive = [
        index for index, (x, y) in enumerate(base)
        if any((x - sx) ** 2 + (y - sy) ** 2 <= site_reach ** 2 for sx, sy in sites)
    ]
    for _ in range(churn_events):
        if rng.random() < 0.5 and local_alive:
            position = int(rng.integers(0, len(local_alive)))
            events.append(UpdateEvent(kind="delete", target=local_alive.pop(position)))
        else:
            site = sites[int(rng.integers(0, len(sites)))]
            point = (float(site[0] + rng.normal(0.0, 1.5)),
                     float(site[1] + rng.normal(0.0, 1.5)))
            events.append(UpdateEvent(kind="insert", point=point))
            local_alive.append(len(events) - 1)
    return UpdateStream(events), n_live


def measure(monitor, events, n_base, churn_events, query_every, batch_size,
            latency_probes):
    """Ingest the base set untimed, then time the churn phase and a few
    single-update query latencies.  Returns (metrics, final_value)."""
    base, churn = events[:n_base], events[n_base:n_base + churn_events]
    monitor.apply_batch(base, 0)
    monitor.current()  # settle: pay the initial full solve outside the clock

    started = time.perf_counter()
    snapshots = monitor.apply_stream(churn, chunk_size=batch_size,
                                     query_every=query_every,
                                     start_index=n_base)
    elapsed = time.perf_counter() - started

    # Post-churn answer, before any latency-probe inserts perturb the live
    # set: this is what the cross-monitor differential check compares.
    after = monitor.current()
    if isinstance(after, dict):
        value_after_churn = {name: result.value for name, result in after.items()}
    else:
        value_after_churn = after.value

    # Query latency after one localized update (steady-state monitoring).
    probe_event = UpdateEvent(kind="insert", point=churn[0].point or (0.0, 0.0))
    latencies = []
    for probe in range(latency_probes):
        monitor.apply(probe_event, len(events) + 1000 + probe)
        probe_started = time.perf_counter()
        monitor.current()
        latencies.append(time.perf_counter() - probe_started)
    mean_latency = (round(sum(latencies) / len(latencies), 6)
                    if latencies else None)

    metrics = {
        "events": len(churn),
        "queries": len(snapshots),
        "seconds": round(elapsed, 6),
        "events_per_sec": round(len(churn) / elapsed, 3) if elapsed > 0 else None,
        "mean_query_latency": mean_latency,
        "value_after_churn": value_after_churn,
    }
    if hasattr(monitor, "close"):
        monitor.close()
    return metrics, value_after_churn


def run(quick: bool = False, output: str = "BENCH_streaming.json") -> int:
    n_live = 5_000 if quick else 50_000
    query_every = 50 if quick else 100
    baseline_events = 2 * query_every          # recompute queries are seconds each
    sharded_events = 600 if quick else 4_000
    batch_size = 256
    latency_probes = 2 if quick else 3

    stream, n_base = build_workload(n_live, max(baseline_events, sharded_events))
    events = list(stream)
    print("workload: %d live points, churn batches of %d, query every %d events"
          % (n_live, batch_size, query_every))

    # A mixed standing set (two disk radii plus a rectangle) sharing one
    # max-halo tiling -- the deployment shape MultiQueryMonitor exists for.
    multi_queries = {
        "disk-r": Query.disk(RADIUS),
        "disk-0.9r": Query.disk(0.9 * RADIUS),
        "rect-1x1": Query.rectangle(RADIUS, RADIUS),
    }
    variants = [
        ("recompute", baseline_events,
         lambda: ExactRecomputeMonitor(radius=RADIUS)),
        ("dirty-shard-python", sharded_events,
         lambda: ShardedMaxRSMonitor(radius=RADIUS, backend="python")),
        ("dirty-shard-batched", sharded_events,
         lambda: ShardedMaxRSMonitor(radius=RADIUS, backend="auto")),
        ("dirty-shard-threaded", sharded_events,
         lambda: ShardedMaxRSMonitor(radius=RADIUS, backend="auto",
                                     executor="thread", workers=4)),
        ("multi-query-shared", sharded_events,
         lambda: MultiQueryMonitor(multi_queries)),
    ]

    results: List[Dict] = []
    by_variant: Dict[str, Dict] = {}
    disagreements: List[str] = []

    for name, churn_events, factory in variants:
        monitor = factory()
        metrics, after_value = measure(monitor, events, n_base, churn_events,
                                       query_every, batch_size, latency_probes)
        entry = {"variant": name, "n_live": n_live, **metrics}
        results.append(entry)
        by_variant[name] = entry
        shown = max(after_value.values()) if isinstance(after_value, dict) else after_value
        print("%-22s %8d events %8.3fs  %10.0f ev/s  query %7.1f ms  value=%g"
              % (name, metrics["events"], metrics["seconds"],
                 metrics["events_per_sec"], 1e3 * metrics["mean_query_latency"],
                 shown))

    # Differential checks: every exact monitor that replayed the same churn
    # must agree bit-for-bit on the post-churn optimum.
    def _check(label, got, expected):
        if not math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-9):
            disagreements.append("%s: %r vs %r" % (label, got, expected))

    sharded_reference = by_variant["dirty-shard-python"]["value_after_churn"]
    for name in ("dirty-shard-batched", "dirty-shard-threaded"):
        _check("%s vs dirty-shard-python" % name,
               by_variant[name]["value_after_churn"], sharded_reference)
    _check("multi-query disk-r vs dirty-shard-python",
           by_variant["multi-query-shared"]["value_after_churn"]["disk-r"],
           sharded_reference)
    # Recompute ran a shorter churn; replay that same short churn through a
    # fresh dirty-shard monitor so the sharded path is checked against the
    # from-scratch baseline too.
    _, cross_value = measure(
        ShardedMaxRSMonitor(radius=RADIUS), events, n_base, baseline_events,
        query_every, batch_size, 0)
    _check("dirty-shard vs recompute (short churn)",
           cross_value, by_variant["recompute"]["value_after_churn"])

    # Independent monitors matching multi-query's standing set: one
    # single-query MultiQueryMonitor replica per standing query, so the
    # comparison isolates the shared-shard-pass saving.
    independent_values = {}
    for qname, query in multi_queries.items():
        solo = MultiQueryMonitor({qname: query})
        metrics, value = measure(solo, events, n_base, sharded_events,
                                 query_every, batch_size, 0)
        independent_values[qname] = metrics
    independent_elapsed = sum(m["seconds"] for m in independent_values.values())
    independent_entry = {
        "variant": "independent-monitors",
        "n_live": n_live,
        "events": sharded_events,
        "queries": by_variant["multi-query-shared"]["queries"],
        "seconds": round(independent_elapsed, 6),
        "events_per_sec": round(sharded_events / independent_elapsed, 3),
        "mean_query_latency": None,
        "value_after_churn": None,
        "live_state_replication": len(multi_queries),  # vs 1.0 for the shared store
        "wall_clock_note": "sum of three single-query replicas' churn phases",
    }
    results.append(independent_entry)
    by_variant["independent-monitors"] = independent_entry
    print("%-22s %8d events %8.3fs  %10.0f ev/s  (3 separate monitors)"
          % ("independent-monitors", sharded_events, independent_elapsed,
             independent_entry["events_per_sec"]))
    for qname, replica_metrics in independent_values.items():
        _check("independent %s vs multi-query-shared" % qname,
               replica_metrics["value_after_churn"][qname],
               by_variant["multi-query-shared"]["value_after_churn"][qname])

    speedups = {
        "dirty_shard_batched_vs_recompute": round(
            by_variant["dirty-shard-batched"]["events_per_sec"]
            / by_variant["recompute"]["events_per_sec"], 2),
        "dirty_shard_python_vs_recompute": round(
            by_variant["dirty-shard-python"]["events_per_sec"]
            / by_variant["recompute"]["events_per_sec"], 2),
        "multi_query_vs_independent_throughput": round(
            by_variant["multi-query-shared"]["events_per_sec"]
            / by_variant["independent-monitors"]["events_per_sec"], 2),
        "multi_query_live_state_saving": float(len(multi_queries)),
        "query_latency_recompute_over_dirty": round(
            by_variant["recompute"]["mean_query_latency"]
            / by_variant["dirty-shard-batched"]["mean_query_latency"], 1),
    }
    print("speedups: %s" % speedups)

    payload = {
        "schema": "bench_streaming/v1",
        "config": {"quick": quick, "n_live": n_live, "query_every": query_every,
                   "batch_size": batch_size, "radius": RADIUS,
                   "baseline_events": baseline_events,
                   "sharded_events": sharded_events},
        "results": results,
        "speedups": speedups,
    }
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % output)

    if disagreements:
        print("MONITOR DISAGREEMENT:\n  " + "\n  ".join(disagreements), file=sys.stderr)
        return 1
    if not quick and speedups["dirty_shard_batched_vs_recompute"] < 5.0:
        # The 5x acceptance target is defined at the 50k-live full size; the
        # quick CI size is too small for the O(n^2) recompute gap to open.
        print("ACCEPTANCE MISS: dirty-shard batched is only %.1fx the recompute "
              "baseline (target: 5x)" % speedups["dirty_shard_batched_vs_recompute"],
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (5k live points)")
    parser.add_argument("--output", default="BENCH_streaming.json",
                        help="destination JSON path")
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output)


if __name__ == "__main__":
    raise SystemExit(main())
