"""E8 -- the Figure 1 scenario: exact baselines on a hotspot workload.

Times the classical exact solvers the paper builds on: the Imai--Asano /
Nandy--Bhattacharya rectangle sweep [IA83, NB95], the Chazelle--Lee style
disk sweep [CL86], the 1-d interval sweep, and Technique 1 as the approximate
alternative, all on the same weighted hotspot data.
"""

import pytest

from repro.core import max_range_sum_ball
from repro.exact import maxrs_disk_exact, maxrs_interval_exact, maxrs_rectangle_exact


@pytest.mark.benchmark(group="E8-baselines")
def test_rectangle_exact_sweep(benchmark, hotspot_cloud_250):
    points, weights = hotspot_cloud_250
    result = benchmark(lambda: maxrs_rectangle_exact(points, 2.0, 2.0, weights=weights))
    assert result.value > 0


@pytest.mark.benchmark(group="E8-baselines")
def test_disk_exact_sweep(benchmark, hotspot_cloud_250):
    points, weights = hotspot_cloud_250
    result = benchmark(lambda: maxrs_disk_exact(points, radius=1.0, weights=weights))
    assert result.value > 0


@pytest.mark.benchmark(group="E8-baselines")
def test_disk_technique1_approx(benchmark, hotspot_cloud_250):
    points, weights = hotspot_cloud_250
    result = benchmark(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=0.35, weights=weights, seed=12)
    )
    assert result.value > 0


@pytest.mark.benchmark(group="E8-baselines")
def test_interval_exact_sweep(benchmark, hotspot_cloud_250):
    points, weights = hotspot_cloud_250
    xs = [x for x, _ in points]
    result = benchmark(lambda: maxrs_interval_exact(xs, 2.0, weights=weights))
    assert result.value > 0


@pytest.mark.benchmark(group="E8-baselines")
def test_rectangle_contains_disk_value(benchmark, hotspot_cloud_250):
    """The 2x2 square contains the unit disk, so its optimum can only be larger."""
    points, weights = hotspot_cloud_250
    disk_value = maxrs_disk_exact(points, radius=1.0, weights=weights).value
    result = benchmark(lambda: maxrs_rectangle_exact(points, 2.0, 2.0, weights=weights))
    assert result.value >= disk_value - 1e-9
