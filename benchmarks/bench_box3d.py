"""E15 -- exact box MaxRS beyond the plane and the d >= 3 approximation regime.

Times the R^3 z-slab sweep baseline against the brute-force cross-check on a
small prefix, and the paper's d = 3 ball approximation (Theorem 1.2) on a
planted instance -- the regime where exact d-ball MaxRS (~n^d) is hopeless
and the dimension-friendly approximation is the only practical option.
"""

import pytest

from repro.core import max_range_sum_ball
from repro.datasets import planted_ball_instance
from repro.exact import maxrs_box3d_exact, maxrs_box_bruteforce

SIDES = (1.5, 1.5, 1.5)


@pytest.mark.benchmark(group="E15-boxes-3d")
def test_box3d_sweep(benchmark, points_3d_150):
    result = benchmark(lambda: maxrs_box3d_exact(points_3d_150, side_lengths=SIDES))
    assert result.value >= 1


@pytest.mark.benchmark(group="E15-boxes-3d")
def test_box3d_bruteforce_small_prefix(benchmark, points_3d_150):
    prefix = points_3d_150[:25]
    result = benchmark.pedantic(
        lambda: maxrs_box_bruteforce(prefix, side_lengths=SIDES),
        rounds=3, iterations=1,
    )
    assert result.value >= 1


@pytest.mark.benchmark(group="E15-boxes-3d")
def test_box3d_sweep_matches_bruteforce(benchmark, points_3d_150):
    prefix = points_3d_150[:25]
    expected = maxrs_box_bruteforce(prefix, side_lengths=SIDES).value
    result = benchmark(lambda: maxrs_box3d_exact(prefix, side_lengths=SIDES))
    assert result.value == pytest.approx(expected)


@pytest.mark.benchmark(group="E15-boxes-3d")
def test_ball_approximation_in_3d(benchmark):
    points, opt = planted_ball_instance(120, planted=15, dim=3, seed=42)
    result = benchmark.pedantic(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=0.45, seed=1),
        rounds=3, iterations=1,
    )
    assert result.value >= (0.5 - 0.45) * opt - 1e-9
