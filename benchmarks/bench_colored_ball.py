"""E3 -- colored (1/2 - eps)-approximate MaxRS with a d-ball (Theorem 1.5).

Times the colored Technique 1 solver against the exact O(n^2 log n) colored
sweep on the wildlife-trajectory workload the paper motivates colored MaxRS
with, plus the d = 3 case (where no exact baseline exists) on a planted
instance.
"""

import pytest

from repro.core import colored_maxrs_ball
from repro.datasets import planted_colored_instance
from repro.exact import colored_maxrs_disk_sweep


@pytest.mark.benchmark(group="E3-colored-ball")
def test_colored_technique1(benchmark, trajectory_cloud):
    points, colors = trajectory_cloud
    result = benchmark(
        lambda: colored_maxrs_ball(points, radius=1.0, epsilon=0.35, colors=colors, seed=6)
    )
    assert result.value >= 1


@pytest.mark.benchmark(group="E3-colored-ball")
def test_colored_exact_sweep_baseline(benchmark, trajectory_cloud):
    points, colors = trajectory_cloud
    result = benchmark(lambda: colored_maxrs_disk_sweep(points, radius=1.0, colors=colors))
    assert result.value >= 1


@pytest.mark.benchmark(group="E3-colored-ball")
def test_colored_technique1_guarantee(benchmark, trajectory_cloud):
    points, colors = trajectory_cloud
    exact_value = colored_maxrs_disk_sweep(points, radius=1.0, colors=colors).value
    result = benchmark(
        lambda: colored_maxrs_ball(points, radius=1.0, epsilon=0.3, colors=colors, seed=7)
    )
    assert result.value >= (0.5 - 0.3) * exact_value - 1e-9


@pytest.mark.benchmark(group="E3-colored-ball-3d")
def test_colored_technique1_dimension3(benchmark):
    points, colors, opt = planted_colored_instance(60, planted_colors=10, dim=3, seed=8)
    result = benchmark.pedantic(
        lambda: colored_maxrs_ball(points, radius=1.0, epsilon=0.45, colors=colors, seed=9),
        rounds=2, iterations=1,
    )
    assert result.value >= (0.5 - 0.45) * opt
