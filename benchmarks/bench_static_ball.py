"""E1 -- static (1/2 - eps)-approximate MaxRS with a d-ball (Theorem 1.2).

Times the Technique 1 solver against the exact disk sweep baseline on the
same weighted point cloud, and shows the epsilon dependence of the sampling
cost.  The paper's claim being reproduced: near-linear running time (the
exact sweep is quadratic) at the cost of a (1/2 - eps) guarantee.
"""

import pytest

from repro.core import max_range_sum_ball
from repro.exact import maxrs_disk_exact


@pytest.mark.benchmark(group="E1-static-ball")
def test_technique1_eps_040(benchmark, weighted_cloud_150):
    points, weights = weighted_cloud_150
    result = benchmark(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=0.4, weights=weights, seed=1)
    )
    assert result.value > 0


@pytest.mark.benchmark(group="E1-static-ball")
def test_technique1_eps_030(benchmark, weighted_cloud_150):
    points, weights = weighted_cloud_150
    result = benchmark.pedantic(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=0.3, weights=weights, seed=1),
        rounds=3, iterations=1,
    )
    assert result.value > 0


@pytest.mark.benchmark(group="E1-static-ball")
def test_exact_disk_baseline(benchmark, weighted_cloud_150):
    points, weights = weighted_cloud_150
    result = benchmark(lambda: maxrs_disk_exact(points, radius=1.0, weights=weights))
    assert result.value > 0


@pytest.mark.benchmark(group="E1-static-ball")
def test_technique1_guarantee_holds(benchmark, weighted_cloud_150):
    """Times the approximate solver and checks the Theorem 1.2 guarantee."""
    points, weights = weighted_cloud_150
    exact_value = maxrs_disk_exact(points, radius=1.0, weights=weights).value
    result = benchmark(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=0.35, weights=weights, seed=2)
    )
    assert result.value >= (0.5 - 0.35) * exact_value - 1e-9
