"""Serving front-end benchmark -- thin wrapper over ``repro bench grid``.

The workload declarations (a mixed Zipf open-loop request trace through
the one-query-at-a-time serial loop and :class:`repro.service.MaxRSService`
per routing mode, the bit-for-bit serving differential, the >= 3x
service-direct throughput gate, a heterogeneous every-query-family trace,
and the per-phase span probe) live in
:class:`repro.bench.suites.ServiceSuite`; this script runs that one suite
and writes the unified ``repro-bench-grid/1`` artifact to
``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service.py           # 10k requests, 1k points
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # same trace, CI-sized dataset

Equivalent to ``repro bench grid --suite service``; see
``docs/benchmarks.md`` for the schema and the regression workflow.
Exits non-zero on any differential drift or a missed throughput gate.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.grid import run_grid  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized dataset (same 10k-request trace shape)")
    parser.add_argument("--requests", type=int, default=None,
                        help="headline trace length (default: 10000)")
    parser.add_argument("--window", type=int, default=None,
                        help="service flush window (default: 64)")
    parser.add_argument("--output", default="BENCH_service.json",
                        help="destination JSON path")
    parser.add_argument("--history", default=None,
                        help="append this run to a PERF_HISTORY.jsonl trajectory")
    args = parser.parse_args(argv)
    overrides = {}
    if args.requests is not None:
        overrides["requests"] = args.requests
    if args.window is not None:
        overrides["window"] = args.window
    return run_grid(names=["service"], quick=args.quick, output=args.output,
                    history=args.history, overrides=overrides or None)


if __name__ == "__main__":
    raise SystemExit(main())
