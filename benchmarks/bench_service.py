"""Serving front-end benchmark: coalescing + micro-batching vs a serial loop.

Two sections, one JSON artifact (``BENCH_service.json``, schema
``bench_service/v1``):

**Headline (gated).** A mixed 10k-request open-loop trace -- Zipf-popular
static queries (linearithmic rectangle sweeps at the popularity head, the
quadratic exact disk sweep at the tail), live-monitor hotspot reads, and
interleaved update batches -- replayed two ways:

* ``serial-loop``     -- the baseline the acceptance target is written
                         against: one request at a time, every static query
                         a fresh direct solver call, every monitor read a
                         fresh monitor query, every update applied
                         event-at-a-time;
* ``service-direct``  -- the same trace through
                         :class:`repro.service.MaxRSService` with
                         ``routing="direct"``: flush windows, in-flight
                         coalescing, TTL'd caching, one shared monitor pass
                         per flush.  Must sustain >= ``MIN_SPEEDUP`` (3x)
                         the serial loop's requests/sec;
* ``service-sharded`` -- ``routing="sharded"`` (cache misses flushed through
                         the sharded engine): optimum values still match the
                         baseline for exact queries, placements may be
                         different-but-equally-optimal, so this variant is
                         reported but excluded from the bit-for-bit check;
* ``service-auto``    -- plan-aware routing (``QueryEngine.batch_plan``):
                         only quadratic-cost queries go through the sharded
                         engine, the rest stay on direct calls.  Reported
                         like ``service-sharded``.

**Heterogeneous (differential only).** A smaller trace whose catalog spans
every request family the service accepts -- exact rectangle/disk sweeps, the
paper's (1/2 - eps)-approximate d-ball query (Theorem 1.2), the exact
colored disk sweep, monitor reads, update batches -- checked under the same
differential but not throughput-gated (the approximate solver's ~1s fixed
cost would make a 10k serial replay meaningless).

Differential checks (any failure exits non-zero):

1. **static**: for every request served with ``routing="direct"``,
   re-issuing the *concrete* query recorded on the response
   (``response.served_query``) as a direct solver call reproduces
   ``(value, center, exact)`` bit-for-bit;
2. **monitor**: every served monitor read equals -- bit-for-bit -- the
   answer the serial baseline's own monitor gave at the same trace position;
3. **values**: exact static queries match the baseline's optimum value on
   every routing (the kernel/merge contracts).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # 10k requests, 1k points
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # 10k requests, CI-sized dataset

This file is a standalone script, not a pytest-benchmark module: the JSON
artifact and the acceptance gate are the point.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.datasets import clustered_points, request_trace
from repro.engine import Query
from repro.engine.planner import solve_query
from repro.service import MaxRSService
from repro.streaming import ShardedMaxRSMonitor

MIN_SPEEDUP = 3.0
RADIUS = 0.5


def headline_catalog() -> List[Query]:
    """The gated trace's catalog, cheapest first (the trace is generated
    with ``shuffle=False``, so Zipf popularity follows this order and the
    quadratic disk sweep sits at the tail)."""
    catalog = [Query.rectangle(w, h) for w, h in
               ((1.0, 1.0), (2.0, 1.0), (1.0, 2.0), (2.0, 2.0),
                (0.5, 0.5), (3.0, 1.5), (1.5, 3.0), (0.75, 1.25))]
    catalog.append(Query.disk(0.4))
    return catalog


def hetero_catalog() -> List[Query]:
    """Every static-query family the service accepts, cheapest first; the
    (1/2 - eps)-approximate d-ball query rides at the popularity tail."""
    return [
        Query.rectangle(1.0, 1.0),
        Query.rectangle(2.0, 2.0),
        Query.disk(0.4),
        Query.colored_disk(0.75),
        Query.disk_approx(1.0, epsilon=0.4, seed=7),
    ]


def run_serial_loop(trace, coords, colors) -> Tuple[float, List[Optional[Tuple]]]:
    """The one-query-at-a-time baseline; returns (elapsed, per-request answers).

    Static answers are ``("q", value, center, exact)``, monitor answers
    ``("m", value, center)``, updates ``None``.
    """
    monitor = ShardedMaxRSMonitor(radius=RADIUS)
    answers: List[Optional[Tuple]] = []
    position = 0
    started = time.perf_counter()
    for request in trace:
        if request.kind == "query":
            result = solve_query(request.query, coords, None,
                                 colors if request.query.colored else None)
            answers.append(("q", result.value, result.center, result.exact))
        elif request.kind == "monitor":
            result = monitor.current()
            answers.append(("m", result.value, result.center))
        else:
            for event in request.events:
                monitor.apply(event, position)
                position += 1
            answers.append(None)
    elapsed = time.perf_counter() - started
    return elapsed, answers


def run_service(trace, coords, colors, routing: str, window: int) -> Tuple[float, List, Dict]:
    """One service replay; returns (elapsed, responses, stats snapshot)."""
    monitor = ShardedMaxRSMonitor(radius=RADIUS)
    with MaxRSService(coords, colors=colors, monitor=monitor, routing=routing,
                      cache_ttl=3600.0, max_batch=window) as service:
        report = service.serve_trace(trace, window=window)
        snapshot = service.snapshot()
    return report.elapsed, report.responses, snapshot


def check_differential(trace, coords, colors, responses, baseline_answers,
                       check_static_bits: bool) -> Dict[str, int]:
    """Assert the serving guarantees; returns check counters, raises on drift."""
    static_checked = monitor_checked = 0
    direct_memo: Dict[Query, Tuple] = {}
    for index, (request, response) in enumerate(zip(trace, responses)):
        if response.error is not None:
            raise AssertionError("request %d failed: %r" % (index, response.error))
        baseline = baseline_answers[index]
        if request.kind == "query":
            if check_static_bits:
                served = response.served_query
                if served not in direct_memo:
                    reference = solve_query(
                        served, coords, None,
                        colors if served.colored else None)
                    direct_memo[served] = (reference.value, reference.center,
                                           reference.exact)
                if direct_memo[served] != (response.result.value,
                                           response.result.center,
                                           response.result.exact):
                    raise AssertionError(
                        "request %d: served answer differs from the direct "
                        "solver call for %s" % (index, served.describe()))
            if request.query.exact and response.result.value != baseline[1]:
                raise AssertionError(
                    "request %d: value %r != baseline %r for %s"
                    % (index, response.result.value, baseline[1],
                       request.query.describe()))
            static_checked += 1
        elif request.kind == "monitor":
            if (response.result.value, response.result.center) != baseline[1:]:
                raise AssertionError(
                    "request %d: monitor read %r != baseline %r"
                    % (index, (response.result.value, response.result.center),
                       baseline[1:]))
            monitor_checked += 1
    return {"static_checked": static_checked, "monitor_checked": monitor_checked}


def run_section(name, trace, coords, colors, window, routings):
    """Replay one trace through the serial baseline and the service variants;
    returns the section's JSON payload (with per-variant differentials)."""
    counts = trace.counts
    print("[%s] %d requests (%d query / %d monitor / %d update)"
          % (name, len(trace), counts["query"], counts["monitor"],
             counts["update"]))
    serial_elapsed, baseline_answers = run_serial_loop(trace, coords, colors)
    serial_rps = len(trace) / serial_elapsed
    print("  %-16s %8.2fs  %8.0f req/s"
          % ("serial-loop", serial_elapsed, serial_rps))
    variants = []
    for routing in routings:
        elapsed, responses, snapshot = run_service(trace, coords, colors,
                                                   routing, window)
        checks = check_differential(trace, coords, colors, responses,
                                    baseline_answers,
                                    check_static_bits=(routing == "direct"))
        rps = len(trace) / elapsed
        print("  %-16s %8.2fs  %8.0f req/s  (%.1fx serial; %d coalesced, "
              "%d cache hits, %d solver calls)"
              % ("service-" + routing, elapsed, rps, rps / serial_rps,
                 snapshot["coalesced"], snapshot["cache_hits"],
                 snapshot["solver_calls"]))
        variants.append({
            "name": "service-" + routing,
            "routing": routing,
            "elapsed_s": elapsed,
            "requests_per_s": rps,
            "speedup_vs_serial": rps / serial_rps,
            "differential": checks,
            "stats": snapshot,
        })
    return {
        "counts": counts,
        "baseline": {"name": "serial-loop", "elapsed_s": serial_elapsed,
                     "requests_per_s": serial_rps},
        "variants": variants,
    }


def trace_phase_summary(coords, colors, window, seed, extent) -> Dict:
    """Replay a small trace with span tracing on and aggregate the spans by
    name (repro.obs.summarize_spans), so the BENCH artifact records *where*
    serving time goes -- flush vs static solving vs per-shard kernel work --
    not just end-to-end totals.  Runs outside the timed sections: tracing
    is off during every gated measurement."""
    trace = request_trace(300, catalog=headline_catalog(), shuffle=False,
                          zipf_s=1.3, update_every=100, update_batch=8,
                          seed=seed, extent=extent)
    sink = obs.ListSink()
    obs.add_sink(sink)
    previous = obs.set_enabled(True)
    try:
        run_service(trace, coords, colors, routing="sharded", window=window)
    finally:
        obs.set_enabled(previous)
        obs.remove_sink(sink)
    return {"requests": len(trace), "routing": "sharded",
            "spans": obs.summarize_spans(sink.spans())}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized dataset (same 10k-request trace shape)")
    parser.add_argument("--requests", type=int, default=10_000)
    parser.add_argument("--window", type=int, default=64,
                        help="service flush window (requests in flight together)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args()

    n_points = 400 if args.quick else 1000
    extent = 8.0 if args.quick else 10.0
    coords = clustered_points(n_points, dim=2, extent=extent, seed=args.seed)
    colors = [index % 12 for index in range(n_points)]

    # Update cadence keeps the monitor's live set modest: the dirty-shard
    # re-solve cost after an update batch is paid identically by the serial
    # loop and the service (the monitor only re-solves when dirty), so it
    # dilutes the speedup without differentiating the serving layer.
    headline_trace = request_trace(args.requests, catalog=headline_catalog(),
                                   shuffle=False, zipf_s=1.3,
                                   update_every=100, update_batch=8,
                                   seed=args.seed, extent=extent)
    headline = run_section("headline", headline_trace, coords, colors,
                           args.window, routings=("direct", "sharded", "auto"))

    hetero_requests = 200 if args.quick else 400
    hetero_trace = request_trace(hetero_requests, catalog=hetero_catalog(),
                                 shuffle=False, zipf_s=1.6,
                                 update_every=100, update_batch=8,
                                 seed=args.seed + 1, extent=extent)
    hetero = run_section("heterogeneous", hetero_trace, coords, colors,
                         args.window, routings=("direct",))

    span_summary = trace_phase_summary(coords, colors, args.window,
                                       args.seed + 2, extent)
    heaviest = sorted(span_summary["spans"].items(),
                      key=lambda kv: -kv[1]["total_s"])[:3]
    print("[spans] heaviest phases: %s"
          % ", ".join("%s %.0fms" % (name, 1e3 * stats["total_s"])
                      for name, stats in heaviest))

    speedup = headline["variants"][0]["speedup_vs_serial"]
    payload = {
        "schema": "bench_service/v1",
        "config": {
            "requests": len(headline_trace),
            "hetero_requests": len(hetero_trace),
            "n_points": n_points,
            "extent": extent,
            "window": args.window,
            "radius": RADIUS,
            "seed": args.seed,
            "quick": args.quick,
        },
        "headline": headline,
        "heterogeneous": hetero,
        "span_summary": span_summary,
        "summary": {
            "speedup_vs_serial": speedup,
            "min_required": MIN_SPEEDUP,
        },
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % args.output)

    if speedup < MIN_SPEEDUP:
        print("FAIL: service-direct speedup %.2fx < required %.1fx"
              % (speedup, MIN_SPEEDUP), file=sys.stderr)
        return 1
    checks = headline["variants"][0]["differential"]
    hetero_checks = hetero["variants"][0]["differential"]
    print("OK: coalescing + micro-batching at %.1fx the serial loop "
          "(differential: %d static + %d monitor answers bit-identical, "
          "plus %d/%d on the heterogeneous trace)"
          % (speedup, checks["static_checked"], checks["monitor_checked"],
             hetero_checks["static_checked"], hetero_checks["monitor_checked"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
