"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*.py`` file regenerates the timing kernel of one experiment from
DESIGN.md section 4 (E1-E10).  The full tables (including the paper-claim
checks) are produced by ``python -m repro.bench.experiments``; the benchmark
suite times the hot kernels on fixed, moderately sized workloads so that
relative comparisons (who wins, by roughly what factor) are reproducible in a
few minutes of wall clock.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    hotspot_monitoring_stream,
    planted_colored_instance,
    trajectory_colored_points,
    uniform_weighted_points,
    weighted_hotspot_points,
)


@pytest.fixture(scope="session")
def weighted_cloud_150():
    """150 weighted uniform points in the plane (E1, E9 kernels)."""
    return uniform_weighted_points(150, dim=2, extent=6.0, seed=101)


@pytest.fixture(scope="session")
def hotspot_cloud_250():
    """250 weighted hotspot points (E8 kernel)."""
    return weighted_hotspot_points(250, dim=2, extent=10.0, seed=102)


@pytest.fixture(scope="session")
def trajectory_cloud():
    """Trajectory points of 15 entities (E3 kernel)."""
    return trajectory_colored_points(15, samples_per_entity=6, extent=6.0, seed=103)


@pytest.fixture(scope="session")
def planted_colored_150():
    """150 colored points with a planted optimum of 8 colors (E4/E5/E10 kernels)."""
    return planted_colored_instance(150, planted_colors=8, dim=2, background_colors=3, seed=104)


@pytest.fixture(scope="session")
def update_stream_200():
    """A 200-update hotspot monitoring stream (E2 kernel)."""
    return hotspot_monitoring_stream(200, dim=2, extent=8.0, seed=105)


@pytest.fixture(scope="session")
def clustered_cloud_300():
    """300 clustered unweighted points (E11 kernel)."""
    from repro.datasets import clustered_points

    return clustered_points(300, dim=2, extent=8.0, clusters=3, seed=106)


@pytest.fixture(scope="session")
def trajectory_cloud_colored_boxes():
    """Trajectory points of 25 entities for the colored box extension (E14 kernel)."""
    return trajectory_colored_points(25, samples_per_entity=8, extent=8.0, seed=107)


@pytest.fixture(scope="session")
def external_records_1d():
    """600 weighted 1-d records for the I/O model benchmarks (E12 kernel)."""
    import random

    rng = random.Random(108)
    return [(rng.uniform(0.0, 100.0), rng.uniform(0.5, 2.0)) for _ in range(600)]


@pytest.fixture(scope="session")
def external_records_2d():
    """400 weighted planar records for the I/O model benchmarks (E12 kernel)."""
    import random

    rng = random.Random(109)
    return [
        (rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0), rng.uniform(0.5, 2.0))
        for _ in range(400)
    ]


@pytest.fixture(scope="session")
def points_3d_150():
    """150 uniform points in R^3 (E15 kernel)."""
    import random

    rng = random.Random(110)
    return [
        (rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0))
        for _ in range(150)
    ]
