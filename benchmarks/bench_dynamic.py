"""E2 -- dynamic MaxRS under insertions and deletions (Theorem 1.1).

Times (a) the replay of a full hotspot-monitoring stream, (b) a single
insertion into a pre-populated structure and (c) the exact-recompute baseline
(running the quadratic sweep from scratch on the live set), which is what the
paper's O_eps(log n) update time is an improvement over.
"""

import pytest

from repro.core import DynamicMaxRS
from repro.exact import maxrs_disk_exact


def _replay(stream, structure):
    id_of = {}
    for position, event in enumerate(stream):
        if event.kind == "insert":
            id_of[position] = structure.insert(event.point, event.weight)
        else:
            structure.delete(id_of.pop(event.target))
    return structure


@pytest.mark.benchmark(group="E2-dynamic")
def test_stream_replay(benchmark, update_stream_200):
    def run():
        structure = DynamicMaxRS(dim=2, radius=1.0, epsilon=0.45, seed=3)
        _replay(update_stream_200, structure)
        return structure.query()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.value >= 1.0


@pytest.mark.benchmark(group="E2-dynamic")
def test_single_insert(benchmark, update_stream_200):
    structure = DynamicMaxRS(dim=2, radius=1.0, epsilon=0.45, seed=4)
    _replay(update_stream_200, structure)
    probe_point = (4.0, 4.0)

    def insert_and_delete():
        point_id = structure.insert(probe_point)
        structure.delete(point_id)

    benchmark(insert_and_delete)
    assert len(structure) > 0


@pytest.mark.benchmark(group="E2-dynamic")
def test_query_after_updates(benchmark, update_stream_200):
    structure = DynamicMaxRS(dim=2, radius=1.0, epsilon=0.45, seed=5)
    _replay(update_stream_200, structure)
    result = benchmark(structure.query)
    assert result.value >= 1.0


@pytest.mark.benchmark(group="E2-dynamic")
def test_exact_recompute_baseline(benchmark, update_stream_200):
    """The naive alternative to Theorem 1.1: recompute from scratch per query."""
    live = [coords for coords, _ in update_stream_200.live_points_after(len(update_stream_200))]
    result = benchmark(lambda: maxrs_disk_exact(live, radius=1.0))
    assert result.value >= 1.0
