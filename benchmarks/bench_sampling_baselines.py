"""E11 -- prior-work sampling baselines vs Technique 1 (Section 1.5 comparison).

Times, on the same clustered point cloud, the paper's (1/2 - eps) probe
sampler, the classical point-sampling (1 - eps) baseline (exact sweep on a
Bernoulli sample), the shifted-grid decomposition and the exact disk sweep.
The reproduced shape: the exact sweep and the baselines that fall back to it
pay a quadratic cost as points concentrate, while Technique 1's cost is
governed by the sample size only.
"""

import pytest

from repro.approx import maxrs_disk_grid_decomposition, maxrs_disk_sampled
from repro.core import max_range_sum_ball
from repro.exact import maxrs_disk_exact


@pytest.mark.benchmark(group="E11-sampling-baselines")
def test_technique1_probe_sampling(benchmark, clustered_cloud_300):
    result = benchmark.pedantic(
        lambda: max_range_sum_ball(clustered_cloud_300, radius=1.0, epsilon=0.4, seed=1),
        rounds=3, iterations=1,
    )
    assert result.value > 0


@pytest.mark.benchmark(group="E11-sampling-baselines")
def test_point_sampling_baseline(benchmark, clustered_cloud_300):
    result = benchmark(
        lambda: maxrs_disk_sampled(clustered_cloud_300, radius=1.0, epsilon=0.3, seed=1)
    )
    assert result.value > 0


@pytest.mark.benchmark(group="E11-sampling-baselines")
def test_grid_decomposition_baseline(benchmark, clustered_cloud_300):
    result = benchmark(
        lambda: maxrs_disk_grid_decomposition(clustered_cloud_300, radius=1.0)
    )
    assert result.exact


@pytest.mark.benchmark(group="E11-sampling-baselines")
def test_exact_disk_sweep_reference(benchmark, clustered_cloud_300):
    result = benchmark.pedantic(
        lambda: maxrs_disk_exact(clustered_cloud_300, radius=1.0),
        rounds=3, iterations=1,
    )
    assert result.exact


@pytest.mark.benchmark(group="E11-sampling-baselines")
def test_point_sampling_guarantee_holds(benchmark, clustered_cloud_300):
    exact_value = maxrs_disk_exact(clustered_cloud_300, radius=1.0).value
    result = benchmark(
        lambda: maxrs_disk_sampled(clustered_cloud_300, radius=1.0, epsilon=0.25, seed=2)
    )
    assert result.value >= 0.5 * exact_value
