"""E13 -- continuous hotspot monitoring over update streams (Section 1.1 scenario).

Times a full stream replay through the dynamic (Theorem 1.1) monitor, the
sliding-window variant and the exact-recompute baseline.  The reproduced
shape: the exact baseline's per-query cost grows with the live-set size while
the dynamic monitor's per-update cost stays flat.
"""

import pytest

from repro.datasets import clustered_points
from repro.streaming import (
    ApproximateMaxRSMonitor,
    ExactRecomputeMonitor,
    SlidingWindowMaxRSMonitor,
)


@pytest.mark.benchmark(group="E13-streaming")
def test_approximate_monitor_replay(benchmark, update_stream_200):
    def run():
        monitor = ApproximateMaxRSMonitor(dim=2, radius=1.0, epsilon=0.45, seed=1)
        return monitor.replay(update_stream_200, query_every=50)

    snapshots = benchmark.pedantic(run, rounds=3, iterations=1)
    assert snapshots[-1].value >= 1


@pytest.mark.benchmark(group="E13-streaming")
def test_exact_recompute_monitor_replay(benchmark, update_stream_200):
    def run():
        monitor = ExactRecomputeMonitor(radius=1.0)
        return monitor.replay(update_stream_200, query_every=50)

    snapshots = benchmark(run)
    assert snapshots[-1].value >= 1


@pytest.mark.benchmark(group="E13-streaming")
def test_sliding_window_monitor(benchmark):
    points = clustered_points(150, dim=2, extent=8.0, clusters=3, seed=9)

    def run():
        monitor = SlidingWindowMaxRSMonitor(window=40, dim=2, radius=1.0, epsilon=0.45, seed=9)
        return monitor.replay_points(points, query_every=50)

    snapshots = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(s.live_points <= 40 for s in snapshots)


@pytest.mark.benchmark(group="E13-streaming")
def test_monitor_guarantee_against_exact(benchmark, update_stream_200):
    """The approximate monitor's final report stays within (1/2 - eps) of exact."""
    exact = ExactRecomputeMonitor(radius=1.0)
    exact_snaps = exact.replay(update_stream_200, query_every=len(update_stream_200))

    def run():
        monitor = ApproximateMaxRSMonitor(dim=2, radius=1.0, epsilon=0.45, seed=3)
        return monitor.replay(update_stream_200, query_every=len(update_stream_200))

    approx_snaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert approx_snaps[-1].value >= (0.5 - 0.45) * exact_snaps[-1].value - 1e-9
