"""E12 -- external MaxRS block-transfer counts on the simulated I/O model.

Wall-clock timings here are secondary; each benchmark also asserts the I/O
shape the [CCT12/CCT14] line of work predicts -- sort-based external MaxRS
stays within a small factor of sort(n) block transfers, while the nested-scan
baseline is quadratic in the number of blocks.
"""

import pytest

from repro.io_model import (
    BlockStorage,
    external_maxrs_interval,
    external_maxrs_interval_nested_scan,
    external_maxrs_rectangle,
    external_merge_sort,
)

BLOCK_SIZE = 16
MEMORY = 128


def _storage_with(records):
    storage = BlockStorage(block_size=BLOCK_SIZE, memory_capacity=MEMORY)
    return storage, storage.file_from_records(records)


@pytest.mark.benchmark(group="E12-io-model")
def test_external_sort(benchmark, external_records_1d):
    def run():
        _, file = _storage_with(external_records_1d)
        return external_merge_sort(file, key=lambda r: r[0])

    sorted_file = benchmark(run)
    assert len(sorted_file) == len(external_records_1d)


@pytest.mark.benchmark(group="E12-io-model")
def test_external_interval_sort_based(benchmark, external_records_1d):
    def run():
        _, file = _storage_with(external_records_1d)
        return external_maxrs_interval(file, length=5.0)

    result = benchmark(run)
    assert result.value > 0


@pytest.mark.benchmark(group="E12-io-model")
def test_external_interval_nested_scan(benchmark, external_records_1d):
    def run():
        _, file = _storage_with(external_records_1d)
        return external_maxrs_interval_nested_scan(file, length=5.0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.value > 0


@pytest.mark.benchmark(group="E12-io-model")
def test_external_rectangle_sort_based(benchmark, external_records_2d):
    def run():
        _, file = _storage_with(external_records_2d)
        return external_maxrs_rectangle(file, width=4.0, height=4.0)

    result = benchmark(run)
    assert result.value > 0


@pytest.mark.benchmark(group="E12-io-model")
def test_io_shape_sort_beats_nested_scan(benchmark, external_records_1d):
    """Sort-based external MaxRS must use fewer block transfers than nested scanning."""

    def run():
        _, file = _storage_with(external_records_1d)
        sort_based = external_maxrs_interval(file, length=5.0)
        nested = external_maxrs_interval_nested_scan(file, length=5.0)
        return sort_based, nested

    sort_based, nested = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sort_based.value == pytest.approx(nested.value)
    assert sort_based.meta["io"].total_ios < nested.meta["io"].total_ios
