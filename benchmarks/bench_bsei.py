"""E7 -- batched smallest k-enclosing interval and the Theorem 1.4 reduction.

Times the O(n^2) batched SEI oracle (the upper bound Theorem 1.4 shows is
essentially optimal) and the full (min,+)-convolution-through-BSEI reduction.
"""

import pytest

from repro.batched import batched_smallest_enclosing_intervals, smallest_k_enclosing_interval
from repro.convolution import min_plus_convolution, min_plus_via_bsei
from repro.core.sampling import default_rng


@pytest.fixture(scope="module")
def sei_points():
    rng = default_rng(301)
    return [float(v) for v in rng.uniform(0.0, 1000.0, size=500)]


@pytest.fixture(scope="module")
def convolution_instance():
    rng = default_rng(302)
    a = [int(v) for v in rng.integers(-50, 50, size=48)]
    b = [int(v) for v in rng.integers(-50, 50, size=48)]
    return a, b


@pytest.mark.benchmark(group="E7-bsei")
def test_batched_sei_oracle(benchmark, sei_points):
    results = benchmark(lambda: batched_smallest_enclosing_intervals(sei_points))
    assert len(results) == len(sei_points)
    assert results == sorted(results)


@pytest.mark.benchmark(group="E7-bsei")
def test_single_k_sei(benchmark, sei_points):
    length, window = benchmark(lambda: smallest_k_enclosing_interval(sei_points, 50))
    assert window is not None and length >= 0


@pytest.mark.benchmark(group="E7-bsei")
def test_min_plus_via_bsei_reduction(benchmark, convolution_instance):
    a, b = convolution_instance
    expected = min_plus_convolution(a, b)
    got = benchmark(lambda: min_plus_via_bsei(a, b))
    assert got == pytest.approx(expected)
