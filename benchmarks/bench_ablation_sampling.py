"""E9 -- ablation of Technique 1's knobs (Lemmas 3.1-3.4).

Times the static solver while sweeping the per-cell sample-size constant and
the number of grid shifts, quantifying how much of the running time each part
of the machinery costs.  The full quality-vs-time table is produced by
``repro.bench.experiments.experiment_e9_ablation``.
"""

import pytest

from repro.core import max_range_sum_ball


@pytest.mark.benchmark(group="E9-ablation-sample-constant")
@pytest.mark.parametrize("constant", [0.25, 0.5, 1.0, 2.0])
def test_sample_constant(benchmark, weighted_cloud_150, constant):
    points, weights = weighted_cloud_150
    result = benchmark(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=0.35, weights=weights,
                                   seed=13, sample_constant=constant)
    )
    assert result.value > 0


@pytest.mark.benchmark(group="E9-ablation-shifts")
@pytest.mark.parametrize("cap", [1, 2, 4, None])
def test_shift_cap(benchmark, weighted_cloud_150, cap):
    points, weights = weighted_cloud_150
    result = benchmark(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=0.35, weights=weights,
                                   seed=14, shift_cap=cap)
    )
    assert result.value > 0


@pytest.mark.benchmark(group="E9-ablation-epsilon")
@pytest.mark.parametrize("epsilon", [0.45, 0.35, 0.25])
def test_epsilon_dependence(benchmark, weighted_cloud_150, epsilon):
    points, weights = weighted_cloud_150
    result = benchmark.pedantic(
        lambda: max_range_sum_ball(points, radius=1.0, epsilon=epsilon, weights=weights, seed=15),
        rounds=3, iterations=1,
    )
    assert result.value > 0
