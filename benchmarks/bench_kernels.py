"""Kernel backend benchmarks -- thin wrapper over ``repro bench grid``.

The workload declarations (every kernel of the :mod:`repro.kernels`
contract at the engineering-target sizes, pure-Python reference vs
vectorised NumPy, cross-backend agreement checks) live in
:class:`repro.bench.suites.KernelsSuite`; this script runs that one suite
and writes the unified ``repro-bench-grid/1`` artifact to
``BENCH_kernels.json``::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI-sized

Equivalent to ``repro bench grid --suite kernels``; see
``docs/benchmarks.md`` for the schema and the regression workflow.
Exits non-zero if the backends disagree on any objective value.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.grid import run_grid  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (10k sweep / 2k disk)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repetitions per measurement (best-of)")
    parser.add_argument("--output", default="BENCH_kernels.json",
                        help="destination JSON path")
    parser.add_argument("--history", default=None,
                        help="append this run to a PERF_HISTORY.jsonl trajectory")
    args = parser.parse_args(argv)
    overrides = {"repeats": args.repeats} if args.repeats is not None else None
    return run_grid(names=["kernels"], quick=args.quick, output=args.output,
                    history=args.history, overrides=overrides)


if __name__ == "__main__":
    raise SystemExit(main())
