"""Kernel backend benchmarks: pure-Python reference vs vectorised NumPy.

Times every kernel of the :mod:`repro.kernels` contract on the workload
sizes named by the engineering targets (rectangle/interval sweeps at 100k
points, the quadratic disk sweep at 10k points, a Technique-1-shaped probe
batch) and writes a machine-readable ``BENCH_kernels.json`` so future PRs
can track the performance trajectory::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI-sized

Schema (``bench_kernels/v1``)::

    {
      "schema": "bench_kernels/v1",
      "config": {"quick": false, "repeats": 1},
      "results": [
        {"kernel": "rectangle_sweep", "n": 100000, "backend": "numpy",
         "seconds": 0.61, "value": 24.80, "speedup_vs_python": 10.7},
        ...
      ]
    }

The script exits non-zero if the backends disagree on any objective value
(beyond float reassociation noise), so it doubles as a coarse differential
check at sizes the unit suite cannot afford.

This file is a standalone script, not a pytest-benchmark module: the JSON
artifact is the point, and the 100k-point workloads are too heavy for the
default benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Callable, Dict, List

from repro import kernels
from repro.datasets import clustered_points, uniform_weighted_points

BACKENDS = ("python", "numpy")


def _timed(function: Callable, repeats: int):
    """Best-of-``repeats`` wall-clock time and the (last) return value."""
    best = math.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = function()
        best = min(best, time.perf_counter() - start)
    return best, value


def _workloads(quick: bool) -> List[Dict]:
    n_sweep = 10_000 if quick else 100_000
    n_disk = 2_000 if quick else 10_000
    n_probe_centers = 1_000 if quick else 5_000

    sweep_points, sweep_weights = uniform_weighted_points(
        n_sweep, dim=2, extent=math.sqrt(n_sweep) * 0.95, seed=1)
    xs = [p[0] for p in sweep_points]

    disk_points = clustered_points(
        n_disk, dim=2, extent=math.sqrt(n_disk) * 0.8, clusters=6,
        cluster_std=2.0, seed=2)
    disk_weights = [1.0] * n_disk

    probe_centers, probe_weights = uniform_weighted_points(
        n_probe_centers, dim=2, extent=8.0, seed=3)
    probes = [(x + 0.1, y - 0.1) for x, y in probe_centers[:512]]

    def objective_of_pair(result):
        return float(result[0])

    return [
        {
            "kernel": "interval_sweep",
            "n": n_sweep,
            "run": lambda module: module.interval_sweep(xs, sweep_weights, 2.0, True),
            "objective": objective_of_pair,
        },
        {
            "kernel": "rectangle_sweep",
            "n": n_sweep,
            "run": lambda module: module.rectangle_sweep(
                sweep_points, sweep_weights, 2.0, 2.0),
            "objective": objective_of_pair,
        },
        {
            "kernel": "disk_sweep",
            "n": n_disk,
            "run": lambda module: module.disk_sweep(disk_points, disk_weights, 1.0),
            "objective": objective_of_pair,
        },
        {
            "kernel": "probe_depths",
            "n": n_probe_centers,
            "run": lambda module: module.probe_depths(
                probes, probe_centers, probe_weights, 1.0),
            "objective": lambda depths: float(max(depths)),
        },
    ]


def run(quick: bool = False, repeats: int = 1, output: str = "BENCH_kernels.json") -> int:
    results: List[Dict] = []
    disagreements: List[str] = []

    for workload in _workloads(quick):
        kernel = workload["kernel"]
        python_seconds = None
        python_value = None
        for backend in BACKENDS:
            module = kernels.get_backend(backend)
            seconds, returned = _timed(lambda: workload["run"](module), repeats)
            value = workload["objective"](returned)
            entry = {
                "kernel": kernel,
                "n": workload["n"],
                "backend": backend,
                "seconds": round(seconds, 6),
                "value": value,
            }
            if backend == "python":
                python_seconds = seconds
                python_value = value
            else:
                entry["speedup_vs_python"] = round(python_seconds / seconds, 3)
                if not math.isclose(value, python_value, rel_tol=1e-9, abs_tol=1e-9):
                    disagreements.append(
                        "%s: python=%r numpy=%r" % (kernel, python_value, value))
            results.append(entry)
            print("%-18s n=%-7d %-7s %8.3fs  value=%.6f%s" % (
                kernel, workload["n"], backend, seconds, value,
                "" if backend == "python"
                else "  (%.1fx vs python)" % (python_seconds / seconds)))

    payload = {
        "schema": "bench_kernels/v1",
        "config": {"quick": quick, "repeats": repeats},
        "results": results,
    }
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % output)

    if disagreements:
        print("BACKEND DISAGREEMENT:\n  " + "\n  ".join(disagreements), file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (10k sweep / 2k disk)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="repetitions per measurement (best-of)")
    parser.add_argument("--output", default="BENCH_kernels.json",
                        help="destination JSON path")
    args = parser.parse_args(argv)
    return run(quick=args.quick, repeats=args.repeats, output=args.output)


if __name__ == "__main__":
    raise SystemExit(main())
