"""E6 -- batched MaxRS in R^1 and the Theorem 1.3 reduction.

Times (a) the O(m n log n) batched MaxRS oracle (the upper bound that
Theorem 1.3 shows is essentially optimal), (b) the full
(min,+)-convolution-through-batched-MaxRS reduction and (c) the naive
quadratic convolution it must match.
"""

import pytest

from repro.batched import batched_maxrs_1d
from repro.convolution import min_plus_convolution, min_plus_via_batched_maxrs
from repro.core.sampling import default_rng


@pytest.fixture(scope="module")
def batched_instance():
    rng = default_rng(201)
    xs = [float(v) for v in rng.uniform(0.0, 100.0, size=400)]
    weights = [float(v) for v in rng.uniform(0.5, 2.0, size=400)]
    lengths = [float(v) for v in rng.uniform(1.0, 40.0, size=15)]
    return xs, weights, lengths


@pytest.fixture(scope="module")
def convolution_instance():
    rng = default_rng(202)
    a = [int(v) for v in rng.integers(-50, 50, size=48)]
    b = [int(v) for v in rng.integers(-50, 50, size=48)]
    return a, b


@pytest.mark.benchmark(group="E6-batched-maxrs")
def test_batched_oracle_m_queries(benchmark, batched_instance):
    xs, weights, lengths = batched_instance
    results = benchmark(lambda: batched_maxrs_1d(xs, lengths, weights=weights))
    assert len(results) == len(lengths)


@pytest.mark.benchmark(group="E6-batched-maxrs")
def test_min_plus_via_batched_maxrs_reduction(benchmark, convolution_instance):
    a, b = convolution_instance
    expected = min_plus_convolution(a, b)
    got = benchmark(lambda: min_plus_via_batched_maxrs(a, b))
    assert got == pytest.approx(expected)


@pytest.mark.benchmark(group="E6-batched-maxrs")
def test_naive_min_plus_reference(benchmark, convolution_instance):
    a, b = convolution_instance
    result = benchmark(lambda: min_plus_convolution(a, b))
    assert len(result) == len(a)
