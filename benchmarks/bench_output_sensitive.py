"""E4 -- output-sensitive exact colored disk MaxRS (Theorem 4.6 / Lemma 4.2).

Times the three exact colored-disk solvers on the same controlled-opt
instance: the straightforward O(n^2 log n) angular sweep, the arrangement
route of Lemma 4.2 and the grid-localised output-sensitive algorithm of
Theorem 4.6.  All three must agree on the optimum.
"""

import pytest

from repro.core import (
    colored_maxrs_disk_arrangement,
    colored_maxrs_disk_output_sensitive,
)
from repro.exact import colored_maxrs_disk_sweep


@pytest.mark.benchmark(group="E4-output-sensitive")
def test_exact_sweep(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark(lambda: colored_maxrs_disk_sweep(points, radius=1.0, colors=colors))
    assert result.value == opt


@pytest.mark.benchmark(group="E4-output-sensitive")
def test_arrangement_lemma42(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark(
        lambda: colored_maxrs_disk_arrangement(points, radius=1.0, colors=colors)
    )
    assert result.value == opt


@pytest.mark.benchmark(group="E4-output-sensitive")
def test_output_sensitive_theorem46(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark.pedantic(
        lambda: colored_maxrs_disk_output_sensitive(points, radius=1.0, colors=colors),
        rounds=3, iterations=1,
    )
    assert result.value == opt
