"""Region-search extensions: top-k disjoint placements and decaying hotspots.

These kernels are not tied to a paper table (the extensions live in the
related-work space the paper surveys in Section 1.6); they are benchmarked so
regressions in the greedy peeling loop or in the decay monitor's O(1)-tick
path are caught alongside the main experiments.
"""

import pytest

from repro.datasets import clustered_points
from repro.regions import DecayingMaxRSMonitor, top_k_maxrs_disk, top_k_maxrs_rectangle


@pytest.mark.benchmark(group="regions-extensions")
def test_top_k_rectangles(benchmark, clustered_cloud_300):
    placements = benchmark(
        lambda: top_k_maxrs_rectangle(clustered_cloud_300, width=2.0, height=2.0, k=3)
    )
    assert 1 <= len(placements) <= 3
    assert placements[0].value >= placements[-1].value


@pytest.mark.benchmark(group="regions-extensions")
def test_top_k_disks(benchmark, clustered_cloud_300):
    placements = benchmark.pedantic(
        lambda: top_k_maxrs_disk(clustered_cloud_300, radius=1.0, k=3),
        rounds=3, iterations=1,
    )
    assert 1 <= len(placements) <= 3


@pytest.mark.benchmark(group="regions-extensions")
def test_decaying_monitor_feed(benchmark):
    points = clustered_points(120, dim=2, extent=8.0, clusters=3, seed=21)

    def run():
        monitor = DecayingMaxRSMonitor(decay=0.9, dim=2, radius=1.0, epsilon=0.45, seed=21)
        for index, point in enumerate(points):
            monitor.observe(point)
            if (index + 1) % 10 == 0:
                monitor.tick()
        return monitor.current()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.value > 0


@pytest.mark.benchmark(group="regions-extensions")
def test_decay_tick_is_cheap(benchmark):
    monitor = DecayingMaxRSMonitor(decay=0.99, dim=2, radius=1.0, epsilon=0.45, seed=23,
                                   prune_below=0.0)
    for point in clustered_points(80, dim=2, extent=8.0, clusters=2, seed=23):
        monitor.observe(point)

    # A bounded number of rounds keeps the decayed weights well above the
    # underflow regime (a tick is O(1); the interesting cost is the rare
    # renormalization, exercised by the feed benchmark above).
    benchmark.pedantic(monitor.tick, rounds=50, iterations=1)
    assert monitor.ticks == 50
