"""Serving-SLO benchmark -- thin wrapper over ``repro bench grid``.

The workload declarations (an open-loop :func:`repro.net.run_loadgen`
replay of a query-only trace against an embedded
:class:`repro.net.MaxRSServer` at fixed offered rates, the p50/p95/p99
latency percentiles measured from each request's *scheduled* send, the
bit-identical wire-vs-``serve_trace`` differential, and the
bounded-admission overload case gated on shedding) live in
:class:`repro.bench.suites.ServingSloSuite`; this script runs that one
suite and writes the unified ``repro-bench-grid/1`` artifact to
``BENCH_serving_slo.json``::

    PYTHONPATH=src python benchmarks/bench_serving_slo.py           # full trace
    PYTHONPATH=src python benchmarks/bench_serving_slo.py --quick   # CI-sized

Equivalent to ``repro bench grid --suite serving_slo``; see
``docs/benchmarks.md`` for the schema and the regression workflow, and
``docs/networking.md`` for the server and load-generator internals.
Exits non-zero on any differential drift, on steady-rate shedding, or if
the overload case fails to shed (unbounded queue growth).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.grid import run_grid  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized traces and datasets")
    parser.add_argument("--requests", type=int, default=None,
                        help="steady trace length (default: 400, quick: 120)")
    parser.add_argument("--clients", type=int, default=None,
                        help="loadgen connection-pool size (default: 8)")
    parser.add_argument("--output", default="BENCH_serving_slo.json",
                        help="destination JSON path")
    parser.add_argument("--history", default=None,
                        help="append this run to a PERF_HISTORY.jsonl trajectory")
    args = parser.parse_args(argv)
    overrides = {}
    if args.requests is not None:
        overrides["requests"] = args.requests
    if args.clients is not None:
        overrides["clients"] = args.clients
    return run_grid(names=["serving_slo"], quick=args.quick, output=args.output,
                    history=args.history, overrides=overrides or None)


if __name__ == "__main__":
    raise SystemExit(main())
