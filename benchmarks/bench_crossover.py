"""E10 -- colored disk MaxRS: who wins where.

Times every colored-disk solver in the library on one controlled-opt
instance: the exact sweep, Technique 1 (weakest guarantee, any dimension),
the exact output-sensitive Technique 2 algorithm and the (1-eps)
color-sampling variant.  The grouped pytest-benchmark output is the crossover
table of experiment E10.
"""

import pytest

from repro.core import (
    colored_maxrs_ball,
    colored_maxrs_disk,
    colored_maxrs_disk_arrangement,
    colored_maxrs_disk_output_sensitive,
)
from repro.exact import colored_maxrs_disk_sweep


@pytest.mark.benchmark(group="E10-crossover")
def test_exact_sweep(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark(lambda: colored_maxrs_disk_sweep(points, radius=1.0, colors=colors))
    assert result.value == opt


@pytest.mark.benchmark(group="E10-crossover")
def test_technique1_half_eps(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark(
        lambda: colored_maxrs_ball(points, radius=1.0, epsilon=0.3, colors=colors, seed=16)
    )
    assert result.value >= (0.5 - 0.3) * opt


@pytest.mark.benchmark(group="E10-crossover")
def test_technique2_arrangement(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark(
        lambda: colored_maxrs_disk_arrangement(points, radius=1.0, colors=colors)
    )
    assert result.value == opt


@pytest.mark.benchmark(group="E10-crossover")
def test_technique2_output_sensitive(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark.pedantic(
        lambda: colored_maxrs_disk_output_sensitive(points, radius=1.0, colors=colors),
        rounds=3, iterations=1,
    )
    assert result.value == opt


@pytest.mark.benchmark(group="E10-crossover")
def test_technique2_one_minus_eps(benchmark, planted_colored_150):
    points, colors, opt = planted_colored_150
    result = benchmark.pedantic(
        lambda: colored_maxrs_disk(points, radius=1.0, epsilon=0.25, colors=colors, seed=17),
        rounds=3, iterations=1,
    )
    assert result.value >= (1 - 0.25) * opt - 1e-9
