"""Markdown link checker for README.md and docs/.

Validates every inline markdown link ``[text](target)``:

* relative targets must resolve to an existing file or directory (anchors
  are stripped; a bare ``#anchor`` is checked against the same file's
  headings);
* absolute ``http(s)`` targets are only syntax-checked (CI has no network
  access by design -- external availability is not this checker's job).

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link). Run from anywhere::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_PATTERN = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.M)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def document_anchors(text: str) -> set:
    return {slugify(h) for h in HEADING_PATTERN.findall(text)}


def check_file(path: Path) -> list:
    """Return human-readable problem strings for one markdown file."""
    problems = []
    text = path.read_text()
    anchors = document_anchors(text)
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                problems.append("%s: missing anchor %s" % (path.name, target))
            continue
        relative, _, _anchor = target.partition("#")
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append("%s: broken link %s" % (path.name, target))
    return problems


def main() -> int:
    files = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))
    missing = [str(f) for f in files if not f.exists()]
    if missing:
        print("missing documentation files: %s" % ", ".join(missing))
        return 1
    problems = []
    links = 0
    for path in files:
        links += len(LINK_PATTERN.findall(path.read_text()))
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print("checked %d links across %d files: %s"
          % (links, len(files), "FAIL" if problems else "ok"))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
