"""Pluggable execution backends for the sharded engine.

Every backend exposes the same two-method interface -- order-preserving
:meth:`~Executor.map` plus :meth:`~Executor.close` -- so the planner can stay
agnostic about *where* shard tasks run:

* :class:`SerialExecutor` runs tasks inline; the zero-overhead default and
  the reference the parallel backends are tested against.
* :class:`ThreadPoolExecutor` fans tasks out over a thread pool.  The
  solvers are pure Python, so threads mostly overlap the numpy portions of
  the approximate solvers; it is the safe choice when tasks are small.
* :class:`ProcessPoolExecutor` fans tasks out over worker processes and is
  the backend that actually buys multi-core speedups for the CPU-bound exact
  sweeps; tasks and their payloads must be picklable (the planner's task
  payloads are).
* ``"shared-process"`` resolves to
  :class:`repro.parallel.SharedMemoryProcessExecutor`: worker processes that
  attach to a shared-memory dataset store on spawn and receive only shard
  descriptors (index ranges), removing the per-task point-payload pickling
  the plain process backend pays (see :mod:`repro.parallel`).

Pools are created lazily on first use and are reusable across batches, so a
long-lived :class:`~repro.engine.planner.QueryEngine` pays the pool start-up
cost once.  All executors are context managers.

When no executor is named (``spec=None``), the ``REPRO_EXECUTOR``
environment variable picks the default -- that is how CI forces the whole
tier-1 suite through the shared-memory backend.  An explicit name always
beats the environment.
"""

from __future__ import annotations

import os
from concurrent import futures
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "get_executor",
]

T = TypeVar("T")
R = TypeVar("R")


def _default_workers() -> int:
    return os.cpu_count() or 1


class Executor:
    """Common interface: an order-preserving ``map`` over a task list."""

    kind = "abstract"

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1, got %r" % workers)
        self.workers = int(workers) if workers is not None else _default_workers()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return "%s(workers=%d)" % (type(self).__name__, self.workers)


class SerialExecutor(Executor):
    """Run every task inline in the calling thread."""

    kind = "serial"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers=1 if workers is None else workers)
        self.workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class _PooledExecutor(Executor):
    """Shared lazy-pool plumbing for the thread and process backends."""

    _pool_factory = None  # set by subclasses

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = type(self)._pool_factory(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            # Not worth a pool round-trip (and, for processes, a pickle).
            return [fn(items[0])]
        return self._map_pooled(fn, items)

    def _map_pooled(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        """Dispatch an above-threshold batch to the pool (the one copy of
        the chunking policy; subclasses wrap this for crash recovery)."""
        pool = self._ensure_pool()
        chunksize = max(1, len(items) // (4 * self.workers))
        return list(pool.map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolExecutor(_PooledExecutor):
    """Run tasks on a shared :class:`concurrent.futures.ThreadPoolExecutor`."""

    kind = "thread"
    _pool_factory = futures.ThreadPoolExecutor


class ProcessPoolExecutor(_PooledExecutor):
    """Run tasks on a shared :class:`concurrent.futures.ProcessPoolExecutor`.

    The task callable and its payloads must be picklable; the planner's
    module-level shard task satisfies this.
    """

    kind = "process"
    _pool_factory = futures.ProcessPoolExecutor


def _shared_process_factory(workers: Optional[int] = None) -> Executor:
    # Imported lazily: repro.parallel builds on this module.
    from ..parallel.executor import SharedMemoryProcessExecutor

    return SharedMemoryProcessExecutor(workers=workers)


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
    "shared-process": _shared_process_factory,
}


def get_executor(
    spec: Union[str, Executor, None] = None,
    workers: Optional[int] = None,
) -> Executor:
    """Resolve an executor from a name (``"serial"``, ``"thread"``,
    ``"process"``, ``"shared-process"``), an existing :class:`Executor`
    (returned as-is), or ``None`` -- the default, which honours the
    ``REPRO_EXECUTOR`` environment variable and otherwise stays serial."""
    if spec is None:
        spec = os.environ.get("REPRO_EXECUTOR", "").strip().lower() or "serial"
    if isinstance(spec, Executor):
        return spec
    try:
        factory = _EXECUTORS[spec]
    except KeyError:
        raise ValueError(
            "unknown executor %r; expected one of %s" % (spec, sorted(_EXECUTORS))
        ) from None
    return factory(workers=workers)
