"""Spatial sharding with halos: partition a point set into independently
solvable tiles.

The engine's parallelism rests on one geometric fact.  Fix a query range
family whose placements are *anchored* at a single point -- the disk center,
the rectangle's lower-left corner, the interval's left endpoint -- and let
``halo_j`` bound, per axis, how far a covered point can be from the anchor
(radius ``r`` for a disk, ``(W, H)`` for a ``W x H`` rectangle, ``L`` for an
interval).  Tile space into axis-aligned cells and give the shard of tile
``T`` every input point lying in ``T`` *expanded by the halo*.  Then:

* any placement anchored inside ``T`` covers only points of shard ``T``, so
  the shard's local optimum is at least the best anchored-in-``T`` value;
* a shard's points are a subset of the input and weights are non-negative,
  so every local optimum is at most the global optimum.

The global optimum's anchor lies in *some* tile, hence the maximum of the
per-shard optima equals the global optimum exactly -- the same "no shift cuts
the winner" reasoning behind the shifted-grid decomposition baseline
(:mod:`repro.approx.grid_decomposition`), but with replication instead of
shifting so that every shard is solved exactly once and all shards are
independent (embarrassingly parallel).

Each point is replicated into every tile whose halo-expanded region contains
it.  Tile sides are kept at ``>= 2 * halo`` per axis, bounding the
replication factor by ``2`` per axis.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["Shard", "ShardPlan", "choose_tile_sides", "plan_shards", "tile_keys_for_point"]

Coords = Tuple[float, ...]


@dataclass
class Shard:
    """One tile's worth of work: the points whose coverage an anchor in the
    tile could claim, in the library's usual parallel-list layout."""

    key: Tuple[int, ...]
    coords: List[Coords] = field(default_factory=list)
    weights: Optional[List[float]] = None
    colors: Optional[List[Hashable]] = None
    indices: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.coords)


@dataclass
class ShardPlan:
    """The output of :func:`plan_shards`: shards plus the tiling geometry."""

    shards: List[Shard]
    halo: Tuple[float, ...]
    tile_sides: Tuple[float, ...]
    dim: int
    n: int

    @property
    def replication(self) -> float:
        """Average number of shards each input point landed in."""
        if self.n == 0:
            return 0.0
        return sum(len(s) for s in self.shards) / self.n

    def __len__(self) -> int:
        return len(self.shards)


def tile_keys_for_point(
    point: Coords,
    halo: Sequence[float],
    tile_sides: Sequence[float],
) -> List[Tuple[int, ...]]:
    """All tiles whose halo-expanded region contains ``point``.

    Per axis these are the tiles ``t`` with ``point_j`` inside
    ``[t * side - halo, (t + 1) * side + halo)``, i.e. the integer range
    ``floor((point_j - halo_j) / side_j) .. floor((point_j + halo_j) / side_j)``.
    """
    ranges = []
    for x, h, side in zip(point, halo, tile_sides):
        lo = int(math.floor((x - h) / side))
        hi = int(math.floor((x + h) / side))
        ranges.append(range(lo, hi + 1))
    return list(itertools.product(*ranges))


def choose_tile_sides(
    coords: Sequence[Coords],
    halo: Sequence[float],
    target_shards: int,
) -> Tuple[float, ...]:
    """Pick per-axis tile sides aiming for roughly ``target_shards`` occupied
    tiles while never dropping below ``2 * halo`` per axis (which caps the
    replication factor at 2 per axis)."""
    if target_shards < 1:
        raise ValueError("target_shards must be >= 1")
    dim = len(halo)
    if not coords:
        return tuple(max(2.0 * h, 1.0) for h in halo)
    per_axis = max(1, int(round(target_shards ** (1.0 / dim))))
    sides = []
    for axis in range(dim):
        values = [c[axis] for c in coords]
        extent = max(values) - min(values)
        floor_side = 2.0 * halo[axis]
        if floor_side <= 0:
            raise ValueError("halo must be positive on every axis, got %r" % (tuple(halo),))
        sides.append(max(floor_side, extent / per_axis))
    return tuple(sides)


def plan_shards(
    coords: Sequence[Coords],
    halo: Sequence[float],
    *,
    weights: Optional[Sequence[float]] = None,
    colors: Optional[Sequence[Hashable]] = None,
    tile_sides: Optional[Sequence[float]] = None,
    target_shards: int = 16,
) -> ShardPlan:
    """Partition ``coords`` (with optional parallel weights / colors) into
    halo-expanded tiles.

    Every returned shard is non-empty, and for any anchor placed in a shard's
    tile the points it can cover all belong to that shard -- the invariant
    that makes ``max`` over per-shard solver results equal to the global
    optimum (see the module docstring).  Shards are ordered by tile key so
    downstream merging is deterministic.
    """
    dim = len(halo)
    if any(h <= 0 for h in halo):
        raise ValueError("halo must be positive on every axis, got %r" % (tuple(halo),))
    if coords and len(coords[0]) != dim:
        raise ValueError(
            "halo has %d axes but points have dimension %d" % (dim, len(coords[0]))
        )
    if tile_sides is None:
        tile_sides = choose_tile_sides(coords, halo, target_shards)
    else:
        tile_sides = tuple(float(s) for s in tile_sides)
        if len(tile_sides) != dim:
            raise ValueError("need one tile side per axis")
        if any(s < 2.0 * h for s, h in zip(tile_sides, halo)):
            raise ValueError(
                "tile sides %r are smaller than twice the halo %r; replication "
                "would be unbounded" % (tile_sides, tuple(halo))
            )

    buckets: Dict[Tuple[int, ...], Shard] = {}
    for index, point in enumerate(coords):
        for key in tile_keys_for_point(point, halo, tile_sides):
            shard = buckets.get(key)
            if shard is None:
                shard = Shard(
                    key=key,
                    weights=[] if weights is not None else None,
                    colors=[] if colors is not None else None,
                )
                buckets[key] = shard
            shard.coords.append(point)
            shard.indices.append(index)
            if weights is not None:
                shard.weights.append(weights[index])
            if colors is not None:
                shard.colors.append(colors[index])

    shards = [buckets[key] for key in sorted(buckets)]
    return ShardPlan(
        shards=shards,
        halo=tuple(float(h) for h in halo),
        tile_sides=tuple(tile_sides),
        dim=dim,
        n=len(coords),
    )
