"""Reduction of per-shard solver results back into one :class:`MaxRSResult`.

Because shard point sets are subsets of the input and all supported
objectives are monotone in the point set (non-negative weights, distinct
colors), every per-shard value is a lower bound on the global optimum; and by
the halo invariant of :mod:`repro.engine.sharding` the shard holding the
global optimum's anchor sees *all* of its covered points, so its local
optimum equals the global one.  Taking the maximum therefore:

* reproduces the global optimum exactly when the per-shard solver is exact;
* preserves a ``(c)``-approximation guarantee when the per-shard solver has
  one -- the anchor shard's local optimum equals ``opt``, so its
  approximate answer is at least ``c * opt``, and every reported value is a
  genuinely achievable coverage, hence at most ``opt``.

Ties are broken by shard order (the planner submits shards sorted by tile
key), which keeps the merged result deterministic under every executor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.result import MaxRSResult

__all__ = ["merge_shard_results", "merge_batched_results"]


def merge_shard_results(
    results: Sequence[MaxRSResult],
    *,
    empty: Optional[MaxRSResult] = None,
) -> MaxRSResult:
    """Fold shard results into the engine's answer (max by value, first wins).

    ``empty`` is returned when there are no shard results (empty dataset);
    it should be the underlying solver's canonical empty-input result so the
    engine is indistinguishable from the direct call on empty inputs.
    """
    best: Optional[MaxRSResult] = None
    for result in results:
        if best is None or result.value > best.value:
            best = result
    if best is None:
        if empty is None:
            raise ValueError("cannot merge zero shard results without an `empty` fallback")
        best = empty
        shard_count = 0
    else:
        shard_count = len(results)

    meta = dict(best.meta)
    meta.update({"sharded": True, "shards": shard_count})
    # One approximate shard taints the merge: a losing shard might hide a
    # larger true optimum.  (In practice all shards share one solver.)
    exact = all(r.exact for r in results) if results else best.exact
    return MaxRSResult(
        value=best.value,
        center=best.center,
        shape=best.shape,
        exact=exact,
        meta=meta,
    )


def merge_batched_results(
    results: Sequence[MaxRSResult],
    *,
    empty: Optional[MaxRSResult] = None,
) -> MaxRSResult:
    """Fold per-shard *batched* results component-wise.

    Every shard answers the same tuple of member lengths/sizes (in
    ``meta["batch"]``), and each member is itself a monotone MaxRS objective
    under the shared max-extent halo, so the shard-max argument of
    :func:`merge_shard_results` applies independently per component: take
    the best ``(value, center, exact)`` per member (first shard wins ties),
    then recompute the headline best-member value/center.
    """
    if not results:
        if empty is None:
            raise ValueError("cannot merge zero shard results without an `empty` fallback")
        meta = dict(empty.meta)
        meta.update({"sharded": True, "shards": 0})
        return MaxRSResult(value=empty.value, center=empty.center,
                           shape=empty.shape, exact=empty.exact, meta=meta)

    batches = [result.meta.get("batch", ()) for result in results]
    members = len(batches[0])
    if any(len(batch) != members for batch in batches):
        raise ValueError("batched shard results answer different member counts")
    merged: List[Tuple] = []
    for index in range(members):
        best = None
        for batch in batches:
            component = batch[index]
            if best is None or component[0] > best[0]:
                best = component
        merged.append(best)
    head = max(range(members), key=lambda i: merged[i][0])
    meta = dict(results[0].meta)
    meta.update({"batch": tuple(merged), "sharded": True, "shards": len(results)})
    return MaxRSResult(
        value=merged[head][0],
        center=merged[head][1],
        shape=results[0].shape,
        exact=all(result.exact for result in results),
        meta=meta,
    )
