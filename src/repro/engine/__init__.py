"""Sharded parallel MaxRS execution engine.

The rest of the library exposes one-shot solver *functions*; this package
turns them into a query *engine* that scales across cores and query batches:

* :mod:`repro.engine.sharding` -- spatial tiles with a halo matched to the
  query extent, so each shard's local optimum is globally valid and the
  global optimum is the max over shards;
* :mod:`repro.engine.executors` -- pluggable serial / thread-pool /
  process-pool backends behind one ``map`` interface;
* :mod:`repro.engine.planner` -- :class:`QueryEngine`, which routes
  heterogeneous :class:`Query` batches to the right solvers, deduplicates
  identical queries and caches results in an LRU keyed by dataset
  fingerprint + query parameters;
* :mod:`repro.engine.merge` -- the shard-result reduction that preserves
  exactness and approximation guarantees.

Quickstart
----------
>>> from repro.engine import Query, QueryEngine
>>> engine = QueryEngine([(0.0, 0.0), (0.5, 0.5), (5.0, 5.0)], executor="serial")
>>> batch = [Query.disk(1.0), Query.rectangle(2.0, 2.0), Query.disk(1.0)]
>>> [r.value for r in engine.solve_batch(batch)]
[2.0, 2.0, 2.0]
"""

from .executors import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    get_executor,
)
from .merge import merge_shard_results
from .planner import (
    BatchPlan,
    LRUCache,
    Query,
    QueryEngine,
    dataset_fingerprint,
    resolve_task_backend,
    solve_query,
)
from .sharding import Shard, ShardPlan, choose_tile_sides, plan_shards, tile_keys_for_point

__all__ = [
    "BatchPlan",
    "Query",
    "QueryEngine",
    "LRUCache",
    "dataset_fingerprint",
    "solve_query",
    "resolve_task_backend",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "get_executor",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "choose_tile_sides",
    "tile_keys_for_point",
    "merge_shard_results",
]
