"""The query engine: routing, deduplication, caching and sharded execution.

:class:`QueryEngine` turns the library's one-shot solver functions into a
batch-serving engine over one dataset:

* a :class:`Query` is a frozen, hashable description of what to solve --
  shape (disk / rectangle / interval), exact or approximate, weighted or
  colored -- so identical queries deduplicate and cache for free;
* the planner routes each query to the right solver (the same functions the
  rest of the library exposes), shards the dataset with a halo matched to
  the query's extent (:mod:`repro.engine.sharding`), runs the shards on a
  pluggable executor (:mod:`repro.engine.executors`) and folds the results
  back together (:mod:`repro.engine.merge`);
* answers are cached in an LRU keyed by *dataset fingerprint + query*, so a
  re-issued query is served without touching a solver, and shardings are
  memoised per halo so queries with the same extent share the partitioning
  work.

Shard tasks from all cache-missing queries of a batch are flattened into one
task list before hitting the executor, so a batch parallelises across
queries *and* shards at once.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..boxes import colored_maxrs_box
from ..core import colored_maxrs_disk, max_range_sum_ball
from ..core._inputs import normalize_colored, normalize_weighted
from ..core.geometry import ColoredPoint
from ..core.result import MaxRSResult
from ..exact import (
    colored_maxrs_disk_sweep,
    colored_maxrs_interval_exact,
    colored_maxrs_rectangle_exact,
    maxrs_disk_exact,
    maxrs_interval_exact,
    maxrs_rectangle_exact,
)
from ..kernels import resolve_backend
from ..obs import tracing as obs
from .executors import Executor, get_executor
from .merge import merge_shard_results
from .sharding import Shard, ShardPlan, plan_shards

__all__ = [
    "BatchPlan",
    "Query",
    "QueryEngine",
    "LRUCache",
    "dataset_fingerprint",
    "solve_query",
    "resolve_task_backend",
]

Coords = Tuple[float, ...]


# --------------------------------------------------------------------------- #
# query descriptions
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class Query:
    """A hashable description of one MaxRS query.

    Use the named constructors (:meth:`disk`, :meth:`rectangle`,
    :meth:`interval` and their ``colored_`` / ``_approx`` variants) rather
    than the raw dataclass fields.  Being frozen and hashable is what lets
    the planner deduplicate identical queries and key its result cache.
    """

    shape: str                      # "disk" | "rectangle" | "interval"
    exact: bool = True
    colored: bool = False
    radius: Optional[float] = None
    width: Optional[float] = None
    height: Optional[float] = None
    length: Optional[float] = None
    epsilon: Optional[float] = None
    seed: Optional[int] = None
    #: Kernel backend ("auto" | "python" | "numpy" | a registered name) for
    #: the routed solver's inner loops.  Honoured by every weighted solver
    #: and the colored disk solvers; the colored rectangle/box/interval
    #: solvers have no kernel hooks yet and run their reference loops
    #: regardless.
    backend: str = "auto"

    def __post_init__(self):
        if self.shape not in ("disk", "rectangle", "interval"):
            raise ValueError("unknown query shape %r" % self.shape)
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty string, got %r" % (self.backend,))
        if self.shape == "disk":
            if self.radius is None or self.radius <= 0:
                raise ValueError("disk queries need a positive radius")
        elif self.shape == "rectangle":
            if self.width is None or self.height is None or self.width <= 0 or self.height <= 0:
                raise ValueError("rectangle queries need positive width and height")
        else:
            if self.length is None or self.length <= 0:
                raise ValueError("interval queries need a positive length")
        if not self.exact and self.epsilon is None:
            raise ValueError("approximate queries need an epsilon")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def disk(radius: float, backend: str = "auto") -> "Query":
        """Exact weighted disk MaxRS (planar)."""
        return Query(shape="disk", radius=radius, backend=backend)

    @staticmethod
    def disk_approx(radius: float, epsilon: float = 0.25, seed: Optional[int] = 0,
                    backend: str = "auto") -> "Query":
        """(1/2 - eps)-approximate weighted d-ball MaxRS (Theorem 1.2)."""
        return Query(shape="disk", exact=False, radius=radius, epsilon=epsilon, seed=seed,
                     backend=backend)

    @staticmethod
    def rectangle(width: float, height: float, backend: str = "auto") -> "Query":
        """Exact weighted rectangle MaxRS (planar)."""
        return Query(shape="rectangle", width=width, height=height, backend=backend)

    @staticmethod
    def interval(length: float, backend: str = "auto") -> "Query":
        """Exact weighted interval MaxRS (1-d)."""
        return Query(shape="interval", length=length, backend=backend)

    @staticmethod
    def colored_disk(radius: float, backend: str = "auto") -> "Query":
        """Exact colored disk MaxRS (angular sweep)."""
        return Query(shape="disk", colored=True, radius=radius, backend=backend)

    @staticmethod
    def colored_disk_approx(radius: float, epsilon: float = 0.2,
                            seed: Optional[int] = 0, backend: str = "auto") -> "Query":
        """(1 - eps)-approximate colored disk MaxRS (Theorem 1.6)."""
        return Query(shape="disk", exact=False, colored=True, radius=radius,
                     epsilon=epsilon, seed=seed, backend=backend)

    @staticmethod
    def colored_rectangle(width: float, height: float) -> "Query":
        """Exact colored rectangle MaxRS."""
        return Query(shape="rectangle", colored=True, width=width, height=height)

    @staticmethod
    def colored_rectangle_approx(width: float, height: float, epsilon: float = 0.2,
                                 seed: Optional[int] = 0) -> "Query":
        """(1 - eps)-approximate colored box MaxRS (Theorem 1.6 analogue)."""
        return Query(shape="rectangle", exact=False, colored=True, width=width,
                     height=height, epsilon=epsilon, seed=seed)

    @staticmethod
    def colored_interval(length: float) -> "Query":
        """Exact colored interval MaxRS (1-d)."""
        return Query(shape="interval", colored=True, length=length)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    def halo(self, dim: int) -> Tuple[float, ...]:
        """Per-axis bound on the distance from a placement's anchor to any
        point it covers -- the sharding halo for this query."""
        if self.shape == "disk":
            return (float(self.radius),) * dim
        if self.shape == "rectangle":
            return (float(self.width), float(self.height))
        return (float(self.length),)

    @property
    def cost_class(self) -> str:
        """How the routed solver's running time scales in the shard size,
        which drives the planner's sharding granularity:

        * ``"quadratic"`` -- the ``O(m^2 log m)`` sweeps (weighted / colored
          disk, colored rectangle).  The smallest legal tiles both minimise
          total work and avoid stragglers, so sharding is a *work* optimisation
          even on one core.
        * ``"linearithmic"`` -- the ``O(m log m)`` sweeps (weighted rectangle
          and both intervals).  Sharding only buys parallelism, so shards
          should be coarse to keep halo replication low.
        * ``"sampled"`` -- the near-linear approximate solvers, whose large
          per-call fixed costs argue for one shard per worker.
        """
        if not self.exact:
            return "sampled"
        if self.shape == "disk" or (self.colored and self.shape == "rectangle"):
            return "quadratic"
        return "linearithmic"

    def describe(self) -> str:
        """Short human-readable label, used by the CLI and examples."""
        prefix = "colored " if self.colored else ""
        mode = "exact" if self.exact else "approx(eps=%g)" % self.epsilon
        if self.shape == "disk":
            geom = "disk r=%g" % self.radius
        elif self.shape == "rectangle":
            geom = "rectangle %gx%g" % (self.width, self.height)
        else:
            geom = "interval L=%g" % self.length
        suffix = "" if self.backend == "auto" else ", backend=%s" % self.backend
        return "%s%s [%s%s]" % (prefix, geom, mode, suffix)


# --------------------------------------------------------------------------- #
# solver routing
# --------------------------------------------------------------------------- #

def solve_query(
    query: Query,
    coords: Sequence[Coords],
    weights: Optional[Sequence[float]],
    colors: Optional[Sequence[Hashable]],
) -> MaxRSResult:
    """Run the solver a query routes to, on explicit parallel-list data.

    This is the single dispatch point shared by the sharded path (one call
    per shard, possibly in a worker process) and the direct path (one call on
    the whole dataset).  Module-level so it is picklable for
    :class:`~repro.engine.executors.ProcessPoolExecutor`.

    Under an active trace each call emits one ``kernel.solve`` span tagged
    with the query's shape/backend/mode and the input population -- the
    leaf every traced request tree bottoms out in.
    """
    with obs.span("kernel.solve", shape=query.shape, backend=query.backend,
                  exact=query.exact, colored=query.colored, n=len(coords)):
        return _route_query(query, coords, weights, colors)


def _route_query(
    query: Query,
    coords: Sequence[Coords],
    weights: Optional[Sequence[float]],
    colors: Optional[Sequence[Hashable]],
) -> MaxRSResult:
    """The un-traced solver dispatch behind :func:`solve_query`."""
    if query.colored:
        if query.shape == "disk":
            if query.exact:
                return colored_maxrs_disk_sweep(coords, radius=query.radius, colors=colors,
                                                backend=query.backend)
            return colored_maxrs_disk(coords, radius=query.radius, epsilon=query.epsilon,
                                      colors=colors, seed=query.seed, backend=query.backend)
        if query.shape == "rectangle":
            if query.exact:
                return colored_maxrs_rectangle_exact(coords, query.width, query.height,
                                                     colors=colors)
            return colored_maxrs_box(coords, query.width, query.height, query.epsilon,
                                     colors=colors, seed=query.seed)
        return colored_maxrs_interval_exact(coords, query.length, colors=colors)

    if query.shape == "disk":
        if query.exact:
            return maxrs_disk_exact(coords, radius=query.radius, weights=weights,
                                    backend=query.backend)
        return max_range_sum_ball(coords, radius=query.radius, epsilon=query.epsilon,
                                  weights=weights, seed=query.seed, backend=query.backend)
    if query.shape == "rectangle":
        return maxrs_rectangle_exact(coords, width=query.width, height=query.height,
                                     weights=weights, backend=query.backend)
    return maxrs_interval_exact(coords, length=query.length, weights=weights,
                                backend=query.backend)


def resolve_task_backend(backend: str, shard_population: int) -> str:
    """Per-shard kernel-backend choice, shared by the batch planner and the
    streaming monitors.

    ``"auto"`` resolves against the *shard's* population (not the whole
    dataset's), so fine shards run the pure-Python loops -- no NumPy per-call
    overhead -- while big shards vectorise.  Explicit backend names are
    validated (unknown names raise ``ValueError``) and returned unchanged.
    """
    return resolve_backend(backend, shard_population)


def _solve_shard_task(task: Tuple[Query, Shard]) -> MaxRSResult:
    """Executor task: solve one query on one shard (picklable payload)."""
    query, shard = task
    return solve_query(query, shard.coords, shard.weights, shard.colors)


def _solve_shard_descriptor_task(task) -> MaxRSResult:
    """Executor task for the shared-memory path: solve one query on one
    shard addressed by a :class:`repro.parallel.ShardDescriptor`.

    The descriptor resolves against the process-local attachment cache, so
    the task's pickled payload is the query plus a few segment names and an
    index range -- no point data crosses the process boundary.  Exact
    weighted queries bound for the NumPy kernels resolve as raw array
    slices (the solvers' ``prefer_arrays`` fast path skips per-point
    normalisation entirely); everything else materialises the usual
    parallel lists, bit-identically to the pickled payloads.
    """
    query, descriptor = task
    arrays = query.exact and not query.colored and query.backend == "numpy"
    coords, weights, colors = descriptor.resolve(arrays=arrays)
    return solve_query(query, coords, weights, colors)


def _solve_shard_task_traced(task):
    """Traced executor task: like :func:`_solve_shard_task`, but runs under
    a worker-side span capture and returns ``(result, records)`` so the
    parent can graft the shard's ``shard.solve`` subtree into its trace.

    The capture is unconditional -- the parent already decided to trace
    when it chose this task function, and worker processes may not share
    its environment or programmatic tracing switch.
    """
    query, shard, tags = task
    with obs.capture("shard.solve", **tags) as captured:
        result = solve_query(query, shard.coords, shard.weights, shard.colors)
    return result, captured.records


def _solve_shard_descriptor_task_traced(task):
    """Traced executor task for the shared-memory path: like
    :func:`_solve_shard_descriptor_task`, returning ``(result, records)``
    with the worker-captured ``shard.solve`` subtree (see
    :func:`_solve_shard_task_traced`)."""
    query, descriptor, tags = task
    with obs.capture("shard.solve", **tags) as captured:
        arrays = query.exact and not query.colored and query.backend == "numpy"
        coords, weights, colors = descriptor.resolve(arrays=arrays)
        result = solve_query(query, coords, weights, colors)
    return result, captured.records


# --------------------------------------------------------------------------- #
# caching
# --------------------------------------------------------------------------- #

_MISSING = object()


class LRUCache:
    """A small least-recently-used map with hit / miss counters."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        self._data: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def peek(self, key):
        """Return the cached value without touching recency or the hit/miss
        counters (used by non-mutating planning passes)."""
        value = self._data.get(key, _MISSING)
        return None if value is _MISSING else value

    def get(self, key):
        """Return the cached value (refreshing recency) or ``None``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


def dataset_fingerprint(
    coords: Sequence[Coords],
    weights: Optional[Sequence[float]] = None,
    colors: Optional[Sequence[Hashable]] = None,
) -> str:
    """Stable content hash of a dataset, used to key the result cache.

    Two engines over identical data produce identical cache keys; any change
    to a coordinate, weight or color changes the fingerprint.
    """
    digest = hashlib.blake2b(digest_size=16)
    array = np.asarray(coords, dtype=float)
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    if weights is not None:
        digest.update(b"w")
        digest.update(np.asarray(weights, dtype=float).tobytes())
    if colors is not None:
        digest.update(b"c")
        digest.update(repr(list(colors)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class BatchPlan:
    """What executing a query batch would cost, without executing it.

    Produced by :meth:`QueryEngine.batch_plan` for the serving layer
    (:mod:`repro.service`), which uses it to route micro-batches: a batch
    that is entirely cache hits can be served without touching an executor,
    and the shard-task count bounds the work a flush will enqueue.

    Attributes
    ----------
    unique:
        The distinct queries of the batch, in first-appearance order (the
        order :meth:`QueryEngine.solve_batch` would solve them in).
    duplicates:
        How many submitted queries were duplicates of an earlier one (the
        coalescing opportunity).
    cached:
        The subset of ``unique`` already present in the engine's result
        cache (served without solving).
    shard_tasks:
        Executor tasks a flush would submit: the sum of shard counts over
        the non-cached unique queries.
    cost_classes:
        ``query -> cost_class`` for the non-cached unique queries (see
        :attr:`Query.cost_class`), the routing signal for batch formation.
    """

    unique: Tuple[Query, ...]
    duplicates: int
    cached: Tuple[Query, ...]
    shard_tasks: int
    cost_classes: Dict[Query, str]


# --------------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------------- #

class QueryEngine:
    """Serve heterogeneous MaxRS query batches over one dataset.

    Parameters
    ----------
    points, weights, colors:
        The dataset, in any form the library's solvers accept.  Colors are
        kept only when supplied explicitly or carried by ``ColoredPoint``
        inputs; colored queries require them.
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, ``"shared-process"``, or
        an :class:`~repro.engine.executors.Executor` instance.  ``None``
        (the default) honours the ``REPRO_EXECUTOR`` environment variable
        and otherwise stays serial.  ``"shared-process"`` publishes the
        dataset once to a :class:`repro.parallel.SharedDatasetStore` the
        engine owns (released on :meth:`close`) and submits shard
        *descriptors* -- index ranges into the store -- instead of pickled
        point payloads.
    workers:
        Worker count for the pooled executors; defaults to the CPU count.
    target_shards:
        Optional override for the number of spatial shards per query.  By
        default the planner picks the granularity from the query's
        :attr:`Query.cost_class` (see :meth:`shard_plan`).
    cache_size:
        Capacity of the LRU result cache (``0`` disables caching).

    Examples
    --------
    >>> from repro.engine import Query, QueryEngine
    >>> engine = QueryEngine([(0.0, 0.0), (0.5, 0.5), (5.0, 5.0)])
    >>> engine.solve(Query.disk(1.0)).value
    2.0
    """

    def __init__(
        self,
        points: Sequence,
        *,
        weights: Optional[Sequence[float]] = None,
        colors: Optional[Sequence[Hashable]] = None,
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
        target_shards: Optional[int] = None,
        cache_size: int = 128,
    ):
        points = list(points)
        coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
        if any(w < 0 for w in weight_list):
            # Max-merging shard results is only sound when adding points can
            # never lower a placement's value; a shard blind to a nearby
            # negative-weight point would overestimate and win the merge.
            raise ValueError(
                "QueryEngine requires non-negative weights: the sharded max-merge "
                "is unsound otherwise (use the solvers directly for guard points)"
            )
        self._coords: List[Coords] = coords
        self._weights: List[float] = weight_list
        self.dim = dim
        if colors is not None or any(isinstance(p, ColoredPoint) for p in points):
            _, color_list, _ = normalize_colored(points, colors)
            self._colors: Optional[List[Hashable]] = color_list
        else:
            self._colors = None

        self._executor = get_executor(executor, workers)
        self.target_shards = target_shards
        self.fingerprint = dataset_fingerprint(coords, self._weights, self._colors)
        self._cache = LRUCache(cache_size)
        self._plans: Dict[Tuple, ShardPlan] = {}  # (halo..., target_shards) -> plan
        self._index_blocks: Dict[Tuple, "IndexBlockHandle"] = {}  # same keys
        self._shards_solved = 0
        self._queries_served = 0

        # The shared-memory path: publish the dataset once so worker
        # processes resolve shard index ranges against it instead of
        # receiving pickled point payloads.  The engine owns this store and
        # releases it on close(); empty datasets stay store-less (there is
        # nothing to publish and no shard tasks to run).
        self._store = None
        if self._executor.kind == "shared-process" and self._coords:
            from ..parallel import SharedDatasetStore

            self._store = SharedDatasetStore(
                self._coords, weights=self._weights, colors=self._colors)
            bind = getattr(self._executor, "bind_store", None)
            if bind is not None and getattr(self._executor, "store", None) is None:
                bind(self._store)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._coords)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the executor's worker pool (if any) and release the
        shared-memory dataset store the engine owns (if any); idempotent."""
        self._executor.close()
        if self._store is not None:
            self._store.release()
            self._store = None
            self._index_blocks.clear()

    @property
    def store(self):
        """The engine-owned :class:`repro.parallel.SharedDatasetStore`
        backing the ``"shared-process"`` executor (``None`` otherwise) --
        exposed for the lifecycle/leak regression tests."""
        return self._store

    def clear_cache(self) -> None:
        """Drop all cached results (keeps the memoised shardings)."""
        self._cache.clear()

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: queries served, cache hits / misses, shard tasks run."""
        return {
            "queries": self._queries_served,
            "cache_hits": self._cache.hits,
            "cache_misses": self._cache.misses,
            "shards_solved": self._shards_solved,
            "cached_results": len(self._cache),
        }

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def _validate(self, query: Query) -> None:
        if query.colored and self._colors is None:
            raise ValueError(
                "colored query %s on a dataset without colors" % query.describe()
            )
        if not self._coords:
            return
        if query.shape == "interval":
            if self.dim != 1:
                raise ValueError("interval queries need 1-d data, got dim=%d" % self.dim)
        elif query.shape == "rectangle" or query.exact or query.colored:
            # Only the approximate weighted d-ball solver handles dim != 2.
            if self.dim != 2:
                raise ValueError(
                    "query %s needs planar data, got dim=%d" % (query.describe(), self.dim)
                )

    def shard_plan(self, query: Query) -> ShardPlan:
        """The (memoised) sharding this query's extent induces.

        Unless ``target_shards`` overrides it, granularity follows the
        query's :attr:`Query.cost_class`: quadratic solvers get shards that
        scale with the dataset (~200 points each) because shrinking the
        quadratic per-shard population shrinks *total* work, not just
        wall-clock -- though not all the way down to the ``2 x halo`` tile
        floor, since a dense cluster smaller than a tile is replicated into
        every overlapping shard and re-paid quadratically.  Linearithmic
        solvers get a handful of coarse shards per worker (sharding only
        buys them parallelism, so halo replication is the enemy), and the
        sampled approximate solvers get one shard per worker (their
        per-call fixed costs dwarf their dependence on shard size).
        """
        key = self._plan_key(query)
        plan = self._plans.get(key)
        if plan is None:
            plan = plan_shards(
                self._coords,
                key[:-1],
                weights=self._weights,
                colors=self._colors,
                target_shards=key[-1],
            )
            self._plans[key] = plan
        return plan

    def _plan_key(self, query: Query) -> Tuple:
        """The memoisation key of a query's sharding: its halo plus the
        target granularity its cost class (or ``target_shards``) picks."""
        halo = query.halo(self.dim)
        if self.target_shards is not None:
            target = self.target_shards
        else:
            cost = query.cost_class
            if cost == "quadratic":
                if query.backend == "numpy":
                    # The vectorised sweeps amortise their per-call setup over
                    # the shard, so larger shards (~2k points) cut the halo
                    # replication without starving the kernels.
                    target = max(4, self._executor.workers,
                                 len(self._coords) // 2048)
                else:
                    target = max(16, 4 * self._executor.workers, len(self._coords) // 192)
            elif cost == "linearithmic":
                target = max(16, 4 * self._executor.workers)
            else:
                target = max(1, self._executor.workers)
        return halo + (target,)

    def _shard_index_block(self, query: Query, plan: ShardPlan):
        """The (memoised) shared-memory index block of one sharding plan:
        every shard's point indices concatenated into one segment, published
        once per plan so repeat queries re-send nothing."""
        key = self._plan_key(query)
        block = self._index_blocks.get(key)
        if block is None:
            block = self._store.publish_index_block(
                [shard.indices for shard in plan.shards])
            self._index_blocks[key] = block
        return block

    def _empty_result(self, query: Query) -> MaxRSResult:
        return solve_query(query, [], [], [] if self._colors is not None else None)

    def batch_plan(self, queries: Sequence[Query]) -> BatchPlan:
        """Plan a batch without executing it (the serving layer's routing hook).

        Deduplicates the batch, peeks at the result cache (without touching
        recency or the hit/miss counters) and sums the shard tasks a
        :meth:`solve_batch` flush would submit for the remaining queries.
        Validates every query, so a planned batch cannot fail routing at
        flush time.
        """
        unique: List[Query] = []
        seen = set()
        for query in queries:
            if query not in seen:
                seen.add(query)
                unique.append(query)
        cached: List[Query] = []
        shard_tasks = 0
        cost_classes: Dict[Query, str] = {}
        for query in unique:
            self._validate(query)
            if self._cache.peek((self.fingerprint, query)) is not None:
                cached.append(query)
                continue
            cost_classes[query] = query.cost_class
            shard_tasks += len(self.shard_plan(query).shards) if self._coords else 0
        return BatchPlan(
            unique=tuple(unique),
            duplicates=len(queries) - len(unique),
            cached=tuple(cached),
            shard_tasks=shard_tasks,
            cost_classes=cost_classes,
        )

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #

    def solve(self, query: Query) -> MaxRSResult:
        """Solve one query (cached, sharded, executor-backed)."""
        return self.solve_batch([query])[0]

    def solve_direct(self, query: Query) -> MaxRSResult:
        """Bypass sharding and caching: run the underlying solver once on the
        whole dataset.  The reference path the engine is validated against."""
        with obs.trace("engine.solve_direct", query=query.describe(),
                       n=len(self._coords)):
            self._validate(query)
            return solve_query(query, self._coords, self._weights, self._colors)

    def solve_batch(self, queries: Sequence[Query]) -> List[MaxRSResult]:
        """Solve a heterogeneous batch.

        Identical queries are deduplicated, cached answers are served
        without solving, and the shard tasks of all remaining queries are
        flattened into a single executor submission (parallel across queries
        and shards at once).  Results come back in input order.

        Under tracing (``REPRO_TRACE=1``, :func:`repro.obs.set_enabled`, or
        an enclosing trace) the flush emits an ``engine.solve_batch`` span
        tree: per-query ``engine.plan`` / ``engine.merge`` spans, one
        ``engine.execute`` span around the executor submission with a
        ``shard.solve`` child per task (captured inside the worker, grafted
        back here), and a derived ``engine.queue`` span attributing the
        dispatch wall time the shard solves themselves do not account for.
        """
        with obs.trace("engine.solve_batch", queries=len(queries),
                       executor=self._executor.kind) as batch_span:
            return self._solve_batch_spanned(queries, batch_span)

    def _solve_batch_spanned(self, queries: Sequence[Query],
                             batch_span) -> List[MaxRSResult]:
        """The body of :meth:`solve_batch`, run inside its root span."""
        unique: List[Query] = []
        seen = set()
        for query in queries:
            if query not in seen:
                seen.add(query)
                unique.append(query)

        resolved: Dict[Query, MaxRSResult] = {}
        misses: List[Query] = []
        for query in unique:
            cached = self._cache.get((self.fingerprint, query))
            if cached is not None:
                resolved[query] = cached
            else:
                misses.append(query)
        batch_span.tag(unique=len(unique), misses=len(misses))

        if misses:
            traced = obs.tracing_active()
            tasks: List[Tuple] = []
            groups: List[Tuple[Query, int]] = []
            for query in misses:
                with obs.span("engine.plan",
                              query=query.describe()) as plan_span:
                    self._validate(query)
                    plan = self.shard_plan(query)
                    plan_span.tag(shards=len(plan.shards))
                groups.append((query, len(plan.shards)))
                # The shared-memory path replaces each shard's point payload
                # with a descriptor (segment names + index range) resolved
                # inside the worker against the published dataset store.
                block = (self._shard_index_block(query, plan)
                         if self._store is not None else None)
                dataset = self._store.handle() if self._store is not None else None
                # Per-shard backend selection: "auto" is resolved against each
                # shard's population, so fine shards run the pure-Python loops
                # (no NumPy per-call overhead) while big shards vectorise.
                # Explicit backends pass through untouched; the cache keeps
                # keying on the original query.
                for ordinal, shard in enumerate(plan.shards):
                    task_query = query
                    if query.backend == "auto":
                        task_query = replace(query, backend=resolve_task_backend("auto", len(shard)))
                    payload = (block.descriptor(dataset, ordinal)
                               if block is not None else shard)
                    if traced:
                        # Traced tasks carry their span tags and return the
                        # worker-captured records alongside the result.
                        tasks.append((task_query, payload, {
                            "query": query.describe(), "shard": ordinal,
                            "backend": task_query.backend,
                            "points": len(shard)}))
                    else:
                        tasks.append((task_query, payload))

            if self._store is not None:
                task_fn = (_solve_shard_descriptor_task_traced if traced
                           else _solve_shard_descriptor_task)
            else:
                task_fn = (_solve_shard_task_traced if traced
                           else _solve_shard_task)
            with obs.span("engine.execute", tasks=len(tasks),
                          executor=self._executor.kind,
                          workers=self._executor.workers) as exec_span:
                shard_results = self._executor.map(task_fn, tasks)
            self._shards_solved += len(tasks)

            if traced:
                # Graft every worker-captured shard subtree under the
                # execute span, then attribute the dispatch wall time the
                # shard solves do not cover as a derived engine.queue span
                # (busy time is divided by the effective parallelism, so
                # with one worker queue + shard time = execute wall time).
                busy = 0.0
                plain: List[MaxRSResult] = []
                for result, records in shard_results:
                    exec_span.graft(records)
                    busy += sum(record.duration for record in records
                                if record.parent_id is None)
                    plain.append(result)
                shard_results = plain
                parallelism = max(1, min(self._executor.workers, len(tasks)))
                exec_span.child(
                    "engine.queue",
                    max(0.0, exec_span.duration - busy / parallelism),
                    tasks=len(tasks), parallelism=parallelism)

            cursor = 0
            for query, count in groups:
                group = shard_results[cursor:cursor + count]
                cursor += count
                with obs.span("engine.merge", query=query.describe(),
                              shards=count):
                    merged = merge_shard_results(group, empty=self._empty_result(query))
                    meta = dict(merged.meta)
                    if "n" in meta:
                        meta["n"] = len(self._coords)  # not the winning shard's population
                    meta["executor"] = self._executor.kind
                    merged = MaxRSResult(value=merged.value, center=merged.center,
                                         shape=merged.shape, exact=merged.exact, meta=meta)
                self._cache.put((self.fingerprint, query), merged)
                resolved[query] = merged

        self._queries_served += len(queries)
        return [resolved[query] for query in queries]
