"""The query engine: routing, deduplication, caching and sharded execution.

:class:`QueryEngine` turns the library's one-shot solver functions into a
batch-serving engine over one dataset:

* a :class:`Query` is a frozen, hashable description of what to solve --
  shape (disk / rectangle / interval), exact or approximate, weighted or
  colored -- so identical queries deduplicate and cache for free;
* the planner routes each query to the right solver (the same functions the
  rest of the library exposes), shards the dataset with a halo matched to
  the query's extent (:mod:`repro.engine.sharding`), runs the shards on a
  pluggable executor (:mod:`repro.engine.executors`) and folds the results
  back together (:mod:`repro.engine.merge`);
* answers are cached in an LRU keyed by *dataset fingerprint + query*, so a
  re-issued query is served without touching a solver, and shardings are
  memoised per halo so queries with the same extent share the partitioning
  work.

Shard tasks from all cache-missing queries of a batch are flattened into one
task list before hitting the executor, so a batch parallelises across
queries *and* shards at once.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..batched import batched_maxrs_1d, batched_maxrs_rectangles
from ..boxes import colored_maxrs_box, colored_maxrs_box3d_exact
from ..core import colored_maxrs_disk, max_range_sum_ball
from ..core._inputs import normalize_colored, normalize_weighted
from ..core.geometry import ColoredPoint, point_in_ball, point_in_box
from ..core.result import MaxRSResult
from ..exact import (
    colored_maxrs_disk_sweep,
    colored_maxrs_interval_exact,
    colored_maxrs_rectangle_exact,
    maxrs_disk_exact,
    maxrs_interval_exact,
    maxrs_rectangle_exact,
)
from ..kernels import resolve_backend
from ..obs import tracing as obs
from ..regions.decay import decayed_maxrs
from ..regions.topk import PlacementScore, top_k_maxrs_disk, top_k_maxrs_rectangle
from .executors import Executor, get_executor
from .merge import merge_batched_results, merge_shard_results
from .sharding import Shard, ShardPlan, plan_shards

__all__ = [
    "BatchPlan",
    "Query",
    "QueryEngine",
    "LRUCache",
    "dataset_fingerprint",
    "solve_query",
    "resolve_task_backend",
]

Coords = Tuple[float, ...]


# --------------------------------------------------------------------------- #
# query descriptions
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class Query:
    """A hashable description of one MaxRS query.

    Use the named constructors (:meth:`disk`, :meth:`rectangle`,
    :meth:`interval`, their ``colored_`` / ``_approx`` variants, and the
    family constructors :meth:`topk_rectangle` / :meth:`topk_disk` /
    :meth:`batched_intervals` / :meth:`batched_rectangles` /
    :meth:`decayed_disk` / :meth:`decayed_rectangle` /
    :meth:`decayed_interval` / :meth:`colored_box3d`) rather than the raw
    dataclass fields.  Being frozen and hashable is what lets the planner
    deduplicate identical queries and key its result cache.

    ``family`` selects the long-tail query families beyond a single
    placement: ``"topk"`` asks for ``k`` greedy disjoint placements,
    ``"decayed"`` weights point ``i`` by ``gamma ** (as_of - i)`` of its
    arrival order, ``"batched"`` answers a whole tuple of interval lengths /
    rectangle sizes as one query, and ``"colored_box3d"`` is the exact
    colored (distinct-count) axis-aligned box in R^3.
    """

    shape: str                      # "disk" | "rectangle" | "interval" | "box"
    exact: bool = True
    colored: bool = False
    radius: Optional[float] = None
    width: Optional[float] = None
    height: Optional[float] = None
    length: Optional[float] = None
    epsilon: Optional[float] = None
    seed: Optional[int] = None
    #: Kernel backend ("auto" | "python" | "numpy" | a registered name) for
    #: the routed solver's inner loops.  Honoured by every weighted solver
    #: and the colored disk solvers; the colored rectangle/box/interval
    #: solvers have no kernel hooks yet and run their reference loops
    #: regardless.
    backend: str = "auto"
    #: Query family: "single" | "topk" | "batched" | "decayed" | "colored_box3d".
    family: str = "single"
    k: Optional[int] = None                       # topk: number of placements
    gamma: Optional[float] = None                 # decayed: per-tick decay factor
    as_of: Optional[int] = None                   # decayed: query horizon tick
    lengths: Optional[Tuple[float, ...]] = None   # batched intervals
    sizes: Optional[Tuple[Tuple[float, float], ...]] = None  # batched rectangles
    depth: Optional[float] = None                 # box: z side length

    def __post_init__(self):
        if self.shape not in ("disk", "rectangle", "interval", "box"):
            raise ValueError("unknown query shape %r" % self.shape)
        if self.family not in ("single", "topk", "batched", "decayed", "colored_box3d"):
            raise ValueError("unknown query family %r" % self.family)
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty string, got %r" % (self.backend,))
        # JSONL trace round-trips deliver lists; coerce back to tuples so the
        # query stays hashable and equal to its pre-serialisation self.
        if self.lengths is not None:
            object.__setattr__(self, "lengths",
                               tuple(float(value) for value in self.lengths))
        if self.sizes is not None:
            object.__setattr__(self, "sizes",
                               tuple((float(w), float(h)) for w, h in self.sizes))
        if self.colored and self.shape == "interval" and not self.exact:
            # There is no approximate colored interval path; before this
            # guard the router silently served the *exact* sweep for such
            # queries, misreporting an exact answer as approximate.
            raise ValueError(
                "approximate colored interval queries are not supported (no "
                "approx path exists; use Query.colored_interval() for the "
                "exact solver)")
        if self.family == "topk":
            if self.colored or not self.exact:
                raise ValueError("topk queries are exact and weighted")
            if self.k is None or self.k < 1:
                raise ValueError("topk queries need k >= 1, got %r" % (self.k,))
            if self.shape not in ("rectangle", "disk"):
                raise ValueError("topk queries support rectangles and disks, "
                                 "not %r" % self.shape)
        elif self.family == "decayed":
            if self.colored or not self.exact:
                raise ValueError("decayed queries are exact and weighted")
            if self.gamma is None or not 0.0 < self.gamma < 1.0:
                raise ValueError("decayed queries need gamma strictly between "
                                 "0 and 1, got %r" % (self.gamma,))
            if self.as_of is not None and self.as_of < 0:
                raise ValueError("as_of must be a non-negative tick")
            if self.shape == "box":
                raise ValueError("decayed queries support disk, rectangle and "
                                 "interval shapes")
        elif self.family == "colored_box3d":
            if self.shape != "box" or not self.colored or not self.exact:
                raise ValueError("colored_box3d queries are exact colored "
                                 "box-shaped queries")
        elif self.shape == "box":
            raise ValueError("box-shaped queries are served via "
                             "family='colored_box3d'")
        if self.family == "batched":
            if self.colored or not self.exact:
                raise ValueError("batched queries are exact and weighted")
            if self.shape == "interval":
                if not self.lengths or any(value <= 0 for value in self.lengths):
                    raise ValueError("batched interval queries need a non-empty "
                                     "tuple of positive lengths")
            elif self.shape == "rectangle":
                if not self.sizes or any(w <= 0 or h <= 0 for w, h in self.sizes):
                    raise ValueError("batched rectangle queries need a non-empty "
                                     "tuple of positive (width, height) sizes")
            else:
                raise ValueError("batched queries support interval lengths or "
                                 "rectangle sizes, not %r" % self.shape)
        elif self.shape == "disk":
            if self.radius is None or self.radius <= 0:
                raise ValueError("disk queries need a positive radius")
        elif self.shape == "rectangle":
            if self.width is None or self.height is None or self.width <= 0 or self.height <= 0:
                raise ValueError("rectangle queries need positive width and height")
        elif self.shape == "box":
            if (self.width is None or self.height is None or self.depth is None
                    or self.width <= 0 or self.height <= 0 or self.depth <= 0):
                raise ValueError("box queries need positive width, height and depth")
        else:
            if self.length is None or self.length <= 0:
                raise ValueError("interval queries need a positive length")
        if not self.exact and self.epsilon is None:
            raise ValueError("approximate queries need an epsilon")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def disk(radius: float, backend: str = "auto") -> "Query":
        """Exact weighted disk MaxRS (planar)."""
        return Query(shape="disk", radius=radius, backend=backend)

    @staticmethod
    def disk_approx(radius: float, epsilon: float = 0.25, seed: Optional[int] = 0,
                    backend: str = "auto") -> "Query":
        """(1/2 - eps)-approximate weighted d-ball MaxRS (Theorem 1.2)."""
        return Query(shape="disk", exact=False, radius=radius, epsilon=epsilon, seed=seed,
                     backend=backend)

    @staticmethod
    def rectangle(width: float, height: float, backend: str = "auto") -> "Query":
        """Exact weighted rectangle MaxRS (planar)."""
        return Query(shape="rectangle", width=width, height=height, backend=backend)

    @staticmethod
    def interval(length: float, backend: str = "auto") -> "Query":
        """Exact weighted interval MaxRS (1-d)."""
        return Query(shape="interval", length=length, backend=backend)

    @staticmethod
    def colored_disk(radius: float, backend: str = "auto") -> "Query":
        """Exact colored disk MaxRS (angular sweep)."""
        return Query(shape="disk", colored=True, radius=radius, backend=backend)

    @staticmethod
    def colored_disk_approx(radius: float, epsilon: float = 0.2,
                            seed: Optional[int] = 0, backend: str = "auto") -> "Query":
        """(1 - eps)-approximate colored disk MaxRS (Theorem 1.6)."""
        return Query(shape="disk", exact=False, colored=True, radius=radius,
                     epsilon=epsilon, seed=seed, backend=backend)

    @staticmethod
    def colored_rectangle(width: float, height: float) -> "Query":
        """Exact colored rectangle MaxRS."""
        return Query(shape="rectangle", colored=True, width=width, height=height)

    @staticmethod
    def colored_rectangle_approx(width: float, height: float, epsilon: float = 0.2,
                                 seed: Optional[int] = 0) -> "Query":
        """(1 - eps)-approximate colored box MaxRS (Theorem 1.6 analogue)."""
        return Query(shape="rectangle", exact=False, colored=True, width=width,
                     height=height, epsilon=epsilon, seed=seed)

    @staticmethod
    def colored_interval(length: float) -> "Query":
        """Exact colored interval MaxRS (1-d)."""
        return Query(shape="interval", colored=True, length=length)

    @staticmethod
    def topk_rectangle(width: float, height: float, k: int,
                       backend: str = "auto") -> "Query":
        """Greedy top-k disjoint rectangle placements (regions/topk)."""
        return Query(shape="rectangle", family="topk", k=k, width=width,
                     height=height, backend=backend)

    @staticmethod
    def topk_disk(radius: float, k: int, backend: str = "auto") -> "Query":
        """Greedy top-k disjoint disk placements (regions/topk)."""
        return Query(shape="disk", family="topk", k=k, radius=radius,
                     backend=backend)

    @staticmethod
    def batched_intervals(lengths: Sequence[float], backend: str = "auto") -> "Query":
        """Batched 1-d MaxRS: one answer per interval length (Theorem 1.3 oracle)."""
        return Query(shape="interval", family="batched", lengths=tuple(lengths),
                     backend=backend)

    @staticmethod
    def batched_rectangles(sizes: Sequence[Tuple[float, float]],
                           backend: str = "auto") -> "Query":
        """Batched planar MaxRS: one answer per (width, height) size."""
        return Query(shape="rectangle", family="batched",
                     sizes=tuple(tuple(size) for size in sizes), backend=backend)

    @staticmethod
    def decayed_disk(radius: float, gamma: float, as_of: Optional[int] = None,
                     backend: str = "auto") -> "Query":
        """Exact disk MaxRS under arrival-order exponential decay ([TT22])."""
        return Query(shape="disk", family="decayed", radius=radius, gamma=gamma,
                     as_of=as_of, backend=backend)

    @staticmethod
    def decayed_rectangle(width: float, height: float, gamma: float,
                          as_of: Optional[int] = None,
                          backend: str = "auto") -> "Query":
        """Exact rectangle MaxRS under arrival-order exponential decay."""
        return Query(shape="rectangle", family="decayed", width=width,
                     height=height, gamma=gamma, as_of=as_of, backend=backend)

    @staticmethod
    def decayed_interval(length: float, gamma: float, as_of: Optional[int] = None,
                         backend: str = "auto") -> "Query":
        """Exact interval MaxRS under arrival-order exponential decay (1-d)."""
        return Query(shape="interval", family="decayed", length=length,
                     gamma=gamma, as_of=as_of, backend=backend)

    @staticmethod
    def colored_box3d(width: float, height: float, depth: float) -> "Query":
        """Exact colored (distinct-count) axis-aligned box MaxRS in R^3."""
        return Query(shape="box", family="colored_box3d", colored=True,
                     width=width, height=height, depth=depth)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    def halo(self, dim: int) -> Tuple[float, ...]:
        """Per-axis bound on the distance from a placement's anchor to any
        point it covers -- the sharding halo for this query.  Batched
        queries take the per-axis maximum over their member extents, so one
        sharding is sound for every component."""
        if self.family == "batched":
            if self.shape == "interval":
                return (max(self.lengths),)
            return (max(w for w, _ in self.sizes), max(h for _, h in self.sizes))
        if self.shape == "disk":
            return (float(self.radius),) * dim
        if self.shape == "rectangle":
            return (float(self.width), float(self.height))
        if self.shape == "box":
            return (float(self.width), float(self.height), float(self.depth))
        return (float(self.length),)

    @property
    def cost_class(self) -> str:
        """How the routed solver's running time scales in the shard size,
        which drives the planner's sharding granularity:

        * ``"quadratic"`` -- the ``O(m^2 log m)`` sweeps (weighted / colored
          disk, colored rectangle, the colored 3-d box's z-slab sweep).  The
          smallest legal tiles both minimise total work and avoid
          stragglers, so sharding is a *work* optimisation even on one core.
        * ``"linearithmic"`` -- the ``O(m log m)`` sweeps (weighted rectangle
          and both intervals, plus the batched families that loop them).
          Sharding only buys parallelism, so shards should be coarse to keep
          halo replication low.
        * ``"sampled"`` -- the near-linear approximate solvers, whose large
          per-call fixed costs argue for one shard per worker.

        The top-k and decayed families inherit the class of their per-round /
        underlying sweep.
        """
        if not self.exact:
            return "sampled"
        if self.family == "batched":
            return "linearithmic"
        if self.shape == "box":
            return "quadratic"
        if self.shape == "disk" or (self.colored and self.shape == "rectangle"):
            return "quadratic"
        return "linearithmic"

    @property
    def shard_mode(self) -> str:
        """How the engine may distribute this query over shards:

        * ``"halo"`` -- the standard plan: solve every halo shard once and
          max-merge (component-wise for batched queries);
        * ``"peel"`` -- top-k: per-round sharded re-peel (each greedy round
          is one sharded rank-1 solve on the still-unclaimed points);
        * ``"direct"`` -- sharded merge cannot be made sound, so the engine
          answers on the full dataset in one call.  Decayed queries are
          direct: a point's decayed weight depends on its *global* arrival
          index, which a halo shard cannot see.  :class:`BatchPlan.direct`
          names these queries so the routing decision is visible in the plan.
        """
        if self.family == "decayed":
            return "direct"
        if self.family == "topk":
            return "peel"
        return "halo"

    def describe(self) -> str:
        """Short human-readable label, used by the CLI and examples."""
        prefix = "colored " if self.colored else ""
        mode = "exact" if self.exact else "approx(eps=%g)" % self.epsilon
        if self.family == "batched":
            if self.shape == "interval":
                geom = "batched intervals m=%d" % len(self.lengths)
            else:
                geom = "batched rectangles m=%d" % len(self.sizes)
        elif self.shape == "disk":
            geom = "disk r=%g" % self.radius
        elif self.shape == "rectangle":
            geom = "rectangle %gx%g" % (self.width, self.height)
        elif self.shape == "box":
            geom = "box %gx%gx%g" % (self.width, self.height, self.depth)
        else:
            geom = "interval L=%g" % self.length
        if self.family == "topk":
            geom = "top-%d %s" % (self.k, geom)
        elif self.family == "decayed":
            horizon = "" if self.as_of is None else ", as_of=%d" % self.as_of
            geom = "decayed(gamma=%g%s) %s" % (self.gamma, horizon, geom)
        suffix = "" if self.backend == "auto" else ", backend=%s" % self.backend
        return "%s%s [%s%s]" % (prefix, geom, mode, suffix)


# --------------------------------------------------------------------------- #
# solver routing
# --------------------------------------------------------------------------- #

def solve_query(
    query: Query,
    coords: Sequence[Coords],
    weights: Optional[Sequence[float]],
    colors: Optional[Sequence[Hashable]],
) -> MaxRSResult:
    """Run the solver a query routes to, on explicit parallel-list data.

    This is the single dispatch point shared by the sharded path (one call
    per shard, possibly in a worker process) and the direct path (one call on
    the whole dataset).  Module-level so it is picklable for
    :class:`~repro.engine.executors.ProcessPoolExecutor`.

    Under an active trace each call emits one ``kernel.solve`` span tagged
    with the query's shape/backend/mode and the input population -- the
    leaf every traced request tree bottoms out in.
    """
    with obs.span("kernel.solve", shape=query.shape, backend=query.backend,
                  exact=query.exact, colored=query.colored, n=len(coords)):
        return _route_query(query, coords, weights, colors)


def _topk_result(query: Query, placements: Sequence[PlacementScore],
                 n: int) -> MaxRSResult:
    """Fold a top-k placement list into one :class:`MaxRSResult`.

    The headline ``value``/``center`` are the rank-1 placement's; the full
    ranked list lives in ``meta["placements"]`` as plain tuples
    ``(rank, value, center, covered_points)`` so the result stays picklable
    and JSON-friendly.
    """
    records = tuple(
        (p.rank, float(p.value), tuple(float(c) for c in p.center),
         int(p.covered_points))
        for p in placements)
    meta = {"family": "topk", "k": query.k, "n": n, "placements": records}
    if placements:
        head = placements[0]
        return MaxRSResult(value=float(head.value),
                           center=tuple(float(c) for c in head.center),
                           shape=query.shape, exact=True, meta=meta)
    return MaxRSResult(value=0.0, center=None, shape=query.shape, exact=True,
                       meta=meta)


def _batched_result(query: Query, batch: Sequence[MaxRSResult],
                    n: int) -> MaxRSResult:
    """Fold a batched answer list into one :class:`MaxRSResult`.

    ``meta["batch"]`` carries one ``(value, center, exact)`` tuple per
    member length/size, in query order; the headline ``value``/``center``
    are the best member's (first index on ties).
    """
    components = tuple(
        (float(r.value),
         None if r.center is None else tuple(float(c) for c in r.center),
         bool(r.exact))
        for r in batch)
    best = max(range(len(components)), key=lambda i: components[i][0])
    meta = {"family": "batched", "n": n, "batch": components}
    return MaxRSResult(value=components[best][0], center=components[best][1],
                       shape=query.shape,
                       exact=all(component[2] for component in components),
                       meta=meta)


def _route_query(
    query: Query,
    coords: Sequence[Coords],
    weights: Optional[Sequence[float]],
    colors: Optional[Sequence[Hashable]],
) -> MaxRSResult:
    """The un-traced solver dispatch behind :func:`solve_query`."""
    if query.family == "topk":
        if query.shape == "rectangle":
            placements = top_k_maxrs_rectangle(
                coords, width=query.width, height=query.height, k=query.k,
                weights=weights, backend=query.backend)
        else:
            placements = top_k_maxrs_disk(
                coords, radius=query.radius, k=query.k, weights=weights,
                backend=query.backend)
        return _topk_result(query, placements, len(coords))
    if query.family == "batched":
        if query.shape == "interval":
            batch = batched_maxrs_1d(coords, query.lengths, weights=weights,
                                     backend=query.backend)
        else:
            batch = batched_maxrs_rectangles(coords, query.sizes,
                                             weights=weights,
                                             backend=query.backend)
        return _batched_result(query, batch, len(coords))
    if query.family == "decayed":
        return decayed_maxrs(coords, decay=query.gamma, radius=query.radius,
                             width=query.width, height=query.height,
                             length=query.length, as_of=query.as_of,
                             weights=weights, backend=query.backend)
    if query.shape == "box":
        return colored_maxrs_box3d_exact(
            coords, (query.width, query.height, query.depth), colors=colors)
    if query.colored:
        if query.shape == "disk":
            if query.exact:
                return colored_maxrs_disk_sweep(coords, radius=query.radius, colors=colors,
                                                backend=query.backend)
            return colored_maxrs_disk(coords, radius=query.radius, epsilon=query.epsilon,
                                      colors=colors, seed=query.seed, backend=query.backend)
        if query.shape == "rectangle":
            if query.exact:
                return colored_maxrs_rectangle_exact(coords, query.width, query.height,
                                                     colors=colors)
            return colored_maxrs_box(coords, query.width, query.height, query.epsilon,
                                     colors=colors, seed=query.seed)
        return colored_maxrs_interval_exact(coords, query.length, colors=colors)

    if query.shape == "disk":
        if query.exact:
            return maxrs_disk_exact(coords, radius=query.radius, weights=weights,
                                    backend=query.backend)
        return max_range_sum_ball(coords, radius=query.radius, epsilon=query.epsilon,
                                  weights=weights, seed=query.seed, backend=query.backend)
    if query.shape == "rectangle":
        return maxrs_rectangle_exact(coords, width=query.width, height=query.height,
                                     weights=weights, backend=query.backend)
    return maxrs_interval_exact(coords, length=query.length, weights=weights,
                                backend=query.backend)


def resolve_task_backend(backend: str, shard_population: int) -> str:
    """Per-shard kernel-backend choice, shared by the batch planner and the
    streaming monitors.

    ``"auto"`` resolves against the *shard's* population (not the whole
    dataset's), so fine shards run the pure-Python loops -- no NumPy per-call
    overhead -- while big shards vectorise.  Explicit backend names are
    validated (unknown names raise ``ValueError``) and returned unchanged.
    """
    return resolve_backend(backend, shard_population)


def _solve_shard_task(task: Tuple[Query, Shard]) -> MaxRSResult:
    """Executor task: solve one query on one shard (picklable payload)."""
    query, shard = task
    return solve_query(query, shard.coords, shard.weights, shard.colors)


def _solve_shard_descriptor_task(task) -> MaxRSResult:
    """Executor task for the shared-memory path: solve one query on one
    shard addressed by a :class:`repro.parallel.ShardDescriptor`.

    The descriptor resolves against the process-local attachment cache, so
    the task's pickled payload is the query plus a few segment names and an
    index range -- no point data crosses the process boundary.  Exact
    weighted queries bound for the NumPy kernels resolve as raw array
    slices (the solvers' ``prefer_arrays`` fast path skips per-point
    normalisation entirely); everything else materialises the usual
    parallel lists, bit-identically to the pickled payloads.
    """
    query, descriptor = task
    arrays = query.exact and not query.colored and query.backend == "numpy"
    coords, weights, colors = descriptor.resolve(arrays=arrays)
    return solve_query(query, coords, weights, colors)


def _solve_shard_task_traced(task):
    """Traced executor task: like :func:`_solve_shard_task`, but runs under
    a worker-side span capture and returns ``(result, records)`` so the
    parent can graft the shard's ``shard.solve`` subtree into its trace.

    The capture is unconditional -- the parent already decided to trace
    when it chose this task function, and worker processes may not share
    its environment or programmatic tracing switch.
    """
    query, shard, tags = task
    with obs.capture("shard.solve", **tags) as captured:
        result = solve_query(query, shard.coords, shard.weights, shard.colors)
    return result, captured.records


def _solve_shard_descriptor_task_traced(task):
    """Traced executor task for the shared-memory path: like
    :func:`_solve_shard_descriptor_task`, returning ``(result, records)``
    with the worker-captured ``shard.solve`` subtree (see
    :func:`_solve_shard_task_traced`)."""
    query, descriptor, tags = task
    with obs.capture("shard.solve", **tags) as captured:
        arrays = query.exact and not query.colored and query.backend == "numpy"
        coords, weights, colors = descriptor.resolve(arrays=arrays)
        result = solve_query(query, coords, weights, colors)
    return result, captured.records


# --------------------------------------------------------------------------- #
# caching
# --------------------------------------------------------------------------- #

_MISSING = object()


class LRUCache:
    """A small least-recently-used map with hit / miss counters."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        self._data: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def peek(self, key):
        """Return the cached value without touching recency or the hit/miss
        counters (used by non-mutating planning passes)."""
        value = self._data.get(key, _MISSING)
        return None if value is _MISSING else value

    def get(self, key):
        """Return the cached value (refreshing recency) or ``None``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


def dataset_fingerprint(
    coords: Sequence[Coords],
    weights: Optional[Sequence[float]] = None,
    colors: Optional[Sequence[Hashable]] = None,
) -> str:
    """Stable content hash of a dataset, used to key the result cache.

    Two engines over identical data produce identical cache keys; any change
    to a coordinate, weight or color changes the fingerprint.
    """
    digest = hashlib.blake2b(digest_size=16)
    array = np.asarray(coords, dtype=float)
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    if weights is not None:
        digest.update(b"w")
        digest.update(np.asarray(weights, dtype=float).tobytes())
    if colors is not None:
        digest.update(b"c")
        digest.update(repr(list(colors)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class BatchPlan:
    """What executing a query batch would cost, without executing it.

    Produced by :meth:`QueryEngine.batch_plan` for the serving layer
    (:mod:`repro.service`), which uses it to route micro-batches: a batch
    that is entirely cache hits can be served without touching an executor,
    and the shard-task count bounds the work a flush will enqueue.

    Attributes
    ----------
    unique:
        The distinct queries of the batch, in first-appearance order (the
        order :meth:`QueryEngine.solve_batch` would solve them in).
    duplicates:
        How many submitted queries were duplicates of an earlier one (the
        coalescing opportunity).
    cached:
        The subset of ``unique`` already present in the engine's result
        cache (served without solving).
    shard_tasks:
        Executor tasks a flush would submit: the sum of shard counts over
        the non-cached unique queries.
    cost_classes:
        ``query -> cost_class`` for the non-cached unique queries (see
        :attr:`Query.cost_class`), the routing signal for batch formation.
    direct:
        The non-cached unique queries the engine will answer *directly* (one
        full-dataset call, no shard merge) because their sharded merge
        cannot be made sound -- currently the decayed family, whose weights
        depend on global arrival order (see :attr:`Query.shard_mode`).  The
        plan says so explicitly so the serving layer can see the routing
        decision.
    """

    unique: Tuple[Query, ...]
    duplicates: int
    cached: Tuple[Query, ...]
    shard_tasks: int
    cost_classes: Dict[Query, str]
    direct: Tuple[Query, ...] = ()


# --------------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------------- #

class QueryEngine:
    """Serve heterogeneous MaxRS query batches over one dataset.

    Parameters
    ----------
    points, weights, colors:
        The dataset, in any form the library's solvers accept.  Colors are
        kept only when supplied explicitly or carried by ``ColoredPoint``
        inputs; colored queries require them.
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, ``"shared-process"``, or
        an :class:`~repro.engine.executors.Executor` instance.  ``None``
        (the default) honours the ``REPRO_EXECUTOR`` environment variable
        and otherwise stays serial.  ``"shared-process"`` publishes the
        dataset once to a :class:`repro.parallel.SharedDatasetStore` the
        engine owns (released on :meth:`close`) and submits shard
        *descriptors* -- index ranges into the store -- instead of pickled
        point payloads.
    workers:
        Worker count for the pooled executors; defaults to the CPU count.
    target_shards:
        Optional override for the number of spatial shards per query.  By
        default the planner picks the granularity from the query's
        :attr:`Query.cost_class` (see :meth:`shard_plan`).
    cache_size:
        Capacity of the LRU result cache (``0`` disables caching).

    Examples
    --------
    >>> from repro.engine import Query, QueryEngine
    >>> engine = QueryEngine([(0.0, 0.0), (0.5, 0.5), (5.0, 5.0)])
    >>> engine.solve(Query.disk(1.0)).value
    2.0
    """

    def __init__(
        self,
        points: Sequence,
        *,
        weights: Optional[Sequence[float]] = None,
        colors: Optional[Sequence[Hashable]] = None,
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
        target_shards: Optional[int] = None,
        cache_size: int = 128,
    ):
        points = list(points)
        coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
        if any(w < 0 for w in weight_list):
            # Max-merging shard results is only sound when adding points can
            # never lower a placement's value; a shard blind to a nearby
            # negative-weight point would overestimate and win the merge.
            raise ValueError(
                "QueryEngine requires non-negative weights: the sharded max-merge "
                "is unsound otherwise (use the solvers directly for guard points)"
            )
        self._coords: List[Coords] = coords
        self._weights: List[float] = weight_list
        self.dim = dim
        if colors is not None or any(isinstance(p, ColoredPoint) for p in points):
            _, color_list, _ = normalize_colored(points, colors)
            self._colors: Optional[List[Hashable]] = color_list
        else:
            self._colors = None

        self._executor = get_executor(executor, workers)
        self.target_shards = target_shards
        self.fingerprint = dataset_fingerprint(coords, self._weights, self._colors)
        self._cache = LRUCache(cache_size)
        self._plans: Dict[Tuple, ShardPlan] = {}  # (halo..., target_shards) -> plan
        self._index_blocks: Dict[Tuple, "IndexBlockHandle"] = {}  # same keys
        self._shards_solved = 0
        self._queries_served = 0

        # The shared-memory path: publish the dataset once so worker
        # processes resolve shard index ranges against it instead of
        # receiving pickled point payloads.  The engine owns this store and
        # releases it on close(); empty datasets stay store-less (there is
        # nothing to publish and no shard tasks to run).
        self._store = None
        if self._executor.kind == "shared-process" and self._coords:
            from ..parallel import SharedDatasetStore

            self._store = SharedDatasetStore(
                self._coords, weights=self._weights, colors=self._colors)
            bind = getattr(self._executor, "bind_store", None)
            if bind is not None and getattr(self._executor, "store", None) is None:
                bind(self._store)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._coords)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the executor's worker pool (if any) and release the
        shared-memory dataset store the engine owns (if any); idempotent."""
        self._executor.close()
        if self._store is not None:
            self._store.release()
            self._store = None
            self._index_blocks.clear()

    @property
    def store(self):
        """The engine-owned :class:`repro.parallel.SharedDatasetStore`
        backing the ``"shared-process"`` executor (``None`` otherwise) --
        exposed for the lifecycle/leak regression tests."""
        return self._store

    def clear_cache(self) -> None:
        """Drop all cached results (keeps the memoised shardings)."""
        self._cache.clear()

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: queries served, cache hits / misses, shard tasks run."""
        return {
            "queries": self._queries_served,
            "cache_hits": self._cache.hits,
            "cache_misses": self._cache.misses,
            "shards_solved": self._shards_solved,
            "cached_results": len(self._cache),
        }

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def _validate(self, query: Query) -> None:
        if query.colored and self._colors is None:
            raise ValueError(
                "colored query %s on a dataset without colors" % query.describe()
            )
        if not self._coords:
            return
        if query.shape == "interval":
            if self.dim != 1:
                raise ValueError("interval queries need 1-d data, got dim=%d" % self.dim)
        elif query.shape == "box":
            if self.dim != 3:
                raise ValueError("box queries need 3-d data, got dim=%d" % self.dim)
        elif query.shape == "rectangle" or query.exact or query.colored:
            # Only the approximate weighted d-ball solver handles dim != 2.
            if self.dim != 2:
                raise ValueError(
                    "query %s needs planar data, got dim=%d" % (query.describe(), self.dim)
                )

    def shard_plan(self, query: Query) -> ShardPlan:
        """The (memoised) sharding this query's extent induces.

        Unless ``target_shards`` overrides it, granularity follows the
        query's :attr:`Query.cost_class`: quadratic solvers get shards that
        scale with the dataset (~200 points each) because shrinking the
        quadratic per-shard population shrinks *total* work, not just
        wall-clock -- though not all the way down to the ``2 x halo`` tile
        floor, since a dense cluster smaller than a tile is replicated into
        every overlapping shard and re-paid quadratically.  Linearithmic
        solvers get a handful of coarse shards per worker (sharding only
        buys them parallelism, so halo replication is the enemy), and the
        sampled approximate solvers get one shard per worker (their
        per-call fixed costs dwarf their dependence on shard size).
        """
        key = self._plan_key(query)
        plan = self._plans.get(key)
        if plan is None:
            plan = plan_shards(
                self._coords,
                key[:-1],
                weights=self._weights,
                colors=self._colors,
                target_shards=key[-1],
            )
            self._plans[key] = plan
        return plan

    def _plan_key(self, query: Query) -> Tuple:
        """The memoisation key of a query's sharding: its halo plus the
        target granularity its cost class (or ``target_shards``) picks."""
        halo = query.halo(self.dim)
        if self.target_shards is not None:
            target = self.target_shards
        else:
            cost = query.cost_class
            if cost == "quadratic":
                if query.backend == "numpy":
                    # The vectorised sweeps amortise their per-call setup over
                    # the shard, so larger shards (~2k points) cut the halo
                    # replication without starving the kernels.
                    target = max(4, self._executor.workers,
                                 len(self._coords) // 2048)
                else:
                    target = max(16, 4 * self._executor.workers, len(self._coords) // 192)
            elif cost == "linearithmic":
                target = max(16, 4 * self._executor.workers)
            else:
                target = max(1, self._executor.workers)
        return halo + (target,)

    def _shard_index_block(self, query: Query, plan: ShardPlan):
        """The (memoised) shared-memory index block of one sharding plan:
        every shard's point indices concatenated into one segment, published
        once per plan so repeat queries re-send nothing."""
        key = self._plan_key(query)
        block = self._index_blocks.get(key)
        if block is None:
            block = self._store.publish_index_block(
                [shard.indices for shard in plan.shards])
            self._index_blocks[key] = block
        return block

    def _empty_result(self, query: Query) -> MaxRSResult:
        return solve_query(query, [], [], [] if self._colors is not None else None)

    def batch_plan(self, queries: Sequence[Query]) -> BatchPlan:
        """Plan a batch without executing it (the serving layer's routing hook).

        Deduplicates the batch, peeks at the result cache (without touching
        recency or the hit/miss counters) and sums the shard tasks a
        :meth:`solve_batch` flush would submit for the remaining queries.
        Validates every query, so a planned batch cannot fail routing at
        flush time.
        """
        unique: List[Query] = []
        seen = set()
        for query in queries:
            if query not in seen:
                seen.add(query)
                unique.append(query)
        cached: List[Query] = []
        direct: List[Query] = []
        shard_tasks = 0
        cost_classes: Dict[Query, str] = {}
        for query in unique:
            self._validate(query)
            if self._cache.peek((self.fingerprint, query)) is not None:
                cached.append(query)
                continue
            cost_classes[query] = query.cost_class
            if not self._coords:
                continue
            mode = query.shard_mode
            if mode == "direct":
                # Sharded merge is unsound for this family (decayed weights
                # depend on global arrival order); the flush will make one
                # full-dataset call, and the plan says so.
                direct.append(query)
                shard_tasks += 1
            elif mode == "peel":
                # Upper bound: one sharded rank-1 solve per greedy round.
                shard_tasks += len(self.shard_plan(query).shards) * query.k
            else:
                shard_tasks += len(self.shard_plan(query).shards)
        return BatchPlan(
            unique=tuple(unique),
            duplicates=len(queries) - len(unique),
            cached=tuple(cached),
            shard_tasks=shard_tasks,
            cost_classes=cost_classes,
            direct=tuple(direct),
        )

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #

    def solve(self, query: Query) -> MaxRSResult:
        """Solve one query (cached, sharded, executor-backed)."""
        return self.solve_batch([query])[0]

    def solve_direct(self, query: Query) -> MaxRSResult:
        """Bypass sharding and caching: run the underlying solver once on the
        whole dataset.  The reference path the engine is validated against."""
        with obs.trace("engine.solve_direct", query=query.describe(),
                       n=len(self._coords)):
            self._validate(query)
            return solve_query(query, self._coords, self._weights, self._colors)

    def solve_batch(self, queries: Sequence[Query]) -> List[MaxRSResult]:
        """Solve a heterogeneous batch.

        Identical queries are deduplicated, cached answers are served
        without solving, and the shard tasks of all remaining queries are
        flattened into a single executor submission (parallel across queries
        and shards at once).  Results come back in input order.

        Under tracing (``REPRO_TRACE=1``, :func:`repro.obs.set_enabled`, or
        an enclosing trace) the flush emits an ``engine.solve_batch`` span
        tree: per-query ``engine.plan`` / ``engine.merge`` spans, one
        ``engine.execute`` span around the executor submission with a
        ``shard.solve`` child per task (captured inside the worker, grafted
        back here), and a derived ``engine.queue`` span attributing the
        dispatch wall time the shard solves themselves do not account for.
        """
        with obs.trace("engine.solve_batch", queries=len(queries),
                       executor=self._executor.kind) as batch_span:
            return self._solve_batch_spanned(queries, batch_span)

    def _solve_batch_spanned(self, queries: Sequence[Query],
                             batch_span) -> List[MaxRSResult]:
        """The body of :meth:`solve_batch`, run inside its root span."""
        unique: List[Query] = []
        seen = set()
        for query in queries:
            if query not in seen:
                seen.add(query)
                unique.append(query)

        resolved: Dict[Query, MaxRSResult] = {}
        misses: List[Query] = []
        for query in unique:
            cached = self._cache.get((self.fingerprint, query))
            if cached is not None:
                resolved[query] = cached
            else:
                misses.append(query)
        batch_span.tag(unique=len(unique), misses=len(misses))

        # Route each miss by its shard mode: the standard halo plan, the
        # top-k per-round re-peel, or a direct full-dataset call (families
        # whose sharded merge cannot be made sound; see Query.shard_mode).
        halo_misses = [query for query in misses if query.shard_mode == "halo"]
        peel_misses = [query for query in misses if query.shard_mode == "peel"]
        direct_misses = [query for query in misses if query.shard_mode == "direct"]

        if halo_misses:
            traced = obs.tracing_active()
            tasks: List[Tuple] = []
            groups: List[Tuple[Query, int]] = []
            for query in halo_misses:
                with obs.span("engine.plan",
                              query=query.describe()) as plan_span:
                    self._validate(query)
                    plan = self.shard_plan(query)
                    plan_span.tag(shards=len(plan.shards))
                groups.append((query, len(plan.shards)))
                # The shared-memory path replaces each shard's point payload
                # with a descriptor (segment names + index range) resolved
                # inside the worker against the published dataset store.
                block = (self._shard_index_block(query, plan)
                         if self._store is not None else None)
                dataset = self._store.handle() if self._store is not None else None
                # Per-shard backend selection: "auto" is resolved against each
                # shard's population, so fine shards run the pure-Python loops
                # (no NumPy per-call overhead) while big shards vectorise.
                # Explicit backends pass through untouched; the cache keeps
                # keying on the original query.
                for ordinal, shard in enumerate(plan.shards):
                    task_query = query
                    if query.backend == "auto":
                        task_query = replace(query, backend=resolve_task_backend("auto", len(shard)))
                    payload = (block.descriptor(dataset, ordinal)
                               if block is not None else shard)
                    if traced:
                        # Traced tasks carry their span tags and return the
                        # worker-captured records alongside the result.
                        tasks.append((task_query, payload, {
                            "query": query.describe(), "shard": ordinal,
                            "backend": task_query.backend,
                            "points": len(shard)}))
                    else:
                        tasks.append((task_query, payload))

            if self._store is not None:
                task_fn = (_solve_shard_descriptor_task_traced if traced
                           else _solve_shard_descriptor_task)
            else:
                task_fn = (_solve_shard_task_traced if traced
                           else _solve_shard_task)
            with obs.span("engine.execute", tasks=len(tasks),
                          executor=self._executor.kind,
                          workers=self._executor.workers) as exec_span:
                shard_results = self._executor.map(task_fn, tasks)
            self._shards_solved += len(tasks)

            if traced:
                # Graft every worker-captured shard subtree under the
                # execute span, then attribute the dispatch wall time the
                # shard solves do not cover as a derived engine.queue span
                # (busy time is divided by the effective parallelism, so
                # with one worker queue + shard time = execute wall time).
                busy = 0.0
                plain: List[MaxRSResult] = []
                for result, records in shard_results:
                    exec_span.graft(records)
                    busy += sum(record.duration for record in records
                                if record.parent_id is None)
                    plain.append(result)
                shard_results = plain
                parallelism = max(1, min(self._executor.workers, len(tasks)))
                exec_span.child(
                    "engine.queue",
                    max(0.0, exec_span.duration - busy / parallelism),
                    tasks=len(tasks), parallelism=parallelism)

            cursor = 0
            for query, count in groups:
                group = shard_results[cursor:cursor + count]
                cursor += count
                with obs.span("engine.merge", query=query.describe(),
                              shards=count):
                    merge = (merge_batched_results if query.family == "batched"
                             else merge_shard_results)
                    merged = merge(group, empty=self._empty_result(query))
                    meta = dict(merged.meta)
                    if "n" in meta:
                        meta["n"] = len(self._coords)  # not the winning shard's population
                    meta["executor"] = self._executor.kind
                    merged = MaxRSResult(value=merged.value, center=merged.center,
                                         shape=merged.shape, exact=merged.exact, meta=meta)
                self._cache.put((self.fingerprint, query), merged)
                resolved[query] = merged

        for query in peel_misses:
            self._validate(query)
            with obs.span("engine.peel", query=query.describe()) as peel_span:
                merged = self._solve_topk_peel(query)
                peel_span.tag(
                    placements=len(merged.meta.get("placements", ())),
                    rounds=merged.meta.get("rounds", 0))
            self._cache.put((self.fingerprint, query), merged)
            resolved[query] = merged

        for query in direct_misses:
            self._validate(query)
            with obs.span("engine.direct", query=query.describe(),
                          n=len(self._coords)):
                result = solve_query(query, self._coords, self._weights,
                                     self._colors)
            meta = dict(result.meta)
            meta.update({"routed": "direct", "executor": self._executor.kind})
            result = MaxRSResult(value=result.value, center=result.center,
                                 shape=result.shape, exact=result.exact,
                                 meta=meta)
            self._cache.put((self.fingerprint, query), result)
            resolved[query] = result

        self._queries_served += len(queries)
        return [resolved[query] for query in queries]

    def _solve_topk_peel(self, query: Query) -> MaxRSResult:
        """Sharded greedy top-k: a per-round sharded re-peel.

        A k-way merge of per-shard *candidate lists* is unsound beyond
        rank 1: each shard's local rank-2 candidate was peeled against the
        shard's own rank-1 pick, which need not match the global one, so the
        local lists diverge from the global greedy trajectory after the
        first claim.  Instead, every greedy round runs a full sharded rank-1
        solve restricted to the still-unclaimed points -- the same halo
        max-merge guarantee as any single query -- then claims the winner's
        points globally and repeats.  Each round is therefore exactly the
        greedy step, so the peeling guarantee of
        :func:`repro.regions.topk.top_k_maxrs_rectangle` is preserved
        (per-round optimum values match the direct peel bit-for-bit; as
        everywhere in the sharded engine, a round may report a different
        equally-optimal placement).

        Rounds always ship pickled sub-shard payloads, never shared-memory
        descriptors: the unclaimed subset changes every round, so there is
        no stable index block to publish.
        """
        plan = self.shard_plan(query)
        base = replace(query, family="single", k=None)
        alive = [True] * len(self._coords)
        placements: List[PlacementScore] = []
        rounds = 0
        for rank in range(1, query.k + 1):
            tasks: List[Tuple[Query, Shard]] = []
            for shard in plan.shards:
                live = [j for j, index in enumerate(shard.indices) if alive[index]]
                if not live:
                    continue
                sub = Shard(
                    key=shard.key,
                    coords=[shard.coords[j] for j in live],
                    weights=(None if shard.weights is None
                             else [shard.weights[j] for j in live]),
                    colors=None,
                    indices=[shard.indices[j] for j in live],
                )
                task_query = base
                if base.backend == "auto":
                    task_query = replace(
                        base, backend=resolve_task_backend("auto", len(sub)))
                tasks.append((task_query, sub))
            if not tasks:
                break
            with obs.span("engine.execute", tasks=len(tasks),
                          executor=self._executor.kind,
                          workers=self._executor.workers):
                results = self._executor.map(_solve_shard_task, tasks)
            self._shards_solved += len(tasks)
            rounds += 1
            best = merge_shard_results(results, empty=self._empty_result(base))
            if best.center is None or best.value <= 0:
                break
            if query.shape == "rectangle":
                lower = best.center
                upper = (lower[0] + query.width, lower[1] + query.height)
                claimed = [i for i, live_flag in enumerate(alive)
                           if live_flag and point_in_box(self._coords[i], lower, upper)]
            else:
                claimed = [i for i, live_flag in enumerate(alive)
                           if live_flag and point_in_ball(self._coords[i],
                                                          best.center, query.radius)]
            if not claimed:
                break
            placements.append(PlacementScore(
                rank=rank, value=best.value,
                center=tuple(float(c) for c in best.center),
                covered_points=len(claimed)))
            for index in claimed:
                alive[index] = False
        merged = _topk_result(query, placements, len(self._coords))
        meta = dict(merged.meta)
        meta.update({"sharded": True, "shards": len(plan.shards),
                     "rounds": rounds, "merge": "per-round sharded re-peel",
                     "executor": self._executor.kind})
        return MaxRSResult(value=merged.value, center=merged.center,
                           shape=merged.shape, exact=merged.exact, meta=meta)
