"""Sharded exact hotspot monitoring: recompute only dirty shards on updates.

:class:`ShardedMaxRSMonitor` keeps the live point set partitioned into the
engine's halo-expanded spatial tiles (via
:class:`repro.streaming._shards.LiveShardStore`) and caches one exact
per-shard disk optimum per tile.  An insert or delete only marks the handful
of tiles whose halo region contains the point as *dirty*; a query re-runs
the ``O(m^2 log m)`` exact sweep on those tiles alone and takes the max over
all cached shard results (:func:`repro.engine.merge.merge_shard_results`).

Compared with :class:`repro.streaming.monitor.ExactRecomputeMonitor` -- which
re-solves the whole live set from scratch -- answers are identical (the halo
argument makes the shard maximum exact) while the per-query work after a
localized update drops from ``O(n^2)`` to ``O(m^2)`` for the ``O(1)`` touched
tiles of size ``m``.

Beyond the original event-at-a-time interface the monitor is a full
:class:`~repro.streaming.base.StreamMonitor`:

* **batched ingestion** -- :meth:`observe_batch` / :meth:`apply_batch` file
  insert runs through the store's vectorised tile-key pass and defer window
  eviction to run boundaries, with final state provably identical to
  event-at-a-time application;
* **kernel-registry backends** -- ``backend="auto" | "python" | "numpy"``
  selects the per-shard sweep implementation, with ``"auto"`` resolved
  *per shard* against the shard's population via the engine planner
  (:func:`repro.engine.planner.resolve_task_backend`), exactly like the batch
  engine's shard tasks;
* **pluggable executors** -- ``executor="thread" | "process" | ...`` fans the
  dirty-shard re-solves of one query out over an engine executor;
* **sliding windows** -- ``window=N`` keeps only the most recent ``N``
  observations alive (count-based), ``time_window=T`` keeps only
  observations with ``timestamp > now - T`` where ``now`` is the largest
  timestamp seen so far (time-based; timestamps must be non-decreasing).
  Both may be combined; an eviction behaves exactly like a deletion of the
  evicted handle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..core.result import MaxRSResult
from ..datasets.streams import UpdateEvent
from ..engine.executors import Executor, get_executor
from ..engine.merge import merge_shard_results
from ..engine.planner import resolve_task_backend
from ..exact.disk2d import maxrs_disk_exact
from ..obs import tracing as obs
from ._shards import LiveShardStore
from .base import StreamMonitor

__all__ = ["ShardedMaxRSMonitor"]

Coords = Tuple[float, ...]
Key = Tuple[int, ...]


def _solve_disk_shard(task):
    """Executor task: exact disk sweep on one shard (picklable payload)."""
    key, coords, weights, radius, backend = task
    return key, maxrs_disk_exact(coords, radius=radius, weights=weights, backend=backend)


def _solve_disk_shard_traced(task):
    """Traced executor task: like :func:`_solve_disk_shard` but run under a
    worker-side span capture, returning ``(key, result, records)`` so the
    monitor can graft the shard's ``shard.solve`` span into its trace."""
    key, coords, weights, radius, backend = task
    with obs.capture("shard.solve", shard=str(key), backend=backend,
                     points=len(coords)) as captured:
        result = maxrs_disk_exact(coords, radius=radius, weights=weights,
                                  backend=backend)
    return key, result, captured.records


class ShardedMaxRSMonitor(StreamMonitor):
    """Continuous *exact* hotspot monitoring with dirty-shard recomputation.

    Parameters
    ----------
    radius:
        Query disk radius (planar points only).
    tile_side:
        Side of the square spatial tiles; defaults to ``4 * radius`` and is
        clamped to at least ``2 * radius`` so each point lands in at most
        four tiles.
    backend:
        Kernel backend for the per-shard sweeps (:mod:`repro.kernels`);
        ``"auto"`` resolves per shard against the shard population, like the
        batch engine.
    executor, workers:
        Optional engine executor (``"serial"`` / ``"thread"`` / ``"process"``
        or an :class:`~repro.engine.executors.Executor`) for solving the
        dirty shards of one query in parallel.  ``None`` (default) solves
        inline with zero dispatch overhead.
    window:
        Count-based sliding window: only the most recent ``window``
        observations stay alive.
    time_window:
        Time-based sliding window: only observations with
        ``timestamp > now - time_window`` stay alive, where ``now`` is the
        largest timestamp ingested so far (see :meth:`advance_to`).
        Observations must carry non-decreasing timestamps.

    The interface mirrors the other monitors: :meth:`observe` /
    :meth:`expire` for direct use, :meth:`apply` / :meth:`apply_batch` /
    :meth:`apply_stream` for :class:`~repro.datasets.streams.UpdateEvent`
    streams, and :meth:`current` for the hotspot, whose ``meta`` reports how
    many shards the query actually had to re-solve.  When a window is
    configured, delete events whose target was already evicted are ignored
    (the window got there first); without windows they raise ``KeyError``.
    """

    def __init__(
        self,
        radius: float = 1.0,
        *,
        tile_side: Optional[float] = None,
        backend: str = "auto",
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
        window: Optional[int] = None,
        time_window: Optional[float] = None,
    ):
        if radius <= 0:
            raise ValueError("radius must be positive")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        if time_window is not None and time_window <= 0:
            raise ValueError("time_window must be positive")
        self.radius = float(radius)
        side = 4.0 * self.radius if tile_side is None else float(tile_side)
        self.tile_side = max(side, 2.0 * self.radius)
        if backend != "auto":
            resolve_task_backend(backend, 0)  # surface typos at construction
        self.backend = backend
        self.window = int(window) if window is not None else None
        self.time_window = float(time_window) if time_window is not None else None
        self._executor = None if executor is None else get_executor(executor, workers)
        self._store = LiveShardStore((self.radius, self.radius),
                                     (self.tile_side, self.tile_side))
        self._results: Dict[Key, MaxRSResult] = {}
        # insertion order (lazy: evicted/deleted handles are skipped on pop)
        self._order: Deque[int] = deque()
        self._timestamps: Dict[int, float] = {}
        self._clock = -float("inf")
        self._steps = 0
        self._next_handle = 0
        self.total_recomputes = 0

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._store)

    @property
    def steps(self) -> int:
        """Number of updates processed so far (window evictions excluded)."""
        return self._steps

    @property
    def shard_count(self) -> int:
        """Number of occupied spatial tiles."""
        return self._store.shard_count

    @property
    def dirty_shard_count(self) -> int:
        """Number of tiles whose cached result is stale (re-solved on the
        next :meth:`current` call; ``0`` immediately after a query)."""
        return len(self._store.dirty)

    @property
    def windowed(self) -> bool:
        """Whether any sliding window (count or time) is active."""
        return self.window is not None or self.time_window is not None

    @property
    def generation(self):
        """Cache-invalidation token (see :attr:`StreamMonitor.generation`).

        Extends the base token with the time-window clock so that
        :meth:`advance_to` -- which can evict observations without processing
        an update event -- also invalidates externally cached answers.
        """
        return (self._steps, len(self._store), self._clock)

    def close(self) -> None:
        """Shut down the executor's worker pool (if any); idempotent."""
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "ShardedMaxRSMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _remove(self, handle: int) -> None:
        self._timestamps.pop(handle, None)
        for key in self._store.remove(handle):
            self._results.pop(key, None)

    def _record_timestamp(self, handle: int, timestamp: Optional[float]) -> None:
        if timestamp is None:
            if self.time_window is not None:
                raise ValueError(
                    "a time_window monitor needs a timestamp on every observation"
                )
            return
        timestamp = float(timestamp)
        self._timestamps[handle] = timestamp
        if timestamp > self._clock:
            self._clock = timestamp

    def _enforce_windows(self) -> None:
        """Evict observations the sliding windows no longer cover.

        Called at insert-run boundaries; because evictions always take the
        *oldest* live observations, end-of-run eviction leaves the same live
        set as evicting after every single insert would.
        """
        if not self.windowed:
            return
        if len(self._order) > 2 * len(self._store) + 64:
            # Explicit deletes leave their handles in the deque (removal from
            # the middle would be O(n) per event); compact once the dead
            # entries dominate, keeping the deque linear in the live set.
            self._order = deque(h for h in self._order if h in self._store.live)
        if self.time_window is not None:
            cutoff = self._clock - self.time_window
            while self._order:
                handle = self._order[0]
                if handle not in self._store.live:
                    self._order.popleft()
                elif self._timestamps.get(handle, cutoff) <= cutoff:
                    self._order.popleft()
                    self._remove(handle)
                else:
                    break
        if self.window is not None:
            while len(self._store) > self.window:
                handle = self._order.popleft()
                if handle in self._store.live:
                    self._remove(handle)

    # ------------------------------------------------------------------ #
    # direct interface
    # ------------------------------------------------------------------ #

    def observe(self, point: Sequence[float], weight: float = 1.0, *,
                timestamp: Optional[float] = None) -> int:
        """Insert an observation; returns a handle usable with :meth:`expire`."""
        if self.time_window is not None and timestamp is None:
            raise ValueError(
                "a time_window monitor needs a timestamp on every observation"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._store.insert(handle, point, float(weight))
        self._record_timestamp(handle, timestamp)
        if self.windowed:
            self._order.append(handle)
        self._enforce_windows()
        self._steps += 1
        return handle

    def observe_batch(
        self,
        points: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
        *,
        timestamps: Optional[Sequence[float]] = None,
    ) -> List[int]:
        """Insert a batch of observations in one pass; returns their handles.

        The tile keys of the whole batch are computed in a single vectorised
        pass and window eviction runs once at the end -- the resulting state
        is identical to calling :meth:`observe` once per point.
        """
        if timestamps is not None and len(timestamps) != len(points):
            raise ValueError("got %d timestamps for %d points"
                             % (len(timestamps), len(points)))
        self._require_timestamps(timestamps, len(points))
        handles = list(range(self._next_handle, self._next_handle + len(points)))
        self._next_handle += len(points)
        self._store.insert_batch(handles, points, weights)
        for index, handle in enumerate(handles):
            self._record_timestamp(
                handle, timestamps[index] if timestamps is not None else None)
            if self.windowed:
                self._order.append(handle)
        self._enforce_windows()
        self._steps += len(points)
        return handles

    def _require_timestamps(self, timestamps, count: int) -> None:
        """Reject a timestamp-less batch *before* any store mutation, so a
        usage error cannot leave half-applied state behind."""
        if self.time_window is None or count == 0:
            return
        if timestamps is None or any(t is None for t in timestamps):
            raise ValueError(
                "a time_window monitor needs a timestamp on every observation"
            )

    def expire(self, handle: int) -> None:
        """Delete a previously observed point by its handle."""
        self._remove(handle)
        self._steps += 1

    def advance_to(self, now: float) -> None:
        """Advance the time-window clock to ``now`` (monotone) and evict
        observations that fell out of the window, without inserting."""
        if float(now) > self._clock:
            self._clock = float(now)
        self._enforce_windows()

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #

    def apply(self, event: UpdateEvent, event_index: int) -> None:
        """Apply one stream event; ``event_index`` is its position in the stream."""
        self.apply_batch([event], event_index)

    def apply_batch(self, events: Sequence[UpdateEvent], start_index: int = 0) -> None:
        """Apply a chunk of events in one pass.

        Consecutive insertions are filed through the store's vectorised run
        path; window evictions fire at run boundaries (equivalent, by the
        oldest-first eviction argument, to evicting after every event).
        Delete events are strict -- unknown targets raise ``KeyError`` --
        unless a sliding window is active, in which case a missing target
        means the window already evicted it and the event is a no-op.
        """

        def insert_run(run, first_index):
            handles = list(range(first_index, first_index + len(run)))
            self._require_timestamps([e.timestamp for e in run], len(run))
            self._store.insert_batch(handles, [e.point for e in run],
                                     [e.weight for e in run])
            for handle, inserted in zip(handles, run):
                self._record_timestamp(handle, inserted.timestamp)
                if self.windowed:
                    self._order.append(handle)
            self._enforce_windows()
            self._steps += len(run)

        def delete_one(event):
            self._enforce_windows()
            if event.target in self._store.live:
                self._remove(event.target)
            elif not self.windowed:
                raise KeyError(
                    "delete event targets stream index %r which is not alive"
                    % event.target
                )
            if event.timestamp is not None and float(event.timestamp) > self._clock:
                self._clock = float(event.timestamp)
            self._steps += 1

        with obs.span("monitor.apply_batch", events=len(events)):
            self._apply_events_batched(events, start_index, insert_run, delete_one)
            self._enforce_windows()

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #

    def current(self) -> MaxRSResult:
        """The current exact hotspot, re-solving only dirty shards.

        Under tracing each read emits a ``monitor.query`` span with one
        worker-captured ``shard.solve`` child per dirty shard and a
        ``monitor.merge`` span over the cached-result fold.
        """
        dirty = self._store.clean()
        recomputed = len(dirty)
        with obs.trace("monitor.query", dirty=recomputed,
                       live=len(self._store)) as query_span:
            if recomputed:
                traced = obs.tracing_active()
                tasks = []
                for key in dirty:
                    coords, weights, _ = self._store.entries(key)
                    backend = resolve_task_backend(self.backend, len(coords))
                    tasks.append((key, coords, weights, self.radius, backend))
                task_fn = _solve_disk_shard_traced if traced else _solve_disk_shard
                if self._executor is not None and len(tasks) > 1:
                    solved = self._executor.map(task_fn, tasks)
                else:
                    solved = [task_fn(task) for task in tasks]
                if traced:
                    for key, result, records in solved:
                        query_span.graft(records)
                        self._results[key] = result
                else:
                    for key, result in solved:
                        self._results[key] = result
                self.total_recomputes += recomputed

            empty = MaxRSResult(value=0.0, center=None, shape="ball", exact=True,
                                meta={"radius": self.radius, "n": 0})
            ordered = [self._results[key] for key in sorted(self._results)]
            with obs.span("monitor.merge", shards=len(ordered)):
                merged = merge_shard_results(ordered, empty=empty)
        meta = dict(merged.meta)
        meta.update({"n": len(self._store), "live": len(self._store),
                     "recomputed": recomputed, "backend": self.backend})
        if self._executor is not None:
            meta["executor"] = self._executor.kind
        if self.window is not None:
            meta["window"] = self.window
        if self.time_window is not None:
            meta["time_window"] = self.time_window
        return MaxRSResult(value=merged.value, center=merged.center, shape=merged.shape,
                           exact=merged.exact, meta=meta)
