"""Sharded exact hotspot monitoring: recompute only dirty shards on updates.

:class:`ShardedMaxRSMonitor` keeps the live point set partitioned into the
engine's halo-expanded spatial tiles (:mod:`repro.engine.sharding`) and
caches one exact per-shard disk optimum per tile.  An insert or delete only
marks the handful of tiles whose halo region contains the point as *dirty*;
a query re-runs the ``O(m^2 log m)`` exact sweep on those tiles alone and
takes the max over all cached shard results
(:func:`repro.engine.merge.merge_shard_results`).

Compared with :class:`repro.streaming.monitor.ExactRecomputeMonitor` -- which
re-solves the whole live set from scratch -- answers are identical (the halo
argument makes the shard maximum exact) while the per-query work after a
localized update drops from ``O(n^2)`` to ``O(m^2)`` for the ``O(1)`` touched
tiles of size ``m``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.result import MaxRSResult
from ..datasets.streams import UpdateEvent
from ..engine.merge import merge_shard_results
from ..engine.sharding import tile_keys_for_point
from ..exact.disk2d import maxrs_disk_exact
from .monitor import HotspotSnapshot

__all__ = ["ShardedMaxRSMonitor"]

Coords = Tuple[float, ...]
Key = Tuple[int, ...]


class ShardedMaxRSMonitor:
    """Continuous *exact* hotspot monitoring with dirty-shard recomputation.

    Parameters
    ----------
    radius:
        Query disk radius (planar points only).
    tile_side:
        Side of the square spatial tiles; defaults to ``4 * radius`` and is
        clamped to at least ``2 * radius`` so each point lands in at most
        four tiles.

    The interface mirrors the other monitors: :meth:`observe` /
    :meth:`expire` for direct use, :meth:`apply` / :meth:`replay` for
    :class:`~repro.datasets.streams.UpdateEvent` streams, and
    :meth:`current` for the hotspot, whose ``meta`` reports how many shards
    the query actually had to re-solve.
    """

    def __init__(self, radius: float = 1.0, *, tile_side: Optional[float] = None):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = float(radius)
        side = 4.0 * self.radius if tile_side is None else float(tile_side)
        self.tile_side = max(side, 2.0 * self.radius)
        self._halo = (self.radius, self.radius)
        self._sides = (self.tile_side, self.tile_side)
        # live handle -> (point, weight); handle -> tile keys it was filed under
        self._live: Dict[int, Tuple[Coords, float]] = {}
        self._membership: Dict[int, List[Key]] = {}
        # tile key -> {handle: (point, weight)}
        self._shards: Dict[Key, Dict[int, Tuple[Coords, float]]] = {}
        self._results: Dict[Key, MaxRSResult] = {}
        self._dirty: Set[Key] = set()
        self._steps = 0
        self._next_handle = 0
        self.total_recomputes = 0

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._live)

    @property
    def steps(self) -> int:
        """Number of updates processed so far."""
        return self._steps

    @property
    def shard_count(self) -> int:
        """Number of occupied spatial tiles."""
        return len(self._shards)

    def _insert(self, handle: int, point: Coords, weight: float) -> None:
        point = tuple(float(c) for c in point)
        if len(point) != 2:
            raise ValueError("ShardedMaxRSMonitor expects planar points")
        if handle in self._live:
            raise KeyError("observation handle %r is already alive" % handle)
        keys = tile_keys_for_point(point, self._halo, self._sides)
        self._live[handle] = (point, weight)
        self._membership[handle] = keys
        for key in keys:
            self._shards.setdefault(key, {})[handle] = (point, weight)
            self._dirty.add(key)
        self._steps += 1

    def _remove(self, handle: int) -> None:
        if handle not in self._live:
            raise KeyError("unknown observation handle %r" % handle)
        del self._live[handle]
        for key in self._membership.pop(handle):
            shard = self._shards[key]
            del shard[handle]
            if shard:
                self._dirty.add(key)
            else:
                del self._shards[key]
                self._results.pop(key, None)
                self._dirty.discard(key)
        self._steps += 1

    # ------------------------------------------------------------------ #
    # direct interface
    # ------------------------------------------------------------------ #

    def observe(self, point: Sequence[float], weight: float = 1.0) -> int:
        """Insert an observation; returns a handle usable with :meth:`expire`."""
        handle = self._next_handle
        self._next_handle += 1
        self._insert(handle, tuple(point), float(weight))
        return handle

    def expire(self, handle: int) -> None:
        """Delete a previously observed point by its handle."""
        self._remove(handle)

    def current(self) -> MaxRSResult:
        """The current exact hotspot, re-solving only dirty shards."""
        recomputed = len(self._dirty)
        for key in sorted(self._dirty):
            entries = self._shards[key]
            coords = [point for point, _ in entries.values()]
            weights = [weight for _, weight in entries.values()]
            self._results[key] = maxrs_disk_exact(coords, radius=self.radius,
                                                  weights=weights)
        self._dirty.clear()
        self.total_recomputes += recomputed

        empty = MaxRSResult(value=0.0, center=None, shape="ball", exact=True,
                            meta={"radius": self.radius, "n": 0})
        ordered = [self._results[key] for key in sorted(self._results)]
        merged = merge_shard_results(ordered, empty=empty)
        meta = dict(merged.meta)
        meta.update({"n": len(self._live), "live": len(self._live),
                     "recomputed": recomputed})
        return MaxRSResult(value=merged.value, center=merged.center, shape=merged.shape,
                           exact=merged.exact, meta=meta)

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #

    def apply(self, event: UpdateEvent, event_index: int) -> None:
        """Apply one stream event; ``event_index`` is its position in the stream."""
        if event.kind == "insert":
            self._insert(event_index, event.point, event.weight)
        else:
            if event.target not in self._live:
                raise KeyError(
                    "delete event targets stream index %r which is not alive" % event.target
                )
            self._remove(event.target)

    def replay(
        self,
        stream: Iterable[UpdateEvent],
        *,
        query_every: int = 1,
    ) -> List[HotspotSnapshot]:
        """Replay a stream, reporting the hotspot every ``query_every`` events."""
        if query_every < 1:
            raise ValueError("query_every must be >= 1")
        snapshots: List[HotspotSnapshot] = []
        for index, event in enumerate(stream):
            self.apply(event, index)
            if (index + 1) % query_every == 0:
                result = self.current()
                snapshots.append(HotspotSnapshot(
                    step=index + 1,
                    value=result.value,
                    center=result.center,
                    live_points=len(self._live),
                ))
        return snapshots
