"""MaxRS monitors: continuous hotspot reporting over insert/delete streams.

The monitors consume :class:`repro.datasets.streams.UpdateEvent` streams (or
direct ``observe`` / ``expire`` calls) and report the current hotspot -- the
placement of a fixed-radius ball maximising covered weight -- after every
update batch.  Three monitors live here:

* :class:`ApproximateMaxRSMonitor` maintains the paper's dynamic structure
  (Theorem 1.1): ``O_eps(log n)`` amortized work per update and a
  ``(1/2 - eps)`` guarantee on every reported hotspot.
* :class:`SlidingWindowMaxRSMonitor` keeps only the most recent ``window``
  observations alive, the standard stream-monitoring setting [AH16, AH17].
* :class:`ExactRecomputeMonitor` recomputes the exact planar disk optimum
  from scratch at every query -- the accuracy reference and the cost baseline
  the dynamic structure is compared against.

All event-stream monitors derive from :class:`repro.streaming.base.StreamMonitor`
and therefore share the batched ingestion interface (``apply_batch`` /
``apply_stream(chunk_size=...)``); the sharded variants with *native* batch
paths are in :mod:`repro.streaming.sharded` and
:mod:`repro.streaming.multi_query`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dynamic import DynamicMaxRS
from ..core.result import MaxRSResult
from ..datasets.streams import UpdateEvent
from ..exact.disk2d import maxrs_disk_exact
from ..kernels import get_backend
from .base import HotspotSnapshot, StreamMonitor

__all__ = [
    "HotspotSnapshot",
    "ApproximateMaxRSMonitor",
    "SlidingWindowMaxRSMonitor",
    "ExactRecomputeMonitor",
]

Coords = Tuple[float, ...]


class ApproximateMaxRSMonitor(StreamMonitor):
    """Continuous (1/2 - eps)-approximate hotspot monitoring (Theorem 1.1).

    Parameters
    ----------
    dim, radius, epsilon, seed:
        Forwarded to :class:`repro.core.dynamic.DynamicMaxRS`.

    The monitor keeps the mapping from the caller's handles (stream event
    indices, or the ids returned by :meth:`observe`) to the ids of the
    underlying dynamic structure, so deletions can be expressed in the
    caller's terms.
    """

    def __init__(self, dim: int = 2, radius: float = 1.0, epsilon: float = 0.25, *, seed=None):
        self._structure = DynamicMaxRS(dim=dim, radius=radius, epsilon=epsilon, seed=seed)
        self._handles: Dict[int, int] = {}
        self._next_handle = 0
        self._steps = 0

    # ------------------------------------------------------------------ #
    # direct interface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._structure)

    @property
    def steps(self) -> int:
        """Number of updates processed so far."""
        return self._steps

    def observe(self, point: Sequence[float], weight: float = 1.0) -> int:
        """Insert an observation; returns a handle usable with :meth:`expire`."""
        ball_id = self._structure.insert(point, weight)
        handle = self._next_handle
        self._next_handle += 1
        self._handles[handle] = ball_id
        self._steps += 1
        return handle

    def observe_batch(
        self,
        points: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
    ) -> List[int]:
        """Insert a batch of observations; returns their handles."""
        weight_list = _batch_weights(points, weights)
        return [self.observe(point, weight) for point, weight in zip(points, weight_list)]

    def expire(self, handle: int) -> None:
        """Delete a previously observed point by its handle."""
        if handle not in self._handles:
            raise KeyError("unknown observation handle %r" % handle)
        self._structure.delete(self._handles.pop(handle))
        self._steps += 1

    def current(self) -> MaxRSResult:
        """The current (approximate) hotspot."""
        return self._structure.query()

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #

    def apply(self, event: UpdateEvent, event_index: int) -> None:
        """Apply one stream event; ``event_index`` is its position in the stream."""
        if event.kind == "insert":
            ball_id = self._structure.insert(event.point, event.weight)
            self._handles[event_index] = ball_id
            self._steps += 1
        else:
            ball_id = self._handles.pop(event.target, None)
            if ball_id is None:
                raise KeyError(
                    "delete event targets stream index %r which is not alive" % event.target
                )
            self._structure.delete(ball_id)
            self._steps += 1


class SlidingWindowMaxRSMonitor:
    """Hotspot monitoring over the most recent ``window`` observations.

    Every call to :meth:`observe` inserts the new point and, once the window
    is full, expires the oldest live observation -- the count-based sliding
    window of the stream-monitoring literature.  Queries report the hotspot
    of the live window only.
    """

    def __init__(
        self,
        window: int,
        dim: int = 2,
        radius: float = 1.0,
        epsilon: float = 0.25,
        *,
        seed=None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._monitor = ApproximateMaxRSMonitor(dim=dim, radius=radius, epsilon=epsilon, seed=seed)
        self._live_handles: List[int] = []

    def __len__(self) -> int:
        return len(self._live_handles)

    def observe(self, point: Sequence[float], weight: float = 1.0) -> None:
        """Insert an observation, expiring the oldest one if the window is full."""
        if len(self._live_handles) == self.window:
            self._monitor.expire(self._live_handles.pop(0))
        self._live_handles.append(self._monitor.observe(point, weight))

    def observe_batch(
        self,
        points: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Insert a batch of observations (window evictions included)."""
        weight_list = _batch_weights(points, weights)
        for point, weight in zip(points, weight_list):
            self.observe(point, weight)

    def current(self) -> MaxRSResult:
        """The hotspot over the current window contents."""
        return self._monitor.current()

    def replay_points(
        self,
        points: Sequence[Sequence[float]],
        *,
        weights: Optional[Sequence[float]] = None,
        query_every: int = 1,
    ) -> List[HotspotSnapshot]:
        """Feed a point sequence through the window, reporting periodically."""
        if query_every < 1:
            raise ValueError("query_every must be >= 1")
        weight_list = _batch_weights(points, weights)
        snapshots: List[HotspotSnapshot] = []
        for index, (point, weight) in enumerate(zip(points, weight_list)):
            self.observe(point, weight)
            if (index + 1) % query_every == 0:
                result = self.current()
                snapshots.append(HotspotSnapshot(
                    step=index + 1,
                    value=result.value,
                    center=result.center,
                    live_points=len(self._live_handles),
                ))
        return snapshots


class ExactRecomputeMonitor(StreamMonitor):
    """Baseline monitor: recompute the exact planar disk optimum at every query.

    The live set is kept in a dictionary; every query runs the
    ``O(n^2 log n)`` exact sweep from scratch.  Its answers are exact, which
    makes it the accuracy reference for the approximate monitors, and its
    per-query cost is what Theorem 1.1's ``O_eps(log n)`` update time is
    contrasted with in experiment E13.  ``backend`` selects the kernel
    implementation of the per-query sweep (:mod:`repro.kernels`), so the
    baseline is not handicapped when compared against the batched monitors.
    """

    def __init__(self, radius: float = 1.0, *, backend: str = "auto"):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = float(radius)
        if backend != "auto":
            get_backend(backend)  # surface typos at construction
        self.backend = backend
        self._live: Dict[int, Tuple[Coords, float]] = {}
        self._steps = 0

    def __len__(self) -> int:
        return len(self._live)

    @property
    def steps(self) -> int:
        """Number of updates processed so far."""
        return self._steps

    def apply(self, event: UpdateEvent, event_index: int) -> None:
        if event.kind == "insert":
            self._live[event_index] = (event.point, event.weight)
        else:
            self._live.pop(event.target, None)
        self._steps += 1

    def current(self) -> MaxRSResult:
        if not self._live:
            return MaxRSResult(value=0.0, center=None, shape="ball", exact=True,
                               meta={"radius": self.radius, "n": 0})
        coords = [point for point, _ in self._live.values()]
        weights = [weight for _, weight in self._live.values()]
        return maxrs_disk_exact(coords, radius=self.radius, weights=weights,
                                backend=self.backend)


def _batch_weights(
    points: Sequence[Sequence[float]],
    weights: Optional[Sequence[float]],
) -> List[float]:
    """Validate an optional parallel weight list for a point batch."""
    weight_list = list(weights) if weights is not None else [1.0] * len(points)
    if len(weight_list) != len(points):
        raise ValueError("got %d weights for %d points" % (len(weight_list), len(points)))
    return weight_list
