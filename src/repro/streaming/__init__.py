"""Continuous MaxRS monitoring over update streams.

Section 1.1 of the paper motivates dynamic MaxRS with real-time hotspot
monitoring, and its related-work section points at the MaxRS *monitoring*
literature for spatial data streams [AH16, AH17, MMH+17].  This package
builds that application layer on top of the paper's dynamic structure
(:class:`repro.core.dynamic.DynamicMaxRS`, Theorem 1.1):

* :class:`ApproximateMaxRSMonitor` -- replays insert/delete streams against
  the dynamic (1/2 - eps) structure and reports the hotspot after every
  update (or every ``query_every`` updates);
* :class:`SlidingWindowMaxRSMonitor` -- the count-based sliding-window
  variant, where only the most recent ``window`` observations stay alive;
* :class:`ExactRecomputeMonitor` -- the from-scratch baseline that recomputes
  the exact planar disk optimum on the live set at every query, which is what
  the dynamic structure's sub-linear update time is measured against in
  experiment E13;
* :class:`ShardedMaxRSMonitor` -- exact answers at a fraction of the
  recompute cost: the live set is kept in the execution engine's
  halo-expanded spatial shards (:mod:`repro.engine.sharding`) and a query
  re-solves only the shards dirtied since the last one.
"""

from .monitor import (
    ApproximateMaxRSMonitor,
    ExactRecomputeMonitor,
    HotspotSnapshot,
    SlidingWindowMaxRSMonitor,
)
from .sharded import ShardedMaxRSMonitor

__all__ = [
    "HotspotSnapshot",
    "ApproximateMaxRSMonitor",
    "SlidingWindowMaxRSMonitor",
    "ExactRecomputeMonitor",
    "ShardedMaxRSMonitor",
]
