"""Continuous MaxRS monitoring over update streams.

Section 1.1 of the paper motivates dynamic MaxRS with real-time hotspot
monitoring, and its related-work section points at the MaxRS *monitoring*
literature for spatial data streams [AH16, AH17, MMH+17].  This package
builds that application layer on top of the paper's dynamic structure
(:class:`repro.core.dynamic.DynamicMaxRS`, Theorem 1.1) and the sharded
execution engine (:mod:`repro.engine`):

* :class:`StreamMonitor` -- the batched ingestion contract every monitor
  implements: ``apply`` / ``apply_batch`` / ``apply_stream(chunk_size=...)``,
  with the guarantee that chunking is invisible (any chunk size produces
  bit-identical snapshots);
* :class:`ApproximateMaxRSMonitor` -- replays insert/delete streams against
  the dynamic (1/2 - eps) structure and reports the hotspot after every
  update (or every ``query_every`` updates);
* :class:`SlidingWindowMaxRSMonitor` -- the count-based sliding-window
  variant of the approximate monitor, where only the most recent ``window``
  observations stay alive;
* :class:`ExactRecomputeMonitor` -- the from-scratch baseline that recomputes
  the exact planar disk optimum on the live set at every query, which is what
  the dynamic structure's sub-linear update time is measured against in
  experiment E13;
* :class:`ShardedMaxRSMonitor` -- exact answers at a fraction of the
  recompute cost: the live set is kept in halo-expanded spatial shards and a
  query re-solves only the shards dirtied since the last one, per shard on
  the kernel backend the engine planner picks, optionally fanned out over an
  engine executor, with count- and time-based sliding windows built in;
* :class:`MultiQueryMonitor` -- several concurrent standing queries
  (different radii, rectangle extents, colored variants) answered from one
  shared shard store and one dirty-shard pass instead of N independent
  monitors.
"""

from .base import HotspotSnapshot, StreamMonitor
from .monitor import (
    ApproximateMaxRSMonitor,
    ExactRecomputeMonitor,
    SlidingWindowMaxRSMonitor,
)
from .multi_query import MultiQueryMonitor, MultiQuerySnapshot
from .sharded import ShardedMaxRSMonitor

__all__ = [
    "HotspotSnapshot",
    "StreamMonitor",
    "ApproximateMaxRSMonitor",
    "SlidingWindowMaxRSMonitor",
    "ExactRecomputeMonitor",
    "ShardedMaxRSMonitor",
    "MultiQueryMonitor",
    "MultiQuerySnapshot",
]
