"""The batched ingestion contract every hotspot monitor implements.

:class:`StreamMonitor` fixes the interface the rest of the streaming layer
(the CLI ``monitor`` command, the stress suite, the benchmarks) programs
against:

* ``apply(event, event_index)`` -- one :class:`~repro.datasets.streams.UpdateEvent`;
* ``apply_batch(events, start_index)`` -- a chunk of events.  The base
  implementation loops over :meth:`apply`; monitors with real batch paths
  (:class:`~repro.streaming.sharded.ShardedMaxRSMonitor`,
  :class:`~repro.streaming.multi_query.MultiQueryMonitor`) override it to
  amortise per-event bookkeeping;
* ``apply_stream(stream, chunk_size=..., query_every=...)`` -- chunked
  replay.  Chunk boundaries are cut so that they always land on the query
  positions ``query_every`` dictates, which is what makes the batch-vs-single
  equivalence guarantee testable: for any ``chunk_size`` the monitor is
  queried at exactly the same stream prefixes.

The one semantic contract, enforced by the oracle suite
(``tests/test_streaming_batch.py``): **batching must be invisible**.
``apply_batch(events)`` must leave the monitor in the same state as applying
the events one at a time, so any stream chunked at any size produces
bit-identical snapshots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from ..core.result import MaxRSResult
from ..datasets.streams import UpdateEvent

__all__ = ["HotspotSnapshot", "StreamMonitor"]

Coords = Tuple[float, ...]


@dataclass(frozen=True)
class HotspotSnapshot:
    """The hotspot reported after processing a prefix of the stream.

    Attributes
    ----------
    step:
        Number of stream events processed so far (1-based).
    value:
        Weight covered by the reported placement.
    center:
        Reported ball center (``None`` while the live set is empty).
    live_points:
        Size of the live point set at this step.
    """

    step: int
    value: float
    center: Optional[Coords]
    live_points: int


class StreamMonitor:
    """Base class: event-at-a-time ingestion plus derived batched ingestion."""

    #: Updates processed so far; every concrete monitor maintains this.
    _steps = 0

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def steps(self) -> int:
        """Number of updates processed so far."""
        return self._steps

    @property
    def generation(self) -> Hashable:
        """Cache-invalidation token for answers derived from this monitor.

        The token is an opaque hashable value with one contract: whenever the
        monitor's state may have changed -- and therefore any externally
        cached answer may be stale -- the token changes.  The serving layer
        (:mod:`repro.service`) keys its TTL'd result cache on it, so applying
        an update batch invalidates every cached monitor answer without an
        explicit callback.  The base implementation covers every mutation
        that goes through the update counter; monitors with out-of-band
        mutations (e.g. :meth:`repro.streaming.ShardedMaxRSMonitor.advance_to`
        evictions) extend it.
        """
        return (self._steps, len(self))

    def apply(self, event: UpdateEvent, event_index: int) -> None:
        """Apply one stream event; ``event_index`` is its position in the stream."""
        raise NotImplementedError

    def current(self) -> MaxRSResult:
        """The monitor's current hotspot."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # batched ingestion
    # ------------------------------------------------------------------ #

    def apply_batch(self, events: Sequence[UpdateEvent], start_index: int = 0) -> None:
        """Apply a chunk of events whose first element has stream position
        ``start_index``.

        Equivalent -- by contract -- to applying the events one at a time;
        subclasses override this to amortise per-event work, never to change
        semantics.
        """
        for offset, event in enumerate(events):
            self.apply(event, start_index + offset)

    def _apply_events_batched(self, events: Sequence[UpdateEvent], start_index: int,
                              insert_run, delete_one) -> None:
        """Shared chunk walker for monitors with native batch insert paths.

        Splits the chunk into maximal runs of consecutive insertions --
        handed to ``insert_run(run_events, first_stream_index)`` -- and
        individual delete events handed to ``delete_one(event)``, preserving
        stream order.
        """
        position = 0
        count = len(events)
        while position < count:
            if events[position].kind == "insert":
                end = position
                while end < count and events[end].kind == "insert":
                    end += 1
                insert_run(events[position:end], start_index + position)
                position = end
            else:
                delete_one(events[position])
                position += 1

    def _snapshot(self, step: int) -> HotspotSnapshot:
        """Build the snapshot reported after ``step`` events (hook for
        monitors whose reports are not a single :class:`MaxRSResult`)."""
        result = self.current()
        return HotspotSnapshot(
            step=step,
            value=result.value,
            center=result.center,
            live_points=len(self),
        )

    def apply_stream(
        self,
        stream: Iterable[UpdateEvent],
        *,
        chunk_size: int = 256,
        query_every: Optional[int] = None,
        start_index: int = 0,
    ) -> List[HotspotSnapshot]:
        """Replay a stream in chunks of at most ``chunk_size`` events.

        ``query_every=None`` snapshots once per ingested chunk (including the
        final, possibly short, one).  With ``query_every=k`` the monitor is
        queried after events ``k, 2k, ...`` *regardless of chunking*: chunk
        boundaries are cut to land on those positions, so two replays of the
        same stream with different chunk sizes report identical snapshots.

        The stream is consumed with bounded lookahead (one chunk at a time),
        so generator-backed streams replay in ``O(chunk_size)`` memory.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if query_every is not None and query_every < 1:
            raise ValueError("query_every must be >= 1")
        iterator = iter(stream)
        snapshots: List[HotspotSnapshot] = []
        position = 0
        while True:
            limit = chunk_size
            if query_every is not None:
                # Cut the chunk at the next query boundary so queries fire at
                # the same stream prefixes for every chunk size.
                absolute = start_index + position
                next_query = ((absolute // query_every) + 1) * query_every
                limit = min(limit, next_query - absolute)
            chunk = list(itertools.islice(iterator, limit))
            if not chunk:
                break
            self.apply_batch(chunk, start_index + position)
            position += len(chunk)
            absolute = start_index + position
            if query_every is None or absolute % query_every == 0:
                snapshots.append(self._snapshot(absolute))
        return snapshots

    def replay(
        self,
        stream: Iterable[UpdateEvent],
        *,
        query_every: int = 1,
    ) -> List[HotspotSnapshot]:
        """Replay a stream, reporting the hotspot every ``query_every`` events.

        Kept for compatibility with the pre-batching monitors; equivalent to
        :meth:`apply_stream` with ``chunk_size=query_every``.
        """
        if query_every < 1:
            raise ValueError("query_every must be >= 1")
        return self.apply_stream(stream, chunk_size=query_every, query_every=query_every)
