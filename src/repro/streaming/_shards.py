"""Shared live-set bookkeeping for the sharded streaming monitors.

:class:`LiveShardStore` maintains the mutable state both
:class:`~repro.streaming.sharded.ShardedMaxRSMonitor` and
:class:`~repro.streaming.multi_query.MultiQueryMonitor` need: the live
handle -> observation map, each handle's tile membership under the engine's
halo-expanded square tiling (:mod:`repro.engine.sharding`), the per-tile
point sets, and the *dirty* set of tiles whose cached solver results are
stale.  Insertions come in two flavours with identical semantics:

* :meth:`insert` -- one observation, tile keys via
  :func:`repro.engine.sharding.tile_keys_for_point`;
* :meth:`insert_batch` -- a run of observations whose tile keys are computed
  in one vectorised NumPy pass (two ``floor`` array ops for the whole run
  instead of per-point float math); because tile sides are clamped to at
  least twice the halo, each point lands in at most four tiles and the key
  set per point is the 2 x 2 corner product.

The store knows nothing about solvers, windows or results caches -- the
monitors own those -- it only guarantees that every tile whose point set
changed since the last :meth:`clean` call is in :attr:`dirty`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..engine.sharding import tile_keys_for_point

__all__ = ["LiveShardStore"]

Coords = Tuple[float, ...]
Key = Tuple[int, ...]
Entry = Tuple[Coords, float, Optional[Hashable]]

#: Insert runs at least this long take the vectorised tile-key path.
BATCH_KEY_THRESHOLD = 32


class LiveShardStore:
    """Halo-tiled live point set with dirty-tile accounting.

    Parameters
    ----------
    halo:
        Per-axis halo (how far a covered point can sit from a placement's
        anchor); tiles are expanded by it, so any anchor inside a tile sees
        all the points it can cover in that tile's shard.
    sides:
        Per-axis tile sides; must be at least ``2 * halo`` per axis (the
        monitors clamp before constructing the store), which caps the
        replication factor at four tiles per point.
    """

    def __init__(self, halo: Tuple[float, float], sides: Tuple[float, float]):
        if any(s < 2.0 * h for s, h in zip(sides, halo)):
            raise ValueError(
                "tile sides %r are smaller than twice the halo %r" % (sides, halo)
            )
        self.halo = halo
        self.sides = sides
        # live handle -> (point, weight, color); handle -> tile keys
        self.live: Dict[int, Entry] = {}
        self.membership: Dict[int, List[Key]] = {}
        # tile key -> {handle: (point, weight, color)}
        self.shards: Dict[Key, Dict[int, Entry]] = {}
        self.dirty: Set[Key] = set()

    def __len__(self) -> int:
        return len(self.live)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def _file_under(self, handle: int, entry: Entry, keys: List[Key]) -> None:
        if handle in self.live:
            raise KeyError("observation handle %r is already alive" % handle)
        self.live[handle] = entry
        self.membership[handle] = keys
        for key in keys:
            self.shards.setdefault(key, {})[handle] = entry
            self.dirty.add(key)

    def insert(
        self,
        handle: int,
        point: Sequence[float],
        weight: float = 1.0,
        color: Optional[Hashable] = None,
    ) -> None:
        """Insert one observation, dirtying every tile whose halo covers it."""
        point = tuple(float(c) for c in point)
        if len(point) != 2:
            raise ValueError("sharded monitors expect planar points")
        keys = tile_keys_for_point(point, self.halo, self.sides)
        self._file_under(handle, (point, float(weight), color), keys)

    def insert_batch(
        self,
        handles: Sequence[int],
        points: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
        colors: Optional[Sequence[Hashable]] = None,
    ) -> None:
        """Insert a run of observations with one vectorised tile-key pass."""
        count = len(points)
        if weights is not None and len(weights) != count:
            raise ValueError("got %d weights for %d points" % (len(weights), count))
        if colors is not None and len(colors) != count:
            raise ValueError("got %d colors for %d points" % (len(colors), count))
        if count < BATCH_KEY_THRESHOLD:
            for index in range(count):
                self.insert(handles[index], points[index],
                            weights[index] if weights is not None else 1.0,
                            colors[index] if colors is not None else None)
            return
        array = np.asarray([tuple(p) for p in points], dtype=float)
        if array.ndim != 2 or array.shape[1] != 2:
            raise ValueError("sharded monitors expect planar points")
        # Vectorised restatement of tile_keys_for_point's per-axis range
        # floor((x - h) / side) .. floor((x + h) / side); with sides >= 2h
        # the range has at most two values, so the key set is the 2 x 2
        # corner product.  tests/test_streaming_batch.py pins the two paths
        # to identical keys.
        halo = np.asarray(self.halo)
        sides = np.asarray(self.sides)
        lo = np.floor((array - halo) / sides).astype(int)
        hi = np.floor((array + halo) / sides).astype(int)
        for row in range(count):
            point = (float(array[row, 0]), float(array[row, 1]))
            weight = float(weights[row]) if weights is not None else 1.0
            color = colors[row] if colors is not None else None
            lx, ly = int(lo[row, 0]), int(lo[row, 1])
            hx, hy = int(hi[row, 0]), int(hi[row, 1])
            keys = [(kx, ky)
                    for kx in ((lx,) if lx == hx else (lx, hx))
                    for ky in ((ly,) if ly == hy else (ly, hy))]
            self._file_under(handles[row], (point, weight, color), keys)

    def remove(self, handle: int) -> List[Key]:
        """Remove one observation; returns the tiles that became empty (their
        cached results should be dropped by the caller)."""
        if handle not in self.live:
            raise KeyError("unknown observation handle %r" % handle)
        del self.live[handle]
        emptied: List[Key] = []
        for key in self.membership.pop(handle):
            shard = self.shards[key]
            del shard[handle]
            if shard:
                self.dirty.add(key)
            else:
                del self.shards[key]
                self.dirty.discard(key)
                emptied.append(key)
        return emptied

    def entries(self, key: Key) -> Tuple[List[Coords], List[float], List[Optional[Hashable]]]:
        """The parallel (coords, weights, colors) lists of one tile's shard."""
        shard = self.shards[key]
        coords = [point for point, _, _ in shard.values()]
        weights = [weight for _, weight, _ in shard.values()]
        colors = [color for _, _, color in shard.values()]
        return coords, weights, colors

    def clean(self) -> List[Key]:
        """Return the dirty tiles in deterministic order and mark them clean."""
        keys = sorted(self.dirty)
        self.dirty.clear()
        return keys
