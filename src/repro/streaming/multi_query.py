"""Several standing MaxRS queries over one shared dirty-shard pass.

A monitoring deployment rarely asks a single question: operations wants the
disk hotspot at two radii, the capacity planner wants a ``W x H`` rectangle,
and the ecology team wants the colored (distinct-entity) variant -- all over
the *same* update stream.  Running one
:class:`~repro.streaming.sharded.ShardedMaxRSMonitor` per question would
re-partition, re-bookkeep and re-scan the live set once per query.

:class:`MultiQueryMonitor` answers all standing queries from **one** shard
store: the tiling uses the per-axis *maximum* halo over all registered
queries, so every query's halo invariant holds in every tile (a shard
contains a superset of the points any one query's anchor can cover, and
shard point sets are still subsets of the live set -- the max-merge argument
of :mod:`repro.engine.merge` goes through unchanged, preserving exactness
and approximation guarantees per query).  An update dirties a tile once, no
matter how many queries are registered; a query pass solves ``dirty tiles x
queries`` tasks in one (optionally executor-parallel) submission, reusing
the engine's solver routing (:func:`repro.engine.planner.solve_query`) and
its per-shard ``"auto"`` backend resolution.

Supported standing queries are the planar members of the engine's
:class:`~repro.engine.Query` family: exact / approximate, weighted /
colored, disk or rectangle.  (Interval queries need 1-d data and are
rejected.)  Colored queries require a color on every observation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.result import MaxRSResult
from ..datasets.streams import UpdateEvent
from ..engine.executors import Executor, get_executor
from ..engine.merge import merge_shard_results
from ..engine.planner import Query, resolve_task_backend, solve_query
from ..obs import tracing as obs
from ._shards import LiveShardStore
from .base import StreamMonitor

__all__ = ["MultiQueryMonitor", "MultiQuerySnapshot"]

Coords = Tuple[float, ...]
Key = Tuple[int, ...]


@dataclass(frozen=True)
class MultiQuerySnapshot:
    """All standing-query answers after processing a prefix of the stream."""

    step: int
    results: Dict[str, MaxRSResult]
    live_points: int


def _solve_named_shard(task):
    """Executor task: one (standing query, shard) cell (picklable payload)."""
    name, key, query, coords, weights, colors = task
    return name, key, solve_query(query, coords, weights, colors)


class MultiQueryMonitor(StreamMonitor):
    """Answer several concurrent standing queries over one live point set.

    Parameters
    ----------
    queries:
        The standing queries: a mapping ``name -> Query`` or a sequence of
        :class:`~repro.engine.Query` (named ``q0``, ``q1``, ... in order).
        All queries must be planar (disk or rectangle).
    tile_side:
        Square tile side; defaults to four times the largest per-axis halo of
        any query and is clamped to at least twice that halo.
    executor, workers:
        Optional engine executor for the per-query-pass ``dirty x queries``
        task fan-out; ``None`` solves inline.

    Unlike the single-query monitors, :meth:`current` returns a ``dict``
    mapping query names to :class:`~repro.core.result.MaxRSResult`;
    :meth:`apply_stream` snapshots are :class:`MultiQuerySnapshot` instances.
    Each query keeps its own per-tile result cache, but all queries share
    one tiling, one dirty set and one ingestion pass.
    """

    def __init__(
        self,
        queries: Union[Mapping[str, Query], Sequence[Query]],
        *,
        tile_side: Optional[float] = None,
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
    ):
        if isinstance(queries, Mapping):
            named = list(queries.items())
        else:
            named = [("q%d" % index, query) for index, query in enumerate(queries)]
        if not named:
            raise ValueError("MultiQueryMonitor needs at least one standing query")
        for name, query in named:
            if query.shape not in ("disk", "rectangle"):
                raise ValueError(
                    "standing query %r (%s) is not planar; only disk and "
                    "rectangle queries are supported" % (name, query.describe())
                )
            if query.backend != "auto":
                resolve_task_backend(query.backend, 0)  # surface typos now
        self.queries: Dict[str, Query] = dict(named)
        halos = [query.halo(2) for _, query in named]
        halo = (max(h[0] for h in halos), max(h[1] for h in halos))
        max_halo = max(halo)
        side = 4.0 * max_halo if tile_side is None else float(tile_side)
        self.tile_side = max(side, 2.0 * max_halo)
        self._store = LiveShardStore(halo, (self.tile_side, self.tile_side))
        self._executor = None if executor is None else get_executor(executor, workers)
        # query name -> {tile key -> cached shard result}
        self._results: Dict[str, Dict[Key, MaxRSResult]] = {name: {} for name, _ in named}
        # colored standing queries need a color on every *live* observation;
        # tracking the count (not a sticky flag) keeps the condition exact as
        # uncolored points come and go.
        self._uncolored_live = 0
        self._steps = 0
        self._next_handle = 0
        self.total_shard_solves = 0

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._store)

    @property
    def steps(self) -> int:
        """Number of updates processed so far."""
        return self._steps

    @property
    def shard_count(self) -> int:
        """Number of occupied spatial tiles (shared by all queries)."""
        return self._store.shard_count

    @property
    def dirty_shard_count(self) -> int:
        """Number of tiles whose cached results are stale (``0`` right after
        a query pass)."""
        return len(self._store.dirty)

    def close(self) -> None:
        """Shut down the executor's worker pool (if any); idempotent."""
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "MultiQueryMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _note_color(self, color: Optional[Hashable]) -> None:
        if color is None:
            self._uncolored_live += 1

    def _remove(self, handle: int) -> None:
        if self._store.live[handle][2] is None:
            self._uncolored_live -= 1
        for key in self._store.remove(handle):
            for cache in self._results.values():
                cache.pop(key, None)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #

    def observe(self, point: Sequence[float], weight: float = 1.0, *,
                color: Optional[Hashable] = None) -> int:
        """Insert an observation; returns a handle usable with :meth:`expire`."""
        handle = self._next_handle
        self._next_handle += 1
        self._store.insert(handle, point, float(weight), color)
        self._note_color(color)
        self._steps += 1
        return handle

    def observe_batch(
        self,
        points: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
        *,
        colors: Optional[Sequence[Hashable]] = None,
    ) -> List[int]:
        """Insert a batch of observations in one vectorised pass."""
        handles = list(range(self._next_handle, self._next_handle + len(points)))
        self._next_handle += len(points)
        self._store.insert_batch(handles, points, weights, colors)
        if colors is None:
            self._uncolored_live += len(points)
        else:
            for color in colors:
                self._note_color(color)
        self._steps += len(points)
        return handles

    def expire(self, handle: int) -> None:
        """Delete a previously observed point by its handle."""
        if handle not in self._store.live:
            raise KeyError("unknown observation handle %r" % handle)
        self._remove(handle)
        self._steps += 1

    def apply(self, event: UpdateEvent, event_index: int) -> None:
        """Apply one stream event; ``event_index`` is its position in the stream."""
        if event.kind == "insert":
            self._store.insert(event_index, event.point, event.weight, event.color)
            self._note_color(event.color)
        else:
            if event.target not in self._store.live:
                raise KeyError(
                    "delete event targets stream index %r which is not alive" % event.target
                )
            self._remove(event.target)
        self._steps += 1

    def apply_batch(self, events: Sequence[UpdateEvent], start_index: int = 0) -> None:
        """Apply a chunk of events, filing insert runs through the store's
        vectorised path (semantically identical to one-at-a-time application)."""

        def insert_run(run, first_index):
            handles = list(range(first_index, first_index + len(run)))
            self._store.insert_batch(handles, [e.point for e in run],
                                     [e.weight for e in run],
                                     [e.color for e in run])
            for inserted in run:
                self._note_color(inserted.color)
            self._steps += len(run)

        def delete_one(event):
            if event.target not in self._store.live:
                raise KeyError(
                    "delete event targets stream index %r which is not alive"
                    % event.target
                )
            self._remove(event.target)
            self._steps += 1

        self._apply_events_batched(events, start_index, insert_run, delete_one)

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #

    def _refresh(self) -> int:
        """Re-solve every (standing query, dirty tile) cell in one pass."""
        if self._store.dirty:
            # Validate *before* draining the dirty set, so a usage error
            # leaves the monitor recoverable: expire the uncolored points
            # and the next query re-solves the still-dirty tiles.
            colored_queries = [q for q in self.queries.values() if q.colored]
            if colored_queries and self._uncolored_live:
                raise ValueError(
                    "standing query %s needs a color on every observation "
                    "(%d live observations have none)"
                    % (colored_queries[0].describe(), self._uncolored_live)
                )
        dirty = self._store.clean()
        if not dirty:
            return 0
        all_colored = self._uncolored_live == 0
        tasks = []
        for key in dirty:
            coords, weights, colors = self._store.entries(key)
            color_list = colors if all_colored else None
            for name, query in self.queries.items():
                task_query = query
                if query.backend == "auto":
                    task_query = replace(
                        query, backend=resolve_task_backend("auto", len(coords)))
                tasks.append((name, key, task_query, coords, weights, color_list))
        with obs.trace("monitor.refresh", dirty=len(dirty),
                       queries=len(self.queries), cells=len(tasks)):
            if self._executor is not None and len(tasks) > 1:
                solved = self._executor.map(_solve_named_shard, tasks)
            else:
                solved = [_solve_named_shard(task) for task in tasks]
        for name, key, result in solved:
            self._results[name][key] = result
        self.total_shard_solves += len(tasks)
        return len(dirty)

    def current(self) -> Dict[str, MaxRSResult]:
        """All standing-query answers, re-solving only dirty tiles once."""
        recomputed = self._refresh()
        answers: Dict[str, MaxRSResult] = {}
        for name, query in self.queries.items():
            cache = self._results[name]
            ordered = [cache[key] for key in sorted(cache)]
            empty = solve_query(query, [], [], [] if query.colored else None)
            merged = merge_shard_results(ordered, empty=empty)
            meta = dict(merged.meta)
            meta.update({"n": len(self._store), "live": len(self._store),
                         "recomputed": recomputed, "query": query.describe()})
            answers[name] = MaxRSResult(value=merged.value, center=merged.center,
                                        shape=merged.shape, exact=merged.exact,
                                        meta=meta)
        return answers

    def current_one(self, name: str) -> MaxRSResult:
        """One standing query's current answer (still refreshes all caches --
        the shard pass is shared, so this costs no more than :meth:`current`)."""
        answers = self.current()
        try:
            return answers[name]
        except KeyError:
            raise KeyError("unknown standing query %r (registered: %s)"
                           % (name, ", ".join(sorted(self.queries)))) from None

    def _snapshot(self, step: int) -> MultiQuerySnapshot:
        return MultiQuerySnapshot(step=step, results=self.current(),
                                  live_points=len(self._store))
