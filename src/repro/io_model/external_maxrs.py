"""External-memory MaxRS algorithms over the simulated I/O model.

The external MaxRS line of work [CCT12, CCT14] shows that the optimal
placement of an axis-aligned rectangle over ``n`` disk-resident points can be
found with ``O(sort(n))`` block transfers, a dramatic improvement over
naive quadratic scanning.  This module reproduces that comparison on the
simulated hierarchy of :mod:`repro.io_model.blocks`:

* :func:`external_maxrs_interval` -- MaxRS for a fixed-length interval on the
  real line with *sort + two synchronized scans*: ``O(sort(n))`` I/Os and
  ``O(B)`` internal memory.
* :func:`external_maxrs_interval_nested_scan` -- the baseline that, block by
  block, rescans the whole file for every block of candidate left endpoints:
  ``Theta((n/B)^2)`` I/Os.
* :func:`external_maxrs_rectangle` -- MaxRS for a ``width x height``
  rectangle with *sort + sweep*: the point stream is sorted by x externally
  and swept once while a segment tree over the candidate bottom edges is kept
  in internal memory.  The I/O cost is ``O(sort(n))`` like the external
  algorithm of [CCT14]; keeping the ``O(n)``-size sweep structure in memory
  (instead of the paper's external interval tree) is a documented
  substitution -- it changes the internal-memory accounting, not the block
  transfer counts the experiment measures.

Records are ``(x, weight)`` tuples for the interval variants and
``(x, y, weight)`` tuples for the rectangle variant.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Optional, Tuple

from ..core.result import MaxRSResult
from ..structures.segment_tree import MaxAddSegmentTree
from .blocks import ExternalFile
from .external_sort import external_merge_sort

__all__ = [
    "external_maxrs_interval",
    "external_maxrs_interval_nested_scan",
    "external_maxrs_rectangle",
]

_EPS = 1e-9


def _validate_length(length: float) -> None:
    if length < 0:
        raise ValueError("interval length must be non-negative, got %r" % length)


def external_maxrs_interval(file: ExternalFile, length: float) -> MaxRSResult:
    """Exact 1-d MaxRS over an external file of ``(x, weight)`` records.

    Sorts the file externally by ``x`` and then walks it with two
    synchronized scan cursors: the right cursor adds each point's weight to a
    running window sum, the left cursor evicts points that fall out of the
    length-``length`` window.  Internal memory use is two scan buffers.

    ``meta["io"]`` records the block reads/writes spent by this call only.
    """
    _validate_length(length)
    storage = file.storage
    before = storage.stats.snapshot()
    if len(file) == 0:
        return MaxRSResult(value=0.0, center=None, shape="interval", exact=True,
                           meta={"length": length, "n": 0,
                                 "io": storage.stats.delta_since(before)})

    sorted_file = external_merge_sort(file, key=lambda record: record[0])

    storage.borrow_memory(2 * storage.block_size)
    try:
        left_iter = sorted_file.scan()
        window_sum = 0.0
        best_value = float("-inf")
        best_start = None
        left_record = next(left_iter)
        for x_right, weight in sorted_file.scan():
            window_sum += weight
            # Evict points strictly more than ``length`` to the left.
            while left_record is not None and left_record[0] < x_right - length - _EPS:
                window_sum -= left_record[1]
                left_record = next(left_iter, None)
            if window_sum > best_value:
                best_value = window_sum
                best_start = x_right - length
    finally:
        storage.release_memory(2 * storage.block_size)

    return MaxRSResult(
        value=best_value,
        center=(best_start,),
        shape="interval",
        exact=True,
        meta={
            "length": length,
            "n": len(file),
            "method": "external sort + scan",
            "io": storage.stats.delta_since(before),
        },
    )


def external_maxrs_interval_nested_scan(file: ExternalFile, length: float) -> MaxRSResult:
    """Quadratic-I/O baseline: rescan the file for every block of candidates.

    For every block of the input, its records are held in memory as candidate
    left endpoints while the whole file is scanned once to accumulate the
    window sums of all candidates in that block.  The I/O cost is
    ``Theta((n/B)^2)`` block reads, the behaviour the sort-based algorithm is
    measured against in experiment E12.
    """
    _validate_length(length)
    storage = file.storage
    before = storage.stats.snapshot()
    if len(file) == 0:
        return MaxRSResult(value=0.0, center=None, shape="interval", exact=True,
                           meta={"length": length, "n": 0,
                                 "io": storage.stats.delta_since(before)})

    best_value = float("-inf")
    best_start: Optional[float] = None
    for candidate_block in file.scan_blocks():
        storage.borrow_memory(len(candidate_block) + storage.block_size)
        try:
            starts = [record[0] for record in candidate_block]
            sums = [0.0] * len(starts)
            for x, weight in file.scan():
                for index, start in enumerate(starts):
                    if start - _EPS <= x <= start + length + _EPS:
                        sums[index] += weight
            for start, value in zip(starts, sums):
                if value > best_value:
                    best_value = value
                    best_start = start
        finally:
            storage.release_memory(len(candidate_block) + storage.block_size)

    return MaxRSResult(
        value=best_value,
        center=(best_start,),
        shape="interval",
        exact=True,
        meta={
            "length": length,
            "n": len(file),
            "method": "nested block scan",
            "io": storage.stats.delta_since(before),
        },
    )


def external_maxrs_rectangle(
    file: ExternalFile,
    width: float,
    height: float,
) -> MaxRSResult:
    """External MaxRS for a ``width x height`` rectangle: sort by x, then sweep.

    The stream sorted by ``x`` is swept once; a point enters the sweep when
    the rectangle's right edge reaches it and leaves when the left edge
    passes it, and a range-add / global-max segment tree over the candidate
    bottom edges ``y_i - height`` maintains the best vertical placement.  The
    block-transfer cost is one external sort plus two sequential scans.
    """
    if width <= 0 or height <= 0:
        raise ValueError("rectangle side lengths must be positive")
    storage = file.storage
    before = storage.stats.snapshot()
    if len(file) == 0:
        return MaxRSResult(value=0.0, center=None, shape="rectangle", exact=True,
                           meta={"width": width, "height": height, "n": 0,
                                 "io": storage.stats.delta_since(before)})

    sorted_file = external_merge_sort(file, key=lambda record: record[0])

    # First scan: collect candidate bottom edges.  The sweep structure lives
    # in internal memory and is deliberately *not* charged against the memory
    # budget -- it substitutes for the external interval tree of [CCT14]
    # (see the module docstring); only the scan buffers are charged.
    candidate_bs = sorted({record[1] - height for record in sorted_file.scan()})
    storage.borrow_memory(2 * storage.block_size)
    try:
        index_of = {value: index for index, value in enumerate(candidate_bs)}
        tree = MaxAddSegmentTree(len(candidate_bs))

        def b_range(y: float) -> Tuple[int, int]:
            lo = bisect_left(candidate_bs, y - height - _EPS)
            hi = bisect_right(candidate_bs, y + _EPS) - 1
            return lo, hi

        left_iter = sorted_file.scan()
        left_record = next(left_iter, None)
        best_value = float("-inf")
        best_corner: Optional[Tuple[float, float]] = None
        for x_right, y_right, weight in sorted_file.scan():
            lo, hi = b_range(y_right)
            tree.add(lo, hi, weight)
            while left_record is not None and left_record[0] < x_right - width - _EPS:
                lx, ly, lw = left_record
                llo, lhi = b_range(ly)
                tree.add(llo, lhi, -lw)
                left_record = next(left_iter, None)
            value, arg = tree.max_with_argmax()
            if value > best_value:
                best_value = value
                best_corner = (x_right - width, candidate_bs[arg])
    finally:
        storage.release_memory(2 * storage.block_size)

    return MaxRSResult(
        value=best_value,
        center=best_corner,
        shape="rectangle",
        exact=True,
        meta={
            "width": width,
            "height": height,
            "n": len(file),
            "method": "external sort + sweep",
            "io": storage.stats.delta_since(before),
        },
    )
