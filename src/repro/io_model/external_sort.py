"""External multiway merge sort over the simulated I/O model.

Sorting is the dominant cost of the external MaxRS algorithms [CCT12, CCT14]:
their I/O complexity is ``O(sort(n)) = O((n/B) log_{M/B}(n/B))`` block
transfers.  This module implements the textbook two-phase algorithm on top of
:mod:`repro.io_model.blocks`:

1. *Run formation* -- read ``M`` records at a time, sort them in internal
   memory and write each sorted run back to disk.
2. *Multiway merge* -- repeatedly merge up to ``M/B - 1`` runs at a time
   (one input buffer per run plus one output buffer) until a single run
   remains.

Every record is read and written once per pass, so the measured I/O count of
experiment E12 follows the ``(n/B) * (#passes)`` shape the theory predicts.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from .blocks import BlockStorage, ExternalFile

__all__ = ["external_merge_sort"]


def _form_runs(
    file: ExternalFile,
    storage: BlockStorage,
    key: Callable[[object], object],
) -> List[ExternalFile]:
    """Phase 1: sort memory-sized chunks of the input into initial runs."""
    capacity = storage.memory_capacity or max(storage.block_size * 8, len(file) or 1)
    runs: List[ExternalFile] = []
    buffer: List[object] = []

    def flush_buffer() -> None:
        nonlocal buffer
        if not buffer:
            return
        buffer.sort(key=key)
        run = storage.new_file()
        with run.writer() as writer:
            for record in buffer:
                writer.append(record)
        runs.append(run)
        storage.release_memory(len(buffer))
        buffer = []

    for block in file.scan_blocks():
        storage.borrow_memory(len(block))
        buffer.extend(block)
        if len(buffer) + storage.block_size > capacity:
            flush_buffer()
    flush_buffer()
    return runs


def _merge_runs(
    runs: List[ExternalFile],
    storage: BlockStorage,
    key: Callable[[object], object],
) -> ExternalFile:
    """Merge a group of sorted runs into one sorted run using one buffer per run."""
    borrowed = (len(runs) + 1) * storage.block_size
    storage.borrow_memory(borrowed)
    try:
        iterators = [run.scan() for run in runs]
        heap: List = []
        for run_index, iterator in enumerate(iterators):
            first = next(iterator, None)
            if first is not None:
                heapq.heappush(heap, (key(first), run_index, id(first), first))
        merged = storage.new_file()
        with merged.writer() as writer:
            while heap:
                _, run_index, _, record = heapq.heappop(heap)
                writer.append(record)
                following = next(iterators[run_index], None)
                if following is not None:
                    heapq.heappush(heap, (key(following), run_index, id(following), following))
        return merged
    finally:
        storage.release_memory(borrowed)


def external_merge_sort(
    file: ExternalFile,
    key: Optional[Callable[[object], object]] = None,
) -> ExternalFile:
    """Sort an external file by ``key`` and return a new sorted external file.

    The fan-in of each merge pass is ``storage.merge_fan_in``
    (``M/B - 1``), so the number of passes over the data is
    ``1 + ceil(log_{M/B - 1}(#runs))`` exactly as in the textbook analysis.
    The input file is left untouched.
    """
    storage = file.storage
    key = key if key is not None else (lambda record: record)
    if len(file) == 0:
        return storage.new_file()

    runs = _form_runs(file, storage, key)
    fan_in = storage.merge_fan_in
    while len(runs) > 1:
        next_runs: List[ExternalFile] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start:start + fan_in]
            if len(group) == 1:
                next_runs.append(group[0])
            else:
                next_runs.append(_merge_runs(group, storage, key))
        runs = next_runs
    return runs[0]
