"""Simulated two-level memory hierarchy (the I/O model of Aggarwal--Vitter).

The external-memory MaxRS literature the paper builds on [CCT12, CCT14]
analyses algorithms by the number of *block transfers* between a disk of
unbounded size and an internal memory holding ``M`` records, where each
transfer moves a block of ``B`` records.  This module simulates exactly that
cost model:

* :class:`BlockStorage` is the disk.  It owns numbered blocks of at most
  ``block_size`` records each and counts every block read and write.
* :class:`ExternalFile` is a sequence of records laid out in consecutive
  blocks of one storage.  Reading it streams block by block (1 read I/O per
  block); appending buffers records and flushes full blocks (1 write I/O per
  block).
* The storage also tracks a declared internal-memory budget.  Algorithms
  register how many records they hold in memory via
  :meth:`BlockStorage.borrow_memory`; exceeding the budget raises
  :class:`MemoryBudgetExceeded`, which the tests use for failure injection
  and which keeps the external algorithms honest about their working set.

Records are arbitrary Python objects; the simulator never copies them, so the
cost of the simulation itself stays proportional to the number of records
touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "IOStatistics",
    "MemoryBudgetExceeded",
    "BlockStorage",
    "ExternalFile",
]


class MemoryBudgetExceeded(RuntimeError):
    """Raised when an algorithm borrows more internal memory than the budget allows."""


@dataclass
class IOStatistics:
    """Counters of the simulated disk traffic."""

    block_reads: int = 0
    block_writes: int = 0
    blocks_allocated: int = 0

    @property
    def total_ios(self) -> int:
        """Total number of block transfers (reads plus writes)."""
        return self.block_reads + self.block_writes

    def snapshot(self) -> "IOStatistics":
        """An independent copy of the current counters."""
        return IOStatistics(self.block_reads, self.block_writes, self.blocks_allocated)

    def delta_since(self, earlier: "IOStatistics") -> "IOStatistics":
        """Counter differences relative to an earlier snapshot."""
        return IOStatistics(
            self.block_reads - earlier.block_reads,
            self.block_writes - earlier.block_writes,
            self.blocks_allocated - earlier.blocks_allocated,
        )


class BlockStorage:
    """A simulated disk with block-granularity transfers and an internal-memory budget.

    Parameters
    ----------
    block_size:
        Number of records per block (the ``B`` of the I/O model).
    memory_capacity:
        Number of records the internal memory may hold (the ``M`` of the I/O
        model).  Must be at least ``2 * block_size`` so that a merge of two
        runs is possible at all; ``None`` disables memory accounting.
    """

    def __init__(self, block_size: int, memory_capacity: Optional[int] = None):
        if block_size < 1:
            raise ValueError("block_size must be at least 1, got %d" % block_size)
        if memory_capacity is not None and memory_capacity < 2 * block_size:
            raise ValueError(
                "memory_capacity must be at least 2 * block_size (%d), got %d"
                % (2 * block_size, memory_capacity)
            )
        self._block_size = block_size
        self._memory_capacity = memory_capacity
        self._blocks: List[List[object]] = []
        self._memory_in_use = 0
        self.stats = IOStatistics()

    # ------------------------------------------------------------------ #
    # model parameters
    # ------------------------------------------------------------------ #

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def memory_capacity(self) -> Optional[int]:
        return self._memory_capacity

    @property
    def merge_fan_in(self) -> int:
        """How many runs a single merge pass can combine (``M / B - 1``, at least 2)."""
        if self._memory_capacity is None:
            return 64
        return max(2, self._memory_capacity // self._block_size - 1)

    # ------------------------------------------------------------------ #
    # internal-memory accounting
    # ------------------------------------------------------------------ #

    def borrow_memory(self, records: int) -> None:
        """Declare that ``records`` additional records are now held in memory."""
        if records < 0:
            raise ValueError("cannot borrow a negative number of records")
        self._memory_in_use += records
        if self._memory_capacity is not None and self._memory_in_use > self._memory_capacity:
            overshoot = self._memory_in_use
            self._memory_in_use -= records
            raise MemoryBudgetExceeded(
                "internal memory budget of %d records exceeded (would use %d)"
                % (self._memory_capacity, overshoot)
            )

    def release_memory(self, records: int) -> None:
        """Return previously borrowed internal memory."""
        if records < 0:
            raise ValueError("cannot release a negative number of records")
        self._memory_in_use = max(0, self._memory_in_use - records)

    @property
    def memory_in_use(self) -> int:
        return self._memory_in_use

    # ------------------------------------------------------------------ #
    # block operations
    # ------------------------------------------------------------------ #

    def allocate_block(self, records: Sequence[object]) -> int:
        """Write a new block to disk and return its id (counts one write I/O)."""
        if len(records) > self._block_size:
            raise ValueError(
                "block overflow: %d records in a block of size %d"
                % (len(records), self._block_size)
            )
        self._blocks.append(list(records))
        self.stats.block_writes += 1
        self.stats.blocks_allocated += 1
        return len(self._blocks) - 1

    def read_block(self, block_id: int) -> List[object]:
        """Read a block from disk (counts one read I/O)."""
        if not 0 <= block_id < len(self._blocks):
            raise IndexError("unknown block id %d" % block_id)
        self.stats.block_reads += 1
        return list(self._blocks[block_id])

    def new_file(self) -> "ExternalFile":
        """An empty external file backed by this storage."""
        return ExternalFile(self)

    def file_from_records(self, records: Iterable[object]) -> "ExternalFile":
        """Materialise a file from an in-memory iterable (counts the write I/Os)."""
        out = self.new_file()
        with out.writer() as writer:
            for record in records:
                writer.append(record)
        return out


class _FileWriter:
    """Buffered writer that flushes full blocks to the backing storage."""

    def __init__(self, file: "ExternalFile"):
        self._file = file
        self._buffer: List[object] = []
        self._closed = False

    def append(self, record: object) -> None:
        if self._closed:
            raise RuntimeError("writer already closed")
        self._buffer.append(record)
        if len(self._buffer) == self._file.storage.block_size:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            block_id = self._file.storage.allocate_block(self._buffer)
            self._file._block_ids.append(block_id)
            self._file._length += len(self._buffer)
            self._buffer = []

    def close(self) -> None:
        if not self._closed:
            self._flush()
            self._closed = True

    def __enter__(self) -> "_FileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ExternalFile:
    """A sequence of records stored block by block on a :class:`BlockStorage`."""

    def __init__(self, storage: BlockStorage):
        self.storage = storage
        self._block_ids: List[int] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def block_count(self) -> int:
        return len(self._block_ids)

    def writer(self) -> _FileWriter:
        """A buffered appender; use as a context manager so partial blocks flush."""
        return _FileWriter(self)

    def scan(self) -> Iterator[object]:
        """Stream all records front to back, one block read per block."""
        for block_id in self._block_ids:
            for record in self.storage.read_block(block_id):
                yield record

    def scan_blocks(self) -> Iterator[List[object]]:
        """Stream whole blocks (used by algorithms that work block-at-a-time)."""
        for block_id in self._block_ids:
            yield self.storage.read_block(block_id)

    def read_all(self) -> List[object]:
        """Read the whole file into memory, charging the memory budget."""
        self.storage.borrow_memory(self._length)
        try:
            return list(self.scan())
        except Exception:
            self.storage.release_memory(self._length)
            raise
