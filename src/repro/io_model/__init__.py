"""External-memory (I/O model) substrate and external MaxRS algorithms.

The MaxRS problem "has been extensively studied in the I/O-model"
[CCT12, CCT14, THCC13] (Section 1.6 of the paper).  The authors' testbeds for
that line of work are real disks; this package substitutes a *simulated*
two-level memory hierarchy so the I/O behaviour of external MaxRS algorithms
can be reproduced and measured on a laptop (see DESIGN.md, substitution
notes):

* :mod:`repro.io_model.blocks` -- the simulated disk: block-addressed
  storage with read/write counters, external files made of fixed-size blocks,
  and an explicit internal-memory budget whose violation raises
  :class:`MemoryBudgetExceeded` (failure injection for tests).
* :mod:`repro.io_model.external_sort` -- multiway external merge sort, the
  workhorse whose ``O((n/B) log_{M/B}(n/B))`` I/O cost dominates the external
  MaxRS algorithms.
* :mod:`repro.io_model.external_maxrs` -- external MaxRS on the real line
  (sort + synchronized scans) and for axis-aligned rectangles
  (sort + sweep), plus the quadratic nested-scan baseline they are compared
  against in experiment E12.
"""

from .blocks import (
    BlockStorage,
    ExternalFile,
    IOStatistics,
    MemoryBudgetExceeded,
)
from .external_sort import external_merge_sort
from .external_maxrs import (
    external_maxrs_interval,
    external_maxrs_interval_nested_scan,
    external_maxrs_rectangle,
)

__all__ = [
    "IOStatistics",
    "BlockStorage",
    "ExternalFile",
    "MemoryBudgetExceeded",
    "external_merge_sort",
    "external_maxrs_interval",
    "external_maxrs_interval_nested_scan",
    "external_maxrs_rectangle",
]
