"""Exact MaxRS baselines.

These are the algorithms the paper compares against (or builds on):

* :mod:`repro.exact.interval1d` -- exact MaxRS for a fixed-length interval on
  the real line; the oracle used by the batched MaxRS lower-bound reduction
  (Section 5).
* :mod:`repro.exact.rectangle2d` -- the classical Imai--Asano /
  Nandy--Bhattacharya ``O(n log n)`` sweep for axis-aligned rectangles
  [IA83, NB95].
* :mod:`repro.exact.disk2d` -- exact disk MaxRS by angular sweep, the
  Chazelle--Lee style ``O(n^2 log n)`` baseline [CL86].
* :mod:`repro.exact.colored_disk` -- the "straightforward ``O(n^2 log n)``"
  exact algorithm for colored disk MaxRS mentioned in Section 1.5, used as the
  correctness oracle for Technique 2.
* :mod:`repro.exact.box3d` -- exact box MaxRS in R^3 via a z-slab sweep (the
  simpler stand-in for the [Cha10] baseline) plus a d-dimensional brute
  force.
* :mod:`repro.exact.bruteforce` -- tiny brute-force evaluators used only in
  tests and sanity checks.
"""

from .interval1d import maxrs_interval_bruteforce, maxrs_interval_exact
from .rectangle2d import maxrs_rectangle_exact
from .disk2d import maxrs_disk_exact
from .colored_disk import colored_maxrs_disk_sweep
from .colored_rectangle import colored_maxrs_interval_exact, colored_maxrs_rectangle_exact
from .box3d import maxrs_box3d_exact, maxrs_box_bruteforce
from .bruteforce import colored_maxrs_disk_bruteforce, maxrs_disk_bruteforce

__all__ = [
    "maxrs_interval_exact",
    "maxrs_interval_bruteforce",
    "maxrs_rectangle_exact",
    "maxrs_disk_exact",
    "maxrs_box3d_exact",
    "maxrs_box_bruteforce",
    "colored_maxrs_disk_sweep",
    "colored_maxrs_rectangle_exact",
    "colored_maxrs_interval_exact",
    "maxrs_disk_bruteforce",
    "colored_maxrs_disk_bruteforce",
]
