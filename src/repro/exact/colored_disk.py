"""Exact colored disk MaxRS by angular sweep -- the ``O(n^2 log n)`` baseline.

Section 1.5 of the paper notes that colored disk MaxRS admits a
"straightforward ``O(n^2 log n)`` time algorithm"; this module is that
algorithm.  It is the correctness oracle against which both Technique 1
(Theorem 1.5) and Technique 2 (Theorems 4.6 and 1.6) are validated, and the
baseline for experiments E4, E5 and E10.

As in :mod:`repro.exact.disk2d`, a point of maximum *colored* depth can be
found on the boundary circle of one of the disks (closed disks, general
position).  Sweeping circle ``C_i`` we maintain, per color, the number of
disks of that color covering the moving boundary point; the colored depth is
the number of colors whose counter is positive.  The pivot disk's own color is
modelled as a full-circle arc so colors are never double counted.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core._inputs import normalize_colored
from ..core.result import MaxRSResult
from ..kernels import get_kernel
from .disk2d import TWO_PI, _split_interval, circle_cover_events

__all__ = ["colored_maxrs_disk_sweep", "colored_depth_on_circle"]


def colored_depth_on_circle(
    pivot: Tuple[float, float],
    radius: float,
    coords: Sequence[Tuple[float, float]],
    colors: Sequence[Hashable],
    pivot_color: Hashable,
) -> Tuple[int, float]:
    """Maximum colored depth over the boundary circle of ``disk(pivot, radius)``.

    Returns ``(depth, angle)`` where ``angle`` locates a boundary point
    attaining the maximum.  ``coords``/``colors`` list the *other* disks; the
    pivot's own color is counted via an implicit full-circle arc.
    """
    always_covered: Dict[Hashable, int] = defaultdict(int)
    always_covered[pivot_color] += 1
    events: List[Tuple[float, int, Hashable]] = []
    for center, color in zip(coords, colors):
        cover = circle_cover_events(pivot, radius, center)
        if cover is None:
            continue
        start, end = cover
        if (start, end) == (0.0, TWO_PI):
            always_covered[color] += 1
            continue
        for lo, hi in _split_interval(start, end):
            events.append((lo, 0, color))
            events.append((hi, 1, color))

    counters: Dict[Hashable, int] = defaultdict(int, always_covered)
    distinct = sum(1 for c in counters.values() if c > 0)
    best_depth = distinct
    best_angle = 0.0
    events.sort(key=lambda e: (e[0], e[1]))
    for angle, kind, color in events:
        if kind == 0:
            counters[color] += 1
            if counters[color] == 1:
                distinct += 1
                if distinct > best_depth:
                    best_depth = distinct
                    best_angle = angle
        else:
            counters[color] -= 1
            if counters[color] == 0:
                distinct -= 1
    return best_depth, best_angle


def colored_maxrs_disk_sweep(
    points: Sequence,
    radius: float = 1.0,
    *,
    colors: Optional[Sequence[Hashable]] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """Exact colored disk MaxRS (worst-case ``O(n^2 log n)`` angular sweep).

    ``center`` of the result is the optimal disk center; ``value`` is the
    number of distinct colors it covers.  ``backend`` selects the kernel
    backend generating the pairwise disk-intersection candidates
    (:mod:`repro.kernels`); only disks within ``2 * radius`` of a pivot can
    cover its circle, so the sweep is quadratic only in the local density.
    The per-circle color counting itself is the pure-Python reference loop
    on every backend.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    coords, color_list, dim = normalize_colored(points, colors)
    if coords and dim != 2:
        raise ValueError("colored_maxrs_disk_sweep expects points in the plane")
    if not coords:
        return MaxRSResult(value=0, center=None, shape="ball", exact=True,
                           meta={"radius": radius, "n": 0})

    candidates = get_kernel(backend, "disk_neighbor_candidates", len(coords))(coords, radius)
    best_value = -1
    best_center: Optional[Tuple[float, float]] = None
    for i, pivot in enumerate(coords):
        others = [coords[j] for j in candidates[i]]
        other_colors = [color_list[j] for j in candidates[i]]
        depth, angle = colored_depth_on_circle(pivot, radius, others, other_colors, color_list[i])
        if depth > best_value:
            best_value = depth
            best_center = (
                pivot[0] + radius * math.cos(angle),
                pivot[1] + radius * math.sin(angle),
            )

    return MaxRSResult(
        value=best_value,
        center=best_center,
        shape="ball",
        exact=True,
        meta={"radius": radius, "n": len(coords), "colors": len(set(color_list))},
    )
