"""Exact (uncolored) disk MaxRS in the plane by angular sweep.

The Chazelle--Lee style baseline [CL86]: in the dual setting every input
point becomes a disk of radius ``r`` and we seek the point of maximum weighted
depth.  For non-negative weights, a deepest point can always be found on the
boundary circle of one of the disks, so it suffices to sweep each circle
``C_i`` and maintain the total weight of the other disks covering the moving
boundary point.  Another disk ``D_j`` covers an arc of ``C_i`` iff
``dist(p_i, p_j) <= 2r``; the arc is centered at the direction of ``p_j`` and
has angular half-width ``arccos(dist / (2r))``.

Running time is ``O(n^2 log n)`` in the worst case -- a log factor above the
original ``O(n^2)`` algorithm, which is irrelevant for its role here as an
exactness oracle and baseline (see DESIGN.md, substitutions).  Both kernel
backends prune the pairwise interaction tests with a uniform grid
(:func:`repro.kernels.python_backend.disk_neighbor_candidates`), so the
effective cost is quadratic only in the local density; the ``numpy`` backend
additionally vectorises each circle's angular sweep (see
:mod:`repro.kernels`).

The sweep-geometry helpers (:func:`circle_cover_events` and friends) live in
:mod:`repro.kernels.python_backend` and are re-exported here for backwards
compatibility.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core._inputs import normalize_weighted
from ..core.result import MaxRSResult
from ..kernels import get_kernel, resolve_backend
from ..kernels.python_backend import (  # noqa: F401  (re-exported API)
    TWO_PI,
    _split_interval,
    _sweep_circle,
    circle_cover_events,
)

__all__ = ["maxrs_disk_exact", "circle_cover_events"]


def maxrs_disk_exact(
    points: Sequence,
    radius: float = 1.0,
    *,
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """Optimal placement of a disk of the given radius (exact).

    Weights must be non-negative.  ``center`` of the result is the optimal
    disk center.  ``backend`` selects the kernel implementation of the
    angular sweep (``"python"``, ``"numpy"`` or ``"auto"``; see
    :mod:`repro.kernels`).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    # prefer_arrays: ndarray inputs (shared-memory shard slices) stay arrays
    # all the way into the kernel -- but only when this call resolves to the
    # NumPy kernel; the pure-Python sweep expects tuple lists.
    prefer_arrays = (
        isinstance(points, np.ndarray) and points.ndim == 2
        and resolve_backend(backend, len(points), "disk_sweep") == "numpy")
    coords, weight_list, dim = normalize_weighted(points, weights,
                                                  require_positive=False,
                                                  prefer_arrays=prefer_arrays)
    if len(coords) and dim != 2:
        raise ValueError("maxrs_disk_exact expects points in the plane")
    negative = ((weight_list < 0).any() if isinstance(weight_list, np.ndarray)
                else any(w < 0 for w in weight_list))
    if negative:
        raise ValueError("maxrs_disk_exact requires non-negative weights")
    if not len(coords):
        return MaxRSResult(value=0.0, center=None, shape="ball", exact=True,
                           meta={"radius": radius, "n": 0})

    sweep = get_kernel(backend, "disk_sweep", len(coords))
    best_value, best_center = sweep(coords, weight_list, radius)

    return MaxRSResult(
        value=best_value,
        center=best_center,
        shape="ball",
        exact=True,
        meta={"radius": radius, "n": len(coords)},
    )
