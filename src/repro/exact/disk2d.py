"""Exact (uncolored) disk MaxRS in the plane by angular sweep.

The Chazelle--Lee style baseline [CL86]: in the dual setting every input
point becomes a disk of radius ``r`` and we seek the point of maximum weighted
depth.  For non-negative weights, a deepest point can always be found on the
boundary circle of one of the disks, so it suffices to sweep each circle
``C_i`` and maintain the total weight of the other disks covering the moving
boundary point.  Another disk ``D_j`` covers an arc of ``C_i`` iff
``dist(p_i, p_j) <= 2r``; the arc is centered at the direction of ``p_j`` and
has angular half-width ``arccos(dist / (2r))``.

Running time is ``O(n^2 log n)`` -- a log factor above the original
``O(n^2)`` algorithm, which is irrelevant for its role here as an exactness
oracle and baseline (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core._inputs import normalize_weighted
from ..core.result import MaxRSResult

__all__ = ["maxrs_disk_exact", "circle_cover_events"]

TWO_PI = 2.0 * math.pi


def circle_cover_events(
    center: Tuple[float, float],
    radius: float,
    other: Tuple[float, float],
) -> Optional[Tuple[float, float]]:
    """Angular interval of ``circle(center, radius)`` covered by ``disk(other, radius)``.

    Returns ``(start, end)`` angles in ``[0, 2*pi)`` (the interval may wrap
    around), ``(0, 2*pi)`` when the whole circle is covered, or ``None`` when
    the two disks are too far apart to interact.
    """
    dx = other[0] - center[0]
    dy = other[1] - center[1]
    dist = math.hypot(dx, dy)
    if dist > 2.0 * radius + 1e-12:
        return None
    if dist <= 1e-12:
        return 0.0, TWO_PI
    ratio = min(1.0, dist / (2.0 * radius))
    half_width = math.acos(ratio)
    theta = math.atan2(dy, dx) % TWO_PI
    return (theta - half_width) % TWO_PI, (theta + half_width) % TWO_PI


def _split_interval(start: float, end: float) -> List[Tuple[float, float]]:
    """Split a (possibly wrapping) angular interval into non-wrapping pieces."""
    if end >= start:
        return [(start, end)]
    return [(start, TWO_PI), (0.0, end)]


def _sweep_circle(
    base_weight: float,
    intervals: List[Tuple[float, float, float]],
) -> Tuple[float, float]:
    """Max of ``base_weight + sum of interval weights covering angle`` over the circle.

    ``intervals`` holds ``(start, end, weight)`` with ``start <= end`` (already
    split at the wrap-around).  Returns ``(best value, best angle)``.
    """
    if not intervals:
        return base_weight, 0.0
    events: List[Tuple[float, int, float]] = []
    for start, end, weight in intervals:
        events.append((start, 0, weight))   # type 0: arc opens (closed endpoint)
        events.append((end, 1, weight))     # type 1: arc closes
    events.sort(key=lambda e: (e[0], e[1]))
    running = base_weight
    best_value = base_weight
    best_angle = 0.0
    for angle, kind, weight in events:
        if kind == 0:
            running += weight
            if running > best_value:
                best_value = running
                best_angle = angle
        else:
            running -= weight
    return best_value, best_angle


def maxrs_disk_exact(
    points: Sequence,
    radius: float = 1.0,
    *,
    weights: Optional[Sequence[float]] = None,
) -> MaxRSResult:
    """Optimal placement of a disk of the given radius (exact, ``O(n^2 log n)``).

    Weights must be non-negative.  ``center`` of the result is the optimal
    disk center.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if coords and dim != 2:
        raise ValueError("maxrs_disk_exact expects points in the plane")
    if any(w < 0 for w in weight_list):
        raise ValueError("maxrs_disk_exact requires non-negative weights")
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="ball", exact=True,
                           meta={"radius": radius, "n": 0})

    best_value = -math.inf
    best_center: Optional[Tuple[float, float]] = None
    for i, pivot in enumerate(coords):
        base = weight_list[i]
        intervals: List[Tuple[float, float, float]] = []
        for j, other in enumerate(coords):
            if i == j:
                continue
            cover = circle_cover_events(pivot, radius, other)
            if cover is None:
                continue
            start, end = cover
            if (start, end) == (0.0, TWO_PI):
                base += weight_list[j]
                continue
            for lo, hi in _split_interval(start, end):
                intervals.append((lo, hi, weight_list[j]))
        value, angle = _sweep_circle(base, intervals)
        if value > best_value:
            best_value = value
            best_center = (
                pivot[0] + radius * math.cos(angle),
                pivot[1] + radius * math.sin(angle),
            )

    return MaxRSResult(
        value=best_value,
        center=best_center,
        shape="ball",
        exact=True,
        meta={"radius": radius, "n": len(coords)},
    )
