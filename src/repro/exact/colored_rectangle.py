"""Exact colored MaxRS for axis-aligned rectangles (the [ZGH+22] baseline).

Section 1.3 of the paper notes that prior work on colored MaxRS was limited
to axis-aligned rectangles in the plane [ZGH+22], where an exact
``O(n log n)`` algorithm exists; the paper's contribution is the extension to
``d``-balls.  To make the comparison available, this module provides an exact
colored rectangle solver with a simpler ``O(n^2 log n)`` sweep: for every
candidate left edge ``a = x_i - width`` the points with ``x in [a, a + width]``
are projected onto the y-axis and a sliding window of height ``height``
maximises the number of distinct colors (a one-dimensional colored MaxRS
solved with per-color counters).

The same one-dimensional routine is exported as
:func:`colored_maxrs_interval_exact` -- colored MaxRS on the real line.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core._inputs import normalize_colored
from ..core.result import MaxRSResult

__all__ = ["colored_maxrs_interval_exact", "colored_maxrs_rectangle_exact"]


def _best_colored_window(
    values: Sequence[float], colors: Sequence[Hashable], length: float
) -> Tuple[int, float]:
    """Maximum number of distinct colors coverable by a closed window of the given length.

    Returns ``(count, window start)``.  Runs in ``O(n log n)`` via a
    two-pointer sweep over the sorted values with per-color counters.
    """
    if not values:
        return 0, 0.0
    order = sorted(range(len(values)), key=lambda i: values[i])
    counters: Dict[Hashable, int] = defaultdict(int)
    distinct = 0
    best_count = 0
    best_start = values[order[0]]
    left = 0
    for right in range(len(order)):
        color = colors[order[right]]
        counters[color] += 1
        if counters[color] == 1:
            distinct += 1
        # Shrink from the left until the window fits inside ``length``.
        while values[order[right]] - values[order[left]] > length + 1e-12:
            left_color = colors[order[left]]
            counters[left_color] -= 1
            if counters[left_color] == 0:
                distinct -= 1
            left += 1
        if distinct > best_count:
            best_count = distinct
            best_start = values[order[right]] - length
    return best_count, best_start


def colored_maxrs_interval_exact(
    points: Sequence,
    length: float,
    *,
    colors: Optional[Sequence[Hashable]] = None,
) -> MaxRSResult:
    """Exact colored MaxRS on the real line: cover the most distinct colors.

    ``points`` are 1-d coordinates (floats, 1-tuples or ``ColoredPoint``);
    ``length`` is the interval length.  Runs in ``O(n log n)``.
    """
    if length < 0:
        raise ValueError("interval length must be non-negative")
    prepared = [(float(p),) if isinstance(p, (int, float)) else p for p in points]
    coords, color_list, dim = normalize_colored(prepared, colors)
    if coords and dim != 1:
        raise ValueError("colored_maxrs_interval_exact expects points on the real line")
    if not coords:
        return MaxRSResult(value=0, center=None, shape="interval", exact=True,
                           meta={"length": length, "n": 0})
    xs = [c[0] for c in coords]
    count, start = _best_colored_window(xs, color_list, length)
    return MaxRSResult(
        value=count,
        center=(start,),
        shape="interval",
        exact=True,
        meta={"length": length, "n": len(xs), "colors": len(set(color_list))},
    )


def colored_maxrs_rectangle_exact(
    points: Sequence,
    width: float,
    height: float,
    *,
    colors: Optional[Sequence[Hashable]] = None,
) -> MaxRSResult:
    """Exact colored MaxRS for a ``width x height`` axis-aligned rectangle.

    For non-degenerate inputs an optimal rectangle can be shifted so its right
    edge passes through an input point, so it suffices to try the ``n``
    candidate left edges ``a = x_i - width`` and solve the induced
    one-dimensional colored problem on the y-coordinates; total time
    ``O(n^2 log n)``.  (The [ZGH+22] algorithm achieves ``O(n log n)``; this
    simpler baseline is exact and sufficient for comparison purposes --
    see DESIGN.md.)

    ``center`` of the result is the lower-left corner of an optimal rectangle.
    """
    if width <= 0 or height <= 0:
        raise ValueError("rectangle side lengths must be positive")
    coords, color_list, dim = normalize_colored(points, colors)
    if coords and dim != 2:
        raise ValueError("colored_maxrs_rectangle_exact expects points in the plane")
    if not coords:
        return MaxRSResult(value=0, center=None, shape="rectangle", exact=True,
                           meta={"width": width, "height": height, "n": 0})

    xs = [c[0] for c in coords]
    ys = [c[1] for c in coords]
    best_count = 0
    best_corner: Optional[Tuple[float, float]] = None
    for anchor_x in sorted(set(xs)):
        left = anchor_x - width
        in_slab = [i for i, x in enumerate(xs) if left - 1e-12 <= x <= anchor_x + 1e-12]
        if len(set(color_list[i] for i in in_slab)) <= best_count:
            continue
        slab_ys = [ys[i] for i in in_slab]
        slab_colors = [color_list[i] for i in in_slab]
        count, start = _best_colored_window(slab_ys, slab_colors, height)
        if count > best_count:
            best_count = count
            best_corner = (left, start)

    if best_corner is None:
        best_corner = (xs[0] - width, ys[0] - height)
        best_count = 1
    return MaxRSResult(
        value=best_count,
        center=best_corner,
        shape="rectangle",
        exact=True,
        meta={
            "width": width,
            "height": height,
            "n": len(coords),
            "colors": len(set(color_list)),
            "upper_right": (best_corner[0] + width, best_corner[1] + height),
        },
    )
