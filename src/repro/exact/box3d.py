"""Exact MaxRS for axis-aligned boxes in R^3 (and a d-dimensional brute force).

Section 1 of the paper cites the extension of exact box MaxRS to ``d >= 3``
[Cha10] with running time ``~O(n^{d/2})``.  That algorithm rests on Chan's
machinery for Klee's measure problem; re-implementing it robustly is out of
scope for this reproduction (see DESIGN.md), so this module provides the
standard simpler baselines instead:

* :func:`maxrs_box3d_exact` -- a sweep over the candidate bottom z-faces that
  reduces each slab to the planar Imai--Asano / Nandy--Bhattacharya sweep;
  ``O(n^2 log n)`` time, exact.
* :func:`maxrs_box_bruteforce` -- the ``O(n^{d+1})``-ish enumeration of
  candidate corners for any constant dimension, used as a cross-check on tiny
  instances.

Both serve as correctness oracles for the d >= 3 experiments and as the
"exact is polynomial but slow" comparison point of the approximate d-ball
algorithms (which is the regime Theorem 1.2 targets).
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Sequence, Tuple

from ..core._inputs import normalize_weighted
from ..core.result import MaxRSResult
from .rectangle2d import maxrs_rectangle_exact

__all__ = ["maxrs_box3d_exact", "maxrs_box_bruteforce"]

_EPS = 1e-9


def maxrs_box3d_exact(
    points: Sequence,
    side_lengths: Sequence[float],
    *,
    weights: Optional[Sequence[float]] = None,
) -> MaxRSResult:
    """Optimal placement of an axis-aligned box in R^3 (exact).

    Parameters
    ----------
    points:
        Points in R^3 (coordinate triples or ``WeightedPoint``).
    side_lengths:
        The box dimensions ``(wx, wy, wz)``; all must be positive.
    weights:
        Optional non-negative weights.

    Returns
    -------
    MaxRSResult
        ``center`` holds the lower corner ``(a, b, c)`` of an optimal box.

    Notes
    -----
    An optimal box can be shifted so its top z-face passes through an input
    point, so it suffices to try the ``n`` candidate bottom faces
    ``c = z_i - wz`` and solve the induced planar problem on the points whose
    z-coordinate falls in ``[c, c + wz]`` -- ``O(n^2 log n)`` total.
    """
    side_lengths = tuple(float(s) for s in side_lengths)
    if len(side_lengths) != 3 or any(s <= 0 for s in side_lengths):
        raise ValueError("side_lengths must be three positive numbers, got %r" % (side_lengths,))
    wx, wy, wz = side_lengths
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if any(w < 0 for w in weight_list):
        raise ValueError("maxrs_box3d_exact requires non-negative weights")
    if coords and dim != 3:
        raise ValueError("maxrs_box3d_exact expects points in R^3, got dim=%d" % dim)
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="box", exact=True,
                           meta={"side_lengths": side_lengths, "n": 0})

    zs = [c[2] for c in coords]
    best_value = -math.inf
    best_corner: Optional[Tuple[float, float, float]] = None
    for anchor_z in sorted(set(zs)):
        c = anchor_z - wz
        slab_indices = [i for i, z in enumerate(zs) if c - _EPS <= z <= anchor_z + _EPS]
        if not slab_indices:
            continue
        slab_weight = sum(weight_list[i] for i in slab_indices)
        if slab_weight <= best_value:
            continue
        slab_points = [(coords[i][0], coords[i][1]) for i in slab_indices]
        slab_weights = [weight_list[i] for i in slab_indices]
        planar = maxrs_rectangle_exact(slab_points, width=wx, height=wy, weights=slab_weights)
        if planar.center is not None and planar.value > best_value:
            best_value = planar.value
            best_corner = (planar.center[0], planar.center[1], c)

    return MaxRSResult(
        value=best_value,
        center=best_corner,
        shape="box",
        exact=True,
        meta={
            "side_lengths": side_lengths,
            "n": len(coords),
            "method": "z-slab sweep + planar sweep",
        },
    )


def maxrs_box_bruteforce(
    points: Sequence,
    side_lengths: Sequence[float],
    *,
    weights: Optional[Sequence[float]] = None,
) -> MaxRSResult:
    """Brute-force exact box MaxRS in any constant dimension.

    An optimal axis-aligned box can be translated until, in every dimension
    ``j``, its upper face passes through some input point; the candidate
    upper corners are therefore the ``n^d`` combinations of per-dimension
    input coordinates.  Intended only for tiny cross-check instances.
    """
    side_lengths = tuple(float(s) for s in side_lengths)
    if not side_lengths or any(s <= 0 for s in side_lengths):
        raise ValueError("side_lengths must be positive, got %r" % (side_lengths,))
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if any(w < 0 for w in weight_list):
        raise ValueError("maxrs_box_bruteforce requires non-negative weights")
    if coords and dim != len(side_lengths):
        raise ValueError(
            "side_lengths has %d entries but points have dimension %d"
            % (len(side_lengths), dim)
        )
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="box", exact=True,
                           meta={"side_lengths": side_lengths, "n": 0})

    per_dim_candidates: List[List[float]] = [
        sorted({c[j] for c in coords}) for j in range(dim)
    ]
    best_value = -math.inf
    best_lower: Optional[Tuple[float, ...]] = None
    for upper in itertools.product(*per_dim_candidates):
        lower = tuple(upper[j] - side_lengths[j] for j in range(dim))
        value = 0.0
        for coord, weight in zip(coords, weight_list):
            if all(lower[j] - _EPS <= coord[j] <= upper[j] + _EPS for j in range(dim)):
                value += weight
        if value > best_value:
            best_value = value
            best_lower = lower

    return MaxRSResult(
        value=best_value,
        center=best_lower,
        shape="box",
        exact=True,
        meta={"side_lengths": side_lengths, "n": len(coords), "method": "bruteforce"},
    )
