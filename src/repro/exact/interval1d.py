"""Exact MaxRS on the real line for a fixed-length interval.

Given weighted points on the line and an interval length ``L``, find the
placement ``[a, a + L]`` maximising the total weight of covered points.  The
sweep runs in ``O(n log n)`` and -- crucially for the Section 5.4 reduction --
supports *negative* weights (guard points) and the "place the interval far
away and cover nothing" option.

The objective ``f(a) = sum of w_i with a <= x_i <= a + L`` is piecewise
constant: it jumps up by ``w_i`` at ``a = x_i - L`` (inclusive, the interval
is closed) and down by ``w_i`` just after ``a = x_i``.  The sweep therefore
processes event coordinates in increasing order, applies all additions at a
coordinate, records a candidate, then applies the removals scheduled at the
same coordinate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core._inputs import normalize_weighted
from ..core.result import MaxRSResult
from ..kernels import get_kernel, resolve_backend

__all__ = ["maxrs_interval_exact", "maxrs_interval_bruteforce"]


def _to_1d(points: Sequence, weights: Optional[Sequence[float]],
           backend: Optional[str] = None) -> Tuple[List[float], List[float]]:
    """Accept 1-d coordinates given as floats, 1-tuples or WeightedPoints."""
    if (backend is not None
            and isinstance(points, np.ndarray) and points.ndim == 2
            and points.shape[1] == 1
            and resolve_backend(backend, len(points), "interval_sweep") == "numpy"):
        # Array fast path (shared-memory shard slices): validate vectorised
        # and hand the NumPy kernel the column itself.  The pure-Python
        # reference sweep keeps receiving plain lists.
        coords, weight_arr, _ = normalize_weighted(points, weights,
                                                   require_positive=False,
                                                   prefer_arrays=True)
        return coords[:, 0], weight_arr
    prepared = []
    for p in points:
        if isinstance(p, (int, float)):
            prepared.append((float(p),))
        else:
            prepared.append(p)
    coords, weight_list, dim = normalize_weighted(prepared, weights, require_positive=False)
    if coords and dim != 1:
        raise ValueError("maxrs_interval_exact expects points on the real line")
    return [c[0] for c in coords], weight_list


def maxrs_interval_exact(
    points: Sequence,
    length: float,
    *,
    weights: Optional[Sequence[float]] = None,
    allow_empty: bool = True,
    backend: str = "auto",
) -> MaxRSResult:
    """Optimal placement of a closed interval of the given length (exact).

    Parameters
    ----------
    points:
        Points on the real line (floats, 1-tuples or ``WeightedPoint``).
    length:
        Length of the query interval; must be non-negative.
    weights:
        Optional weights; may be negative (needed by the Section 5.4
        reduction's guard points).
    allow_empty:
        When ``True`` the value never drops below 0: placing the interval far
        from every point is a legal placement covering nothing.
    backend:
        Kernel backend running the sweep: ``"python"`` (reference loop),
        ``"numpy"`` (vectorised prefix sums) or ``"auto"`` (size- and
        environment-based selection; see :mod:`repro.kernels`).

    Returns
    -------
    MaxRSResult
        ``center`` holds the left endpoint of the optimal interval (``None``
        only for empty input with ``allow_empty=False`` disabled semantics).
    """
    if length < 0:
        raise ValueError("interval length must be non-negative")
    xs, ws = _to_1d(points, weights, backend)
    if not len(xs):
        return MaxRSResult(value=0.0, center=None, shape="interval", exact=True,
                           meta={"length": length, "n": 0})

    sweep = get_kernel(backend, "interval_sweep", len(xs))
    best_value, best_left = sweep(xs, ws, length, allow_empty)

    if best_left is None:
        # Either every placement is negative (and covering nothing is allowed)
        # or all weights are zero; report an interval to the right of all points.
        best_left = max(xs) + 1.0
        best_value = 0.0 if allow_empty else best_value
    return MaxRSResult(
        value=best_value,
        center=(best_left,),
        shape="interval",
        exact=True,
        meta={"length": length, "n": len(xs), "right_endpoint": best_left + length},
    )


def maxrs_interval_bruteforce(
    points: Sequence,
    length: float,
    *,
    weights: Optional[Sequence[float]] = None,
    allow_empty: bool = True,
) -> float:
    """O(n^2) reference evaluator used to validate the sweep in tests.

    Evaluates the objective at every breakpoint, at midpoints between
    consecutive breakpoints and outside the point range, and returns the best
    value found.
    """
    xs, ws = _to_1d(points, weights)
    if not xs:
        return 0.0
    breakpoints = sorted({x - length for x in xs} | {x for x in xs})
    candidates = list(breakpoints)
    candidates.extend(
        (breakpoints[i] + breakpoints[i + 1]) / 2.0 for i in range(len(breakpoints) - 1)
    )
    candidates.append(breakpoints[0] - 1.0)
    candidates.append(breakpoints[-1] + 1.0)

    def value_at(a: float) -> float:
        return sum(w for x, w in zip(xs, ws) if a - 1e-12 <= x <= a + length + 1e-12)

    best = max(value_at(a) for a in candidates)
    if allow_empty:
        best = max(best, 0.0)
    return best
