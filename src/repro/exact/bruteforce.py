"""Small brute-force evaluators used as independent oracles in tests.

For disks in the plane the classical candidate argument says an optimal
center can be chosen among (a) the input points themselves and (b) the
intersection points of pairs of circles of radius ``r`` centered at input
points.  Enumerating all ``O(n^2)`` candidates and evaluating the depth of
each in ``O(n)`` costs ``O(n^3)`` -- far too slow for real use, but a
completely independent implementation against which both the angular sweep
baselines and the arrangement-based Technique 2 algorithms are validated.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Sequence, Tuple

from ..core._inputs import normalize_colored, normalize_weighted
from ..core.depth import colored_depth, weighted_depth

__all__ = [
    "circle_circle_intersections",
    "disk_candidate_centers",
    "maxrs_disk_bruteforce",
    "colored_maxrs_disk_bruteforce",
]


def circle_circle_intersections(
    a: Tuple[float, float],
    b: Tuple[float, float],
    radius: float,
) -> List[Tuple[float, float]]:
    """Intersection points of two circles of equal ``radius`` centered at ``a`` and ``b``."""
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    dist = math.hypot(dx, dy)
    if dist <= 1e-12 or dist > 2.0 * radius:
        return []
    half = dist / 2.0
    height_sq = radius * radius - half * half
    if height_sq < 0:
        return []
    height = math.sqrt(max(0.0, height_sq))
    mid = (a[0] + dx / 2.0, a[1] + dy / 2.0)
    ux, uy = dx / dist, dy / dist
    return [
        (mid[0] - uy * height, mid[1] + ux * height),
        (mid[0] + uy * height, mid[1] - ux * height),
    ]


def disk_candidate_centers(
    coords: Sequence[Tuple[float, float]], radius: float
) -> List[Tuple[float, float]]:
    """Candidate optimal centers: input points plus pairwise circle intersections."""
    candidates = [tuple(c) for c in coords]
    n = len(coords)
    for i in range(n):
        for j in range(i + 1, n):
            candidates.extend(circle_circle_intersections(coords[i], coords[j], radius))
    return candidates


def maxrs_disk_bruteforce(
    points: Sequence,
    radius: float = 1.0,
    *,
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Exact weighted disk MaxRS value by candidate enumeration (testing only)."""
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if not coords:
        return 0.0
    if dim != 2:
        raise ValueError("brute-force disk MaxRS is only implemented in the plane")
    best = 0.0
    for candidate in disk_candidate_centers(coords, radius):
        best = max(best, weighted_depth(candidate, coords, weight_list, radius))
    return best


def colored_maxrs_disk_bruteforce(
    points: Sequence,
    radius: float = 1.0,
    *,
    colors: Optional[Sequence[Hashable]] = None,
) -> int:
    """Exact colored disk MaxRS value by candidate enumeration (testing only)."""
    coords, color_list, dim = normalize_colored(points, colors)
    if not coords:
        return 0
    if dim != 2:
        raise ValueError("brute-force colored disk MaxRS is only implemented in the plane")
    best = 0
    for candidate in disk_candidate_centers(coords, radius):
        best = max(best, colored_depth(candidate, coords, color_list, radius))
    return best
