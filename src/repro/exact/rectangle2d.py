"""Exact MaxRS for axis-aligned rectangles in the plane (Imai--Asano / Nandy--Bhattacharya).

The classical ``O(n log n)`` sweepline algorithm [IA83, NB95]: a rectangle of
width ``W`` and height ``H`` placed with lower-left corner ``(a, b)`` covers
the point ``(x, y)`` iff ``a in [x - W, x]`` and ``b in [y - H, y]``, so the
problem becomes computing the deepest point in an arrangement of ``n``
weighted boxes in the ``(a, b)`` parameter plane.  Sweeping ``a`` from left to
right and maintaining the weighted coverage over ``b`` in a segment tree with
range-add / global-max gives the optimum.

For non-negative weights an optimal rectangle can always be shifted so that
its right edge and top edge each pass through an input point, hence it
suffices to evaluate candidate corners ``a = x_j - W`` and ``b = y_i - H``;
the implementation relies on this and therefore requires non-negative weights.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import List, Optional, Sequence, Tuple

from ..core._inputs import normalize_weighted
from ..core.result import MaxRSResult
from ..structures.segment_tree import MaxAddSegmentTree

__all__ = ["maxrs_rectangle_exact"]


def maxrs_rectangle_exact(
    points: Sequence,
    width: float,
    height: float,
    *,
    weights: Optional[Sequence[float]] = None,
) -> MaxRSResult:
    """Optimal placement of a ``width x height`` axis-aligned rectangle (exact).

    Parameters
    ----------
    points:
        Points in the plane (coordinate pairs or ``WeightedPoint``).
    width, height:
        Side lengths of the query rectangle; both must be positive.
    weights:
        Optional non-negative weights.

    Returns
    -------
    MaxRSResult
        ``center`` holds the lower-left corner ``(a, b)`` of an optimal
        rectangle; ``meta["upper_right"]`` holds the opposite corner.
    """
    if width <= 0 or height <= 0:
        raise ValueError("rectangle side lengths must be positive")
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if coords and dim != 2:
        raise ValueError("maxrs_rectangle_exact expects points in the plane")
    if any(w < 0 for w in weight_list):
        raise ValueError("maxrs_rectangle_exact requires non-negative weights")
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="rectangle", exact=True,
                           meta={"width": width, "height": height, "n": 0})

    xs = [c[0] for c in coords]
    ys = [c[1] for c in coords]

    # Candidate b-coordinates: the bottom edge can be slid up until the top
    # edge touches a point, i.e. b = y_i - height.
    b_candidates = sorted({y - height for y in ys})
    tree = MaxAddSegmentTree(len(b_candidates))

    def b_range(y: float) -> Tuple[int, int]:
        """Closed candidate-index range of b values for which the point at y is covered."""
        lo = bisect_left(b_candidates, y - height - 1e-9)
        hi = bisect_right(b_candidates, y + 1e-9) - 1
        return lo, hi

    # Sweep events on a: insert at a = x - width, remove after a = x.
    insert_at = defaultdict(list)
    remove_at = defaultdict(list)
    for i, (x, y) in enumerate(coords):
        insert_at[x - width].append(i)
        remove_at[x].append(i)

    coordinates = sorted(set(insert_at) | set(remove_at))
    best_value = 0.0
    best_corner: Optional[Tuple[float, float]] = None
    for a in coordinates:
        for i in insert_at.get(a, ()):  # insertions first: the interval is closed
            lo, hi = b_range(ys[i])
            tree.add(lo, hi, weight_list[i])
        if a in insert_at:
            value, arg = tree.max_with_argmax()
            if value > best_value or best_corner is None:
                best_value = value
                best_corner = (a, b_candidates[arg])
        for i in remove_at.get(a, ()):
            lo, hi = b_range(ys[i])
            tree.add(lo, hi, -weight_list[i])

    if best_corner is None:
        best_corner = (xs[0] - width, ys[0] - height)
        best_value = weight_list[0]
    return MaxRSResult(
        value=best_value,
        center=best_corner,
        shape="rectangle",
        exact=True,
        meta={
            "width": width,
            "height": height,
            "n": len(coords),
            "upper_right": (best_corner[0] + width, best_corner[1] + height),
        },
    )
