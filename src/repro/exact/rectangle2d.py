"""Exact MaxRS for axis-aligned rectangles in the plane (Imai--Asano / Nandy--Bhattacharya).

The classical ``O(n log n)`` sweepline algorithm [IA83, NB95]: a rectangle of
width ``W`` and height ``H`` placed with lower-left corner ``(a, b)`` covers
the point ``(x, y)`` iff ``a in [x - W, x]`` and ``b in [y - H, y]``, so the
problem becomes computing the deepest point in an arrangement of ``n``
weighted boxes in the ``(a, b)`` parameter plane.  Sweeping ``a`` from left to
right and maintaining the weighted coverage over ``b`` in a segment tree with
range-add / global-max gives the optimum.

For non-negative weights an optimal rectangle can always be shifted so that
its right edge and top edge each pass through an input point, hence it
suffices to evaluate candidate corners ``a = x_j - W`` and ``b = y_i - H``;
the implementation relies on this and therefore requires non-negative weights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core._inputs import normalize_weighted
from ..core.result import MaxRSResult
from ..kernels import get_kernel, resolve_backend

__all__ = ["maxrs_rectangle_exact"]


def maxrs_rectangle_exact(
    points: Sequence,
    width: float,
    height: float,
    *,
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """Optimal placement of a ``width x height`` axis-aligned rectangle (exact).

    Parameters
    ----------
    points:
        Points in the plane (coordinate pairs or ``WeightedPoint``).
    width, height:
        Side lengths of the query rectangle; both must be positive.
    weights:
        Optional non-negative weights.
    backend:
        Kernel backend running the sweep: ``"python"`` (segment-tree
        reference), ``"numpy"`` (chunked prefix-bound sweep) or ``"auto"``
        (size- and environment-based selection; see :mod:`repro.kernels`).

    Returns
    -------
    MaxRSResult
        ``center`` holds the lower-left corner ``(a, b)`` of an optimal
        rectangle; ``meta["upper_right"]`` holds the opposite corner.
    """
    if width <= 0 or height <= 0:
        raise ValueError("rectangle side lengths must be positive")
    # prefer_arrays: a 2-d ndarray input (e.g. a shared-memory shard slice,
    # repro.parallel) skips the per-point normalisation loops and flows to
    # the kernel as-is -- but only when this call resolves to the NumPy
    # kernel; the pure-Python reference loops expect tuple lists.
    prefer_arrays = (
        isinstance(points, np.ndarray) and points.ndim == 2
        and resolve_backend(backend, len(points), "rectangle_sweep") == "numpy")
    coords, weight_list, dim = normalize_weighted(points, weights,
                                                  require_positive=False,
                                                  prefer_arrays=prefer_arrays)
    if len(coords) and dim != 2:
        raise ValueError("maxrs_rectangle_exact expects points in the plane")
    negative = ((weight_list < 0).any() if isinstance(weight_list, np.ndarray)
                else any(w < 0 for w in weight_list))
    if negative:
        raise ValueError("maxrs_rectangle_exact requires non-negative weights")
    if not len(coords):
        return MaxRSResult(value=0.0, center=None, shape="rectangle", exact=True,
                           meta={"width": width, "height": height, "n": 0})

    sweep = get_kernel(backend, "rectangle_sweep", len(coords))
    best_value, best_corner = sweep(coords, weight_list, width, height)
    return MaxRSResult(
        value=best_value,
        center=best_corner,
        shape="rectangle",
        exact=True,
        meta={
            "width": width,
            "height": height,
            "n": len(coords),
            "upper_right": (best_corner[0] + width, best_corner[1] + height),
        },
    )
