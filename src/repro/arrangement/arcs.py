"""x-monotone circular arcs.

Section 4.1 of the paper decomposes each union boundary into x-monotone
circular arcs (every vertical line meets such an arc at most once) before
building the trapezoidal map.  An arc is stored as the portion of either the
upper or the lower half of a circle between two x-coordinates, together with
an arbitrary payload (the color of the union region it bounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

__all__ = ["CircularArc", "circle_intersections", "arc_intersections"]

UPPER = "upper"
LOWER = "lower"


@dataclass(frozen=True)
class CircularArc:
    """An x-monotone arc of the circle centered at ``(cx, cy)`` with radius ``radius``.

    ``side`` selects the upper (``y >= cy``) or lower (``y <= cy``) half of the
    circle; ``x_lo <= x_hi`` bound the arc horizontally.  ``color`` identifies
    which union region's boundary the arc belongs to.
    """

    cx: float
    cy: float
    radius: float
    side: str
    x_lo: float
    x_hi: float
    color: Hashable = 0

    def __post_init__(self):
        if self.side not in (UPPER, LOWER):
            raise ValueError("arc side must be 'upper' or 'lower'")
        if self.radius <= 0:
            raise ValueError("arc radius must be positive")
        if self.x_lo > self.x_hi + 1e-12:
            raise ValueError("arc x_lo must not exceed x_hi")

    def spans_x(self, x: float, *, strict: bool = True) -> bool:
        """Whether the arc's x-range contains ``x`` (strictly, by default)."""
        if strict:
            return self.x_lo < x < self.x_hi
        return self.x_lo - 1e-12 <= x <= self.x_hi + 1e-12

    def y_at(self, x: float) -> float:
        """The y-coordinate of the arc at horizontal position ``x``.

        ``x`` is clamped into the circle's horizontal extent to guard against
        floating-point drift at the arc endpoints.
        """
        dx = x - self.cx
        inside = self.radius * self.radius - dx * dx
        if inside < 0:
            inside = 0.0
        offset = math.sqrt(inside)
        return self.cy + offset if self.side == UPPER else self.cy - offset

    @property
    def left_endpoint(self) -> Tuple[float, float]:
        return (self.x_lo, self.y_at(self.x_lo))

    @property
    def right_endpoint(self) -> Tuple[float, float]:
        return (self.x_hi, self.y_at(self.x_hi))


def circle_intersections(
    a_center: Tuple[float, float],
    a_radius: float,
    b_center: Tuple[float, float],
    b_radius: float,
) -> List[Tuple[float, float]]:
    """Intersection points of two circles (0, 1 or 2 points)."""
    dx = b_center[0] - a_center[0]
    dy = b_center[1] - a_center[1]
    dist = math.hypot(dx, dy)
    if dist <= 1e-12:
        return []
    if dist > a_radius + b_radius + 1e-12:
        return []
    if dist < abs(a_radius - b_radius) - 1e-12:
        return []
    # Distance from a_center to the radical line along the center line.
    along = (dist * dist + a_radius * a_radius - b_radius * b_radius) / (2.0 * dist)
    perp_sq = a_radius * a_radius - along * along
    if perp_sq < 0:
        perp_sq = 0.0
    perp = math.sqrt(perp_sq)
    ux, uy = dx / dist, dy / dist
    base = (a_center[0] + ux * along, a_center[1] + uy * along)
    if perp <= 1e-12:
        return [base]
    return [
        (base[0] - uy * perp, base[1] + ux * perp),
        (base[0] + uy * perp, base[1] - ux * perp),
    ]


def _point_on_arc(arc: CircularArc, point: Tuple[float, float]) -> bool:
    """Whether a point known to lie on the arc's circle lies on the arc itself."""
    x, y = point
    if not (arc.x_lo - 1e-9 <= x <= arc.x_hi + 1e-9):
        return False
    if arc.side == UPPER:
        return y >= arc.cy - 1e-9
    return y <= arc.cy + 1e-9


def arc_intersections(a: CircularArc, b: CircularArc) -> List[Tuple[float, float]]:
    """Intersection points of two x-monotone circular arcs."""
    points = circle_intersections((a.cx, a.cy), a.radius, (b.cx, b.cy), b.radius)
    return [p for p in points if _point_on_arc(a, p) and _point_on_arc(b, p)]
