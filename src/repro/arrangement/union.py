"""Boundary of the union of equal-radius disks, as x-monotone arcs.

Technique 2 (Section 4.2) merges all disks of one color into the region
``U_c`` and only keeps the boundary ``∂U_c``, which consists of circular arcs
of the participating circles.  The paper obtains these arcs through power
diagrams [Aur88]; this implementation derives them directly from angular
coverage: a point of circle ``C_i`` belongs to ``∂U_c`` iff it is not strictly
inside any other disk of the color, so subtracting from ``[0, 2π)`` the
angular intervals of ``C_i`` covered by the other disks leaves exactly the
boundary arcs contributed by ``C_i``.  (See DESIGN.md: the arcs produced are
identical to the power-diagram construction; only the construction-time
exponent differs.)
"""

from __future__ import annotations

import math
from typing import Hashable, List, Sequence, Tuple

from .arcs import LOWER, UPPER, CircularArc

__all__ = ["union_boundary_arcs", "angular_arcs_to_xmonotone"]

TWO_PI = 2.0 * math.pi


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping angular intervals given with ``start <= end``."""
    if not intervals:
        return []
    intervals.sort()
    merged = [list(intervals[0])]
    for start, end in intervals[1:]:
        if start <= merged[-1][1] + 1e-12:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(lo, hi) for lo, hi in merged]


def _complement_on_circle(covered: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Complement of a set of merged intervals within ``[0, 2π)``."""
    if not covered:
        return [(0.0, TWO_PI)]
    gaps = []
    cursor = 0.0
    for start, end in covered:
        if start > cursor + 1e-12:
            gaps.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < TWO_PI - 1e-12:
        gaps.append((cursor, TWO_PI))
    return gaps


def angular_arcs_to_xmonotone(
    center: Tuple[float, float],
    radius: float,
    angular_arcs: List[Tuple[float, float]],
    color: Hashable,
) -> List[CircularArc]:
    """Convert angular arcs of one circle into x-monotone :class:`CircularArc` pieces.

    Splitting at angles ``0`` and ``π`` (the points of extreme x-coordinate)
    guarantees every piece lies entirely on the upper or lower half circle.
    """
    pieces: List[CircularArc] = []
    cx, cy = center
    for start, end in angular_arcs:
        if end - start <= 1e-12:
            continue
        # Break at multiples of pi inside (start, end).
        cuts = [start]
        k = math.floor(start / math.pi) + 1
        while k * math.pi < end - 1e-12:
            if k * math.pi > start + 1e-12:
                cuts.append(k * math.pi)
            k += 1
        cuts.append(end)
        for lo_angle, hi_angle in zip(cuts[:-1], cuts[1:]):
            if hi_angle - lo_angle <= 1e-12:
                continue
            mid = (lo_angle + hi_angle) / 2.0
            side = UPPER if math.sin(mid) > 0 else LOWER
            x_a = cx + radius * math.cos(lo_angle)
            x_b = cx + radius * math.cos(hi_angle)
            pieces.append(
                CircularArc(
                    cx=cx,
                    cy=cy,
                    radius=radius,
                    side=side,
                    x_lo=min(x_a, x_b),
                    x_hi=max(x_a, x_b),
                    color=color,
                )
            )
    return pieces


def union_boundary_arcs(
    centers: Sequence[Tuple[float, float]],
    radius: float,
    color: Hashable = 0,
) -> List[CircularArc]:
    """x-monotone boundary arcs of the union of equal-radius disks.

    Parameters
    ----------
    centers:
        Disk centers (duplicates are removed -- a duplicated circle would
        otherwise appear twice on the boundary and break the even/odd
        crossing structure used by the decomposition).
    radius:
        Common disk radius.
    color:
        Payload stored on every produced arc.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    unique = sorted({(float(x), float(y)) for x, y in centers})
    arcs: List[CircularArc] = []
    for i, center in enumerate(unique):
        covered: List[Tuple[float, float]] = []
        fully_covered = False
        for j, other in enumerate(unique):
            if i == j:
                continue
            dx = other[0] - center[0]
            dy = other[1] - center[1]
            dist = math.hypot(dx, dy)
            if dist >= 2.0 * radius - 1e-12:
                continue
            if dist <= 1e-12:
                fully_covered = True  # identical circle; cannot happen after dedup
                break
            half_width = math.acos(dist / (2.0 * radius))
            theta = math.atan2(dy, dx) % TWO_PI
            start = (theta - half_width) % TWO_PI
            end = (theta + half_width) % TWO_PI
            if start <= end:
                covered.append((start, end))
            else:
                covered.append((start, TWO_PI))
                covered.append((0.0, end))
        if fully_covered:
            continue
        boundary = _complement_on_circle(_merge_intervals(covered))
        arcs.extend(angular_arcs_to_xmonotone(center, radius, boundary, color))
    return arcs
