"""Vertical (trapezoidal) decomposition of colored boundary arcs and its traversal.

This is the engine behind Lemma 4.2: given the x-monotone boundary arcs of the
union regions ``U_1, ..., U_m`` (one color per region), find a point of
maximum (uncolored) depth with respect to the regions -- which equals the
maximum colored depth with respect to the original disks.

The paper builds a trapezoidal map with Mulmuley's randomized incremental
algorithm and then propagates depths across adjacent cells with a BFS.  We
build the same decomposition slab by slab (see DESIGN.md, substitutions): the
critical x-coordinates are the arc endpoints and the bichromatic arc/arc
intersection points; strictly between two consecutive critical values the
arcs crossing the slab are totally ordered by y, and walking that order bottom
to top toggles membership in one region per crossed arc (an arc of ``∂U_c``
is crossed transversally, so it flips the inside/outside status of color
``c``).  The cells visited this way are exactly the pseudo-trapezoids of the
trapezoidal map restricted to the slab, and the running depth is the BFS
depth of the corresponding cell.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set, Tuple

from .arcs import CircularArc, arc_intersections

__all__ = [
    "critical_xs",
    "bichromatic_intersection_points",
    "count_bichromatic_intersections",
    "max_colored_depth_from_arcs",
    "slab_depth_profile",
]


def critical_xs(arcs: Sequence[CircularArc]) -> List[float]:
    """Sorted distinct critical x-coordinates: arc endpoints and bichromatic intersections."""
    xs: Set[float] = set()
    for arc in arcs:
        xs.add(arc.x_lo)
        xs.add(arc.x_hi)
    for i in range(len(arcs)):
        for j in range(i + 1, len(arcs)):
            if arcs[i].color == arcs[j].color:
                continue
            for px, _py in arc_intersections(arcs[i], arcs[j]):
                xs.add(px)
    return sorted(xs)


def bichromatic_intersection_points(
    arcs: Sequence[CircularArc],
) -> List[Tuple[float, float]]:
    """Intersection points between boundary arcs of different colors.

    These are the vertices of the arrangement of the union boundaries -- the
    quantity ``k`` of Lemma 4.2 / Lemma 4.5 is their count.  They double as
    candidate optima for *closed* disks: in degenerate (non-general-position)
    inputs the maximum colored depth may be attained only at such a vertex,
    never inside an open cell.
    """
    points: List[Tuple[float, float]] = []
    for i in range(len(arcs)):
        for j in range(i + 1, len(arcs)):
            if arcs[i].color == arcs[j].color:
                continue
            points.extend(arc_intersections(arcs[i], arcs[j]))
    return points


def count_bichromatic_intersections(arcs: Sequence[CircularArc]) -> int:
    """Number of intersection points between boundary arcs of different colors.

    This is the quantity ``k`` of Lemma 4.2 / Lemma 4.5; experiment E4 uses it
    to verify the ``k = O(n * opt)`` bound empirically.
    """
    return len(bichromatic_intersection_points(arcs))


def slab_depth_profile(
    arcs: Sequence[CircularArc], x_mid: float
) -> List[Tuple[float, int]]:
    """Depth profile of the vertical line ``x = x_mid``.

    Returns a list of ``(y, depth)`` pairs: crossing height of each arc
    spanning the slab (bottom to top) and the depth of the cell *above* that
    crossing.  Intended for tests and diagnostics.
    """
    crossings = sorted(
        (arc.y_at(x_mid), arc.color) for arc in arcs if arc.spans_x(x_mid)
    )
    active: Set[Hashable] = set()
    profile: List[Tuple[float, int]] = []
    for y, color in crossings:
        if color in active:
            active.discard(color)
        else:
            active.add(color)
        profile.append((y, len(active)))
    return profile


def max_colored_depth_from_arcs(
    arcs: Sequence[CircularArc],
) -> Tuple[int, Optional[Tuple[float, float]]]:
    """Maximum depth over the plane w.r.t. the colored union regions, with a witness.

    Returns ``(depth, point)`` where ``point`` lies strictly inside a cell of
    maximum depth, or ``(0, None)`` when there are no arcs at all.
    """
    if not arcs:
        return 0, None

    xs = critical_xs(arcs)
    best_depth = 0
    best_point: Optional[Tuple[float, float]] = None

    for left, right in zip(xs[:-1], xs[1:]):
        if right - left <= 1e-12:
            continue
        x_mid = (left + right) / 2.0
        crossings = sorted(
            (arc.y_at(x_mid), arc.color) for arc in arcs if arc.spans_x(x_mid)
        )
        if not crossings:
            continue
        active: Set[Hashable] = set()
        index = 0
        total = len(crossings)
        while index < total:
            # Process every arc crossing at (numerically) the same height
            # together; coincident crossings only occur for degenerate inputs
            # but must not corrupt the parity.
            y_here = crossings[index][0]
            while index < total and abs(crossings[index][0] - y_here) <= 1e-12:
                color = crossings[index][1]
                if color in active:
                    active.discard(color)
                else:
                    active.add(color)
                index += 1
            depth = len(active)
            if depth > best_depth:
                if index < total:
                    y_above = (y_here + crossings[index][0]) / 2.0
                else:
                    y_above = y_here + 1.0
                best_depth = depth
                best_point = (x_mid, y_above)
    return best_depth, best_point
