"""Circular-arc arrangement substrate used by Technique 2 (Section 4).

The modules here provide exactly the machinery Lemma 4.2 needs:

* :mod:`repro.arrangement.arcs` -- x-monotone circular arcs, point evaluation
  and arc/arc intersection;
* :mod:`repro.arrangement.union` -- the boundary of the union of equal-radius
  disks of one color, decomposed into x-monotone arcs;
* :mod:`repro.arrangement.decomposition` -- a vertical (trapezoidal)
  decomposition of a set of colored boundary arcs together with the
  depth-propagating traversal that finds a point of maximum colored depth.
"""

from .arcs import CircularArc, arc_intersections, circle_intersections
from .union import union_boundary_arcs
from .decomposition import count_bichromatic_intersections, max_colored_depth_from_arcs

__all__ = [
    "CircularArc",
    "arc_intersections",
    "circle_intersections",
    "union_boundary_arcs",
    "max_colored_depth_from_arcs",
    "count_bichromatic_intersections",
]
