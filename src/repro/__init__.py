"""repro -- reproduction of "A Bouquet of Results on Maximum Range Sum" (PODS 2025).

The package implements the paper's three families of results plus every
baseline and substrate they rely on:

* **Dynamic / static approximate MaxRS for d-balls (Technique 1)** --
  :func:`max_range_sum_ball` (Theorem 1.2), :class:`DynamicMaxRS`
  (Theorem 1.1), :func:`colored_maxrs_ball` (Theorem 1.5).
* **Colored disk MaxRS via output-sensitivity and color sampling
  (Technique 2)** -- :func:`colored_maxrs_disk_arrangement` (Lemma 4.2),
  :func:`colored_maxrs_disk_output_sensitive` (Theorem 4.6) and
  :func:`colored_maxrs_disk` (Theorem 1.6).
* **Batched MaxRS / batched smallest k-enclosing interval and the
  (min,+)-convolution reduction chains** (Theorems 1.3 and 1.4) --
  :mod:`repro.batched` and :mod:`repro.convolution`.
* **Exact baselines** -- interval, rectangle [IA83, NB95] and disk [CL86]
  MaxRS plus the straightforward colored disk sweep, in :mod:`repro.exact`.
* **Workload generators and the benchmark harness** -- :mod:`repro.datasets`
  (point clouds, update streams, serving request traces) and
  :mod:`repro.bench`.

On top of the paper's algorithms the package grows a serving stack
(``docs/architecture.md`` has the layer diagram and guarantee table):

* **Kernel backends** (:mod:`repro.kernels`) -- pure-Python reference vs
  vectorised NumPy implementations of every sweep's hot inner loop, behind
  a registry every solver's ``backend=`` argument selects from.
* **Sharded execution engine** (:mod:`repro.engine`) -- :class:`QueryEngine`
  serves heterogeneous :class:`Query` batches over one dataset: halo
  sharding, pluggable executors, deduplication and an LRU result cache.
* **Zero-copy process execution** (:mod:`repro.parallel`) --
  :class:`SharedDatasetStore` publishes a dataset once as OS shared-memory
  arrays and :class:`SharedMemoryProcessExecutor` runs persistent,
  crash-recovering workers that receive only shard index descriptors
  (``executor="shared-process"`` everywhere an executor is named;
  ``docs/parallel.md``).
* **Streaming monitors** (:mod:`repro.streaming`) -- continuous hotspot
  answers over insert/delete streams with batched ingestion, dirty-shard
  recomputation and sliding windows.
* **Serving front end** (:mod:`repro.service`) -- :class:`MaxRSService`
  faces concurrent request traffic with coalescing, micro-batching, TTL'd
  generation-keyed caching and per-request latency metrics
  (``docs/serving.md``).
* **Observability** (:mod:`repro.obs`) -- hierarchical spans threaded
  through service, engine, executors and kernels (worker-side capture
  included), a counters/gauges/histograms registry, and JSONL /
  Prometheus / tree exporters behind ``REPRO_TRACE=1``, the CLI
  ``--trace-out`` flags and ``repro stats`` (``docs/observability.md``).
* **Network front end** (:mod:`repro.net`) -- :class:`MaxRSServer`, an
  asyncio HTTP server with a bounded admission queue (overload sheds with
  503 instead of queueing unboundedly) over :class:`MaxRSService`, plus an
  open-loop load generator that replays recorded traces at their arrival
  timestamps (``repro serve --listen``, ``repro loadgen``;
  ``docs/networking.md``).

Quickstart
----------
>>> from repro import max_range_sum_ball
>>> points = [(0.0, 0.0), (0.5, 0.5), (5.0, 5.0)]
>>> result = max_range_sum_ball(points, radius=1.0, epsilon=0.3, seed=0)
>>> result.value >= 1
True
"""

from .core import (
    Ball,
    Box,
    ColoredPoint,
    DynamicMaxRS,
    Interval,
    MaxRSResult,
    Point,
    WeightedPoint,
    colored_depth,
    colored_maxrs_ball,
    colored_maxrs_disk,
    colored_maxrs_disk_arrangement,
    colored_maxrs_disk_output_sensitive,
    coverage_count,
    covering_colors,
    estimate_colored_opt_ball,
    estimate_opt_ball,
    max_range_sum_ball,
    weighted_depth,
)
from .exact import (
    colored_maxrs_disk_sweep,
    colored_maxrs_interval_exact,
    colored_maxrs_rectangle_exact,
    maxrs_disk_exact,
    maxrs_interval_exact,
    maxrs_rectangle_exact,
)
from .batched import (
    batched_maxrs_1d,
    batched_maxrs_rectangles,
    batched_smallest_enclosing_intervals,
    smallest_k_enclosing_interval,
)
from .convolution import (
    max_plus_convolution,
    min_plus_convolution,
    min_plus_via_batched_maxrs,
    min_plus_via_bsei,
)
from .approx import (
    maxrs_disk_grid_decomposition,
    maxrs_disk_sampled,
    maxrs_rectangle_sampled,
)
from .boxes import (
    colored_maxrs_box,
    colored_maxrs_box_arrangement,
    colored_maxrs_box_output_sensitive,
    colored_maxrs_box3d_exact,
    estimate_colored_opt_box,
)
from .exact import maxrs_box3d_exact
from .streaming import (
    ApproximateMaxRSMonitor,
    ExactRecomputeMonitor,
    ShardedMaxRSMonitor,
    SlidingWindowMaxRSMonitor,
)
# The executor classes stay engine-scoped (repro.engine.ThreadPoolExecutor
# etc.): re-exporting them here would shadow the incompatible
# concurrent.futures classes of the same names.
from .engine import Query, QueryEngine
# Zero-copy shared-memory process execution: the dataset is published once
# as shared_memory-backed arrays and workers receive only shard descriptors
# (docs/parallel.md).  SharedMemoryProcessExecutor has no stdlib name
# collision, so it is re-exported alongside its store.
from . import parallel
from .parallel import SharedDatasetStore, SharedMemoryProcessExecutor
# Kernel backend registry: every sweep solver accepts backend="auto" |
# "python" | "numpy"; see repro.kernels for the contract and how to add one.
from . import kernels
# Serving layer: the concurrent front end over the engine + monitors, with
# request coalescing, micro-batching and TTL'd caching (docs/serving.md).
from . import service
from .service import MaxRSService, ServiceRequest, ServiceResponse
# Observability: hierarchical spans + metrics + exporters across every layer
# above (REPRO_TRACE=1, --trace-out, repro stats; docs/observability.md).
from . import obs
# Network front end: the asyncio HTTP server over MaxRSService plus the
# open-loop load generator (repro serve --listen, repro loadgen;
# docs/networking.md).
from . import net
from .net import MaxRSServer
from .regions import (
    DecayingMaxRSMonitor,
    decayed_maxrs,
    top_k_maxrs_disk,
    top_k_maxrs_rectangle,
)

# Single source of truth for the version is the package metadata
# (pyproject.toml); the literal fallback covers PYTHONPATH=src usage from a
# checkout, where the distribution is not installed.
try:  # pragma: no cover - depends on how the package is deployed
    from importlib.metadata import version as _dist_version

    __version__ = _dist_version("maxrs-repro")
except Exception:  # pragma: no cover - uninstalled checkout
    __version__ = "1.1.0"

__all__ = [
    "__version__",
    # primitives
    "Point",
    "WeightedPoint",
    "ColoredPoint",
    "Ball",
    "Box",
    "Interval",
    "MaxRSResult",
    # depth evaluators
    "weighted_depth",
    "colored_depth",
    "covering_colors",
    "coverage_count",
    # Technique 1
    "max_range_sum_ball",
    "estimate_opt_ball",
    "DynamicMaxRS",
    "colored_maxrs_ball",
    "estimate_colored_opt_ball",
    # Technique 2
    "colored_maxrs_disk",
    "colored_maxrs_disk_arrangement",
    "colored_maxrs_disk_output_sensitive",
    # exact baselines
    "maxrs_interval_exact",
    "maxrs_rectangle_exact",
    "maxrs_disk_exact",
    "maxrs_box3d_exact",
    "colored_maxrs_disk_sweep",
    "colored_maxrs_rectangle_exact",
    "colored_maxrs_interval_exact",
    # prior-work approximation baselines
    "maxrs_disk_sampled",
    "maxrs_rectangle_sampled",
    "maxrs_disk_grid_decomposition",
    # Technique 2 extension to boxes (Section 7, open problem 1)
    "colored_maxrs_box",
    "colored_maxrs_box_arrangement",
    "colored_maxrs_box_output_sensitive",
    "colored_maxrs_box3d_exact",
    "estimate_colored_opt_box",
    # streaming monitors (Section 1.1 application layer)
    "ApproximateMaxRSMonitor",
    "SlidingWindowMaxRSMonitor",
    "ExactRecomputeMonitor",
    "ShardedMaxRSMonitor",
    # sharded parallel execution engine
    "Query",
    "QueryEngine",
    # zero-copy shared-memory process execution
    "parallel",
    "SharedDatasetStore",
    "SharedMemoryProcessExecutor",
    # pluggable kernel backends (python / numpy)
    "kernels",
    # concurrent query-serving front end
    "service",
    "MaxRSService",
    "ServiceRequest",
    "ServiceResponse",
    # cross-layer tracing + metrics
    "obs",
    # asyncio socket front end + open-loop load generator
    "net",
    "MaxRSServer",
    # region-search extensions (Section 1.6 related work)
    "top_k_maxrs_rectangle",
    "top_k_maxrs_disk",
    "DecayingMaxRSMonitor",
    "decayed_maxrs",
    # batched problems
    "batched_maxrs_1d",
    "batched_maxrs_rectangles",
    "smallest_k_enclosing_interval",
    "batched_smallest_enclosing_intervals",
    # convolutions and reductions
    "min_plus_convolution",
    "max_plus_convolution",
    "min_plus_via_batched_maxrs",
    "min_plus_via_bsei",
]
