"""Micro-batch formation: ordering barriers and in-flight coalescing.

The front end drains its request window into *groups* that can each be
served with one backend interaction, subject to one ordering rule: **updates
are barriers**.  A query submitted after an update batch must observe the
monitor state that batch produced, so a window is split at every transition
between update and non-update requests, preserving submission order:

    q q q | U U | q m q | U | m m      ->   serve(qqq) update(UU) serve(qmq) ...

Consecutive update requests merge into one
:class:`~repro.streaming.base.StreamMonitor.apply_batch` call (their events
concatenate in order); consecutive non-update requests form one *serve
group*, inside which identical requests -- equal
:attr:`~repro.service.requests.ServiceRequest.coalesce_key` -- are
**coalesced**: the answer is computed once and fanned out to every waiter.
All monitor reads of a serve group share a single monitor pass regardless of
name, because one :meth:`current` call answers every standing query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from .requests import ServiceRequest

__all__ = ["Group", "form_groups", "coalesce"]


@dataclass
class Group:
    """A maximal run of requests servable with one backend interaction.

    ``kind`` is ``"serve"`` (queries and monitor reads) or ``"update"``
    (monitor mutations); ``positions`` are the requests' indices in the
    window, in submission order.
    """

    kind: str
    positions: List[int] = field(default_factory=list)
    requests: List[ServiceRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)


def form_groups(window: Sequence[ServiceRequest]) -> List[Group]:
    """Split a drained window into ordered serve / update groups.

    Updates act as barriers: the relative order of every update group and
    its surrounding serve groups is exactly the submission order, so every
    request observes the monitor state all preceding updates produced.
    """
    groups: List[Group] = []
    for position, request in enumerate(window):
        kind = "update" if request.kind == "update" else "serve"
        if not groups or groups[-1].kind != kind:
            groups.append(Group(kind=kind))
        groups[-1].positions.append(position)
        groups[-1].requests.append(request)
    return groups


def coalesce(
    group: Group,
) -> Tuple[List[Hashable], Dict[Hashable, List[int]]]:
    """Deduplicate a serve group's requests by coalesce key.

    Returns the distinct keys in first-appearance order and the mapping
    ``key -> window positions`` of every request that key satisfies.  The
    first position of each key is the *leader* (charged with the backend
    call); the rest are coalesced onto its answer.
    """
    if group.kind != "serve":
        raise ValueError("only serve groups coalesce (updates mutate state)")
    order: List[Hashable] = []
    waiters: Dict[Hashable, List[int]] = {}
    for position, request in zip(group.positions, group.requests):
        key = request.coalesce_key
        if key not in waiters:
            waiters[key] = []
            order.append(key)
        waiters[key].append(position)
    return order, waiters
