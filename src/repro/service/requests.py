"""The service's request / response vocabulary.

A :class:`ServiceRequest` is what clients hand the front end: a static MaxRS
query (served from the dataset-bound :class:`~repro.engine.QueryEngine`), a
hotspot read against the live stream monitor, or an update batch that
mutates the monitor.  A :class:`ServiceResponse` pairs the answer with the
per-request serving metrics -- how long the request waited for its batch,
how big the batch was, which path served it -- that
:class:`~repro.service.metrics.ServiceStats` aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.result import MaxRSResult
from ..datasets.requests import RequestEvent
from ..datasets.streams import UpdateEvent
from ..engine.planner import Query

__all__ = ["ServiceRequest", "ServiceResponse"]


@dataclass(frozen=True)
class ServiceRequest:
    """One request to the serving front end.

    Use the named constructors: :meth:`static` for dataset queries,
    :meth:`read` for live-monitor hotspot reads, :meth:`update` for stream
    update batches.  Requests are frozen so identical static queries compare
    equal -- which is what lets the batcher coalesce them in flight.
    """

    kind: str
    query: Optional[Query] = None
    name: Optional[str] = None
    events: Tuple[UpdateEvent, ...] = ()

    def __post_init__(self):
        if self.kind not in ("query", "monitor", "update"):
            raise ValueError("request kind must be 'query', 'monitor' or 'update'")
        if self.kind == "query" and self.query is None:
            raise ValueError("static query requests need a query")
        if self.kind == "update" and not self.events:
            raise ValueError("update requests need at least one stream event")

    @staticmethod
    def static(query: Query) -> "ServiceRequest":
        """A static MaxRS query against the service's fixed dataset."""
        return ServiceRequest(kind="query", query=query)

    @staticmethod
    def read(name: Optional[str] = None) -> "ServiceRequest":
        """A hotspot read against the live monitor (``name`` selects one
        standing query of a multi-query monitor)."""
        return ServiceRequest(kind="monitor", name=name)

    @staticmethod
    def update(events) -> "ServiceRequest":
        """An update batch: stream events applied to the live monitor."""
        return ServiceRequest(kind="update", events=tuple(events))

    @staticmethod
    def from_trace(event: RequestEvent) -> "ServiceRequest":
        """Convert one :class:`~repro.datasets.requests.RequestEvent`."""
        return ServiceRequest(kind=event.kind, query=event.query,
                              name=event.name, events=event.events)

    @property
    def coalesce_key(self):
        """Requests with equal keys are satisfied by one answer (``None``
        means the request is never coalesced -- updates mutate state)."""
        if self.kind == "query":
            return ("q", self.query)
        if self.kind == "monitor":
            return ("m", self.name)
        return None


@dataclass
class ServiceResponse:
    """The answer to one request, plus its per-request serving metrics.

    Attributes
    ----------
    request:
        The request this answers.
    result:
        The MaxRS answer (``None`` for update requests).
    served_query:
        For static queries: the *concrete* query the solver actually ran --
        the request's query with ``backend="auto"`` resolved for the batch.
        Under ``routing="direct"`` (the default), re-issuing ``served_query``
        through a direct solver call reproduces ``result`` bit-for-bit (the
        serving differential guarantee).  Answers produced through the
        sharded engine (``routing="sharded"``, or a quadratic-cost query
        under ``routing="auto"``) keep the same optimum *value* but may
        report a different, equally optimal placement.
    served_from:
        ``"solver"`` (fresh engine/solver call), ``"monitor"`` (fresh
        monitor pass), ``"cache"`` (TTL cache hit), ``"coalesced"``
        (piggybacked on an identical request in the same flush),
        ``"update"`` (applied update batch), or ``"error"`` (the flush
        itself failed before the request could be routed -- ``error``
        carries the exception).
    batch_size:
        Number of requests served in the same flush.
    queue_wait:
        Seconds between submission and the start of the flush that served it.
    latency:
        Seconds between submission and the response being ready.
    batch_id:
        Monotone id of the flush that served the request.
    error:
        The exception that failed the request, if any (``result`` is then
        ``None``).
    """

    request: ServiceRequest
    result: Optional[MaxRSResult] = None
    served_query: Optional[Query] = None
    served_from: str = "solver"
    batch_size: int = 1
    queue_wait: float = 0.0
    latency: float = 0.0
    batch_id: int = 0
    error: Optional[Exception] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether the request was served without an error."""
        return self.error is None
