"""Per-request service metrics and their aggregation.

Every :class:`~repro.service.requests.ServiceResponse` carries its own
timings (queue wait, end-to-end latency) and batching facts (flush size, how
it was served).  :class:`ServiceStats` folds a stream of responses into the
aggregate view operators actually watch: request counts by kind and serving
path, coalescing and cache-hit rates, mean flush size, and p50/p95 latency
percentiles.

The percentile machinery lives in :mod:`repro.obs.metrics` --
:func:`repro.obs.metrics.percentile` (re-exported here for compatibility)
and the bounded-reservoir :class:`repro.obs.Histogram` that backs the
queue-wait and latency distributions.  ``ServiceStats`` is the service's
view over those shared primitives; its ``snapshot()`` schema is unchanged.
"""

from __future__ import annotations

from typing import Dict

from ..obs.metrics import Histogram, percentile

__all__ = ["percentile", "ServiceStats"]

#: How many recent observations the percentile reservoirs keep.  A
#: long-running service must not grow per-request state without bound, so
#: latency/queue-wait percentiles are computed over a sliding window of the
#: most recent requests (counts and means stay exact over the full history).
RESERVOIR_SIZE = 4096


class ServiceStats:
    """Aggregates response metrics into the service's observable counters.

    Counts and means are exact over the whole service lifetime; the latency
    and queue-wait percentiles come from bounded
    :class:`repro.obs.Histogram` reservoirs over the most recent
    :data:`RESERVOIR_SIZE` requests, so a long-running threaded service
    holds O(1) metrics state.
    """

    def __init__(self):
        self.requests = 0
        self.by_kind: Dict[str, int] = {"query": 0, "monitor": 0, "update": 0}
        self.served_from: Dict[str, int] = {}
        self.stream_events = 0
        self.flushes = 0
        self.solver_calls = 0
        self.monitor_passes = 0
        self.planned_shard_tasks = 0
        self._batch_size_sum = 0
        self._queue_waits = Histogram("service.queue_wait",
                                      reservoir=RESERVOIR_SIZE)
        self._latencies = Histogram("service.latency",
                                    reservoir=RESERVOIR_SIZE)

    def record(self, response) -> None:
        """Fold one :class:`~repro.service.requests.ServiceResponse` in."""
        self.requests += 1
        self.by_kind[response.request.kind] = (
            self.by_kind.get(response.request.kind, 0) + 1)
        self.served_from[response.served_from] = (
            self.served_from.get(response.served_from, 0) + 1)
        self.stream_events += len(response.request.events)
        self._batch_size_sum += response.batch_size
        self._queue_waits.observe(response.queue_wait)
        self._latencies.observe(response.latency)

    def record_flush(self, solver_calls: int = 0, monitor_passes: int = 0) -> None:
        """Count one batch flush and the backend work it actually submitted."""
        self.flushes += 1
        self.solver_calls += solver_calls
        self.monitor_passes += monitor_passes

    @property
    def coalesced(self) -> int:
        """Requests that piggybacked on an identical in-flight request."""
        return self.served_from.get("coalesced", 0)

    @property
    def cache_hits(self) -> int:
        """Requests answered from the TTL'd result cache."""
        return self.served_from.get("cache", 0)

    def mean_batch_size(self) -> float:
        """Average flush size over all served requests (``nan`` when idle)."""
        if not self.requests:
            return float("nan")
        return self._batch_size_sum / self.requests

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable dict of every aggregate the service reports."""
        return {
            "requests": self.requests,
            "by_kind": dict(self.by_kind),
            "served_from": dict(self.served_from),
            "stream_events": self.stream_events,
            "flushes": self.flushes,
            "solver_calls": self.solver_calls,
            "monitor_passes": self.monitor_passes,
            "planned_shard_tasks": self.planned_shard_tasks,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "mean_batch_size": self.mean_batch_size(),
            "queue_wait_p50": self._queue_waits.percentile(50.0),
            "queue_wait_p95": self._queue_waits.percentile(95.0),
            "latency_p50": self._latencies.percentile(50.0),
            "latency_p95": self._latencies.percentile(95.0),
        }
