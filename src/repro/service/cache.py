"""A TTL'd LRU result cache for the serving layer.

Differs from the engine's :class:`~repro.engine.planner.LRUCache` in two
serving-specific ways:

* entries **expire**: every entry carries a deadline ``now + ttl``, so a
  served answer is never older than the configured time-to-live even if the
  key would still match (freshness is a serving policy, not a correctness
  requirement -- static-dataset answers never go stale, but operators cap
  staleness anyway to bound the blast radius of an upstream data fix);
* keys embed **invalidation tokens**: monitor-derived answers are keyed by
  the monitor's :attr:`~repro.streaming.base.StreamMonitor.generation`, so
  applying an update batch implicitly invalidates every cached monitor
  answer without a callback (the stale entries age out of the LRU).

The clock is injected per call (``get(key, now)``) rather than read from
``time`` so tests and the deterministic trace replay control it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

__all__ = ["TTLCache", "MISSING"]


class _Missing:
    """The cache-miss sentinel (distinct from any cachable value)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TTLCache.MISSING>"

    def __bool__(self) -> bool:
        return False


#: Returned by :meth:`TTLCache.get` on a miss or an expired entry.  ``None``
#: is a legitimate cachable answer (a monitor whose ``current()`` is ``None``),
#: so the miss signal must be a value no caller can ever cache.
MISSING = _Missing()


class TTLCache:
    """A least-recently-used map whose entries expire after ``ttl`` seconds."""

    def __init__(self, maxsize: int = 4096, ttl: float = 60.0):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.maxsize = maxsize
        self.ttl = float(ttl)
        self._data: "OrderedDict[Hashable, Tuple[float, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, now: float):
        """The cached value, or :data:`MISSING` on a miss or an expired entry.

        The sentinel (rather than ``None``) is the miss signal because
        ``None`` is a legitimate cached answer -- e.g. a monitor whose
        ``current()`` is ``None`` over an empty window.  Test hits with
        ``value is not MISSING``, never truthiness.
        """
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return MISSING
        deadline, value = entry
        if now >= deadline:
            del self._data[key]
            self.expirations += 1
            self.misses += 1
            return MISSING
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value, now: float) -> None:
        """Cache ``value`` under ``key`` until ``now + ttl``.

        At capacity, already-expired entries are purged first (counted as
        expirations, like :meth:`get` lazily dropping one) so a dead slot is
        never kept alive at the cost of evicting the LRU *live* answer; only
        when every resident entry is still fresh does LRU eviction kick in.
        """
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = (now + self.ttl, value)
        if len(self._data) > self.maxsize:
            self.purge(now)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def purge(self, now: float) -> int:
        """Drop every expired entry; returns how many were dropped."""
        stale = [key for key, (deadline, _) in self._data.items() if now >= deadline]
        for key in stale:
            del self._data[key]
        self.expirations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    @property
    def stats(self) -> dict:
        """Hit / miss / expiration counters plus the current size."""
        return {"hits": self.hits, "misses": self.misses,
                "expirations": self.expirations, "size": len(self._data)}
