"""Concurrent query-serving front end for MaxRS workloads.

Everything below :mod:`repro.service` answers *one* query at a time: the
solver functions are one-shot calls, the engine serves one batch it is
handed, the monitors answer one ``current()`` pass.  This package is the
layer that faces *traffic* -- many clients issuing heterogeneous MaxRS
requests concurrently against shared state -- and turns the machinery
underneath into a serving system:

* :mod:`repro.service.requests` -- the request/response vocabulary
  (:class:`ServiceRequest`, :class:`ServiceResponse`): static dataset
  queries, live-monitor hotspot reads, and monitor update batches;
* :mod:`repro.service.batcher` -- micro-batch formation: flush windows are
  split into ordered serve / update groups (updates are barriers) and
  identical in-flight requests are coalesced onto one backend call;
* :mod:`repro.service.cache` -- :class:`TTLCache`, the TTL'd LRU result
  cache whose monitor-side keys embed the monitor's ``generation`` token so
  update batches implicitly invalidate stale answers;
* :mod:`repro.service.metrics` -- per-request metrics (queue wait, flush
  size, latency) and their aggregation (:class:`ServiceStats`,
  :func:`percentile`);
* :mod:`repro.service.server` -- :class:`MaxRSService`, the front end
  itself, with a threaded dispatcher (``submit``/``result``) and a
  deterministic replay mode (``serve_trace``) sharing one serving core.

Serving preserves the layers' guarantees: with the default
``routing="direct"`` every served answer is **bit-identical** to the direct
solver call for the concrete query recorded on the response, and monitor
reads are bit-identical to querying the monitor yourself at the same stream
position (``benchmarks/bench_service.py`` enforces both differentially).

Quickstart
----------
>>> from repro.engine import Query
>>> from repro.service import MaxRSService, ServiceRequest
>>> service = MaxRSService([(0.0, 0.0), (0.5, 0.5), (5.0, 5.0)])
>>> batch = [ServiceRequest.static(Query.disk(1.0))] * 3
>>> [r.value for r in (resp.result for resp in service.serve(batch))]
[2.0, 2.0, 2.0]
"""

from .batcher import Group, coalesce, form_groups
from .cache import MISSING, TTLCache
from .metrics import ServiceStats, percentile
from .requests import ServiceRequest, ServiceResponse
from .server import MaxRSService, PendingResponse, TraceReport

__all__ = [
    "MaxRSService",
    "PendingResponse",
    "TraceReport",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "TTLCache",
    "MISSING",
    "Group",
    "form_groups",
    "coalesce",
    "percentile",
]
