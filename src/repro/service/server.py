"""The concurrent query-serving front end.

:class:`MaxRSService` accepts a stream of heterogeneous MaxRS requests --
static queries against a fixed dataset, hotspot reads against a live stream
monitor, and monitor update batches -- and serves them through the serving
pipeline the rest of this package provides:

1. **window draining** -- requests accumulate (from concurrent submitters or
   a replayed trace) and are drained into flush windows of at most
   ``max_batch`` requests;
2. **micro-batching** -- each window is split into ordered serve / update
   groups (:func:`~repro.service.batcher.form_groups`; updates are
   barriers), so one flush touches the engine once and the monitor once;
3. **coalescing** -- identical in-flight requests collapse onto one backend
   call (:func:`~repro.service.batcher.coalesce`);
4. **TTL'd caching** -- answers land in a :class:`~repro.service.cache.TTLCache`;
   static keys embed the engine's dataset fingerprint, monitor keys embed the
   monitor's :attr:`~repro.streaming.base.StreamMonitor.generation`, so
   update batches implicitly invalidate every monitor-derived entry;
5. **plan-aware routing** -- cache-missing static queries are routed via the
   engine: ``routing="direct"`` issues one direct solver call per distinct
   query (answers are *bit-identical* to calling the solver yourself --
   the serving differential guarantee), ``routing="sharded"`` flushes them
   as one :meth:`~repro.engine.QueryEngine.solve_batch` (parallel across
   queries and shards; equal optimum values, possibly different equally
   optimal placements), and ``routing="auto"`` consults
   :meth:`~repro.engine.QueryEngine.batch_plan` to shard only the
   quadratic-cost queries where sharding cuts total work.  Either way
   ``backend="auto"`` is resolved once per micro-batch
   (:func:`repro.kernels.resolve_batch_backend`), and the concrete query
   served is recorded on the response.

The front end runs in two modes sharing one serving core: a **threaded**
mode (:meth:`start` / :meth:`submit` / :meth:`close`) where a dispatcher
thread drains a queue fed by concurrent client threads, and a
**deterministic** mode (:meth:`serve` / :meth:`serve_trace`) where the
caller controls window formation -- what the benchmarks and differential
tests replay.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from ..core.result import MaxRSResult
from ..datasets.requests import RequestEvent, RequestTrace
from ..engine.executors import Executor
from ..engine.planner import Query, QueryEngine
from ..kernels import resolve_batch_backend
from ..obs import tracing as obs
from ..streaming.base import StreamMonitor
from .batcher import coalesce, form_groups
from .cache import MISSING, TTLCache
from .metrics import ServiceStats
from .requests import ServiceRequest, ServiceResponse

__all__ = ["MaxRSService", "PendingResponse", "TraceReport"]


class PendingResponse:
    """A future for one submitted request (threaded mode)."""

    __slots__ = ("request", "submitted", "_event", "_response")

    def __init__(self, request: ServiceRequest, submitted: float):
        self.request = request
        self.submitted = submitted
        self._event = threading.Event()
        self._response: Optional[ServiceResponse] = None

    def _resolve(self, response: ServiceResponse) -> None:
        self._response = response
        self._event.set()

    def done(self) -> bool:
        """Whether the response is ready."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServiceResponse:
        """Block until the response is ready and return it."""
        if not self._event.wait(timeout):
            raise TimeoutError("request was not served within %r s" % (timeout,))
        return self._response


@dataclass
class TraceReport:
    """The outcome of one :meth:`MaxRSService.serve_trace` replay."""

    responses: List[ServiceResponse]
    elapsed: float

    @property
    def requests(self) -> int:
        """Number of requests replayed."""
        return len(self.responses)

    @property
    def throughput(self) -> float:
        """Requests served per second of wall-clock replay time."""
        if self.elapsed <= 0:
            return float("inf")
        return len(self.responses) / self.elapsed


class MaxRSService:
    """Serve heterogeneous MaxRS request streams with coalescing,
    micro-batching, TTL'd caching and plan-aware routing.

    Parameters
    ----------
    points, weights, colors:
        The static dataset; a :class:`~repro.engine.QueryEngine` is built
        over it (with the engine's own cache disabled -- the service's TTL
        cache is the single caching layer).  Alternatively pass a
        ready-made ``engine``.
    monitor:
        The live :class:`~repro.streaming.base.StreamMonitor` update
        requests mutate and monitor reads query.  Optional; without one,
        monitor/update requests fail with a per-request error.
    routing:
        ``"direct"`` (default): cache-missing static queries run as direct
        solver calls -- served answers are bit-identical to calling the
        solver yourself.  ``"sharded"``: they flush through
        :meth:`~repro.engine.QueryEngine.solve_batch` (sharded + parallel;
        same optimum values, possibly different equally optimal placements).
        ``"auto"``: plan-aware -- the flush is planned with
        :meth:`~repro.engine.QueryEngine.batch_plan` and only the queries
        whose :attr:`~repro.engine.Query.cost_class` is ``"quadratic"``
        (where sharding cuts *total* work, not just wall-clock) go through
        the sharded engine; the rest stay on bit-identical direct calls.
    cache_ttl, cache_size:
        The TTL'd result cache (seconds / entries).
    max_batch:
        Flush window size: how many queued requests one dispatch drains.
    executor, workers:
        Forwarded to the engine built from ``points``.
        ``executor="shared-process"`` is the zero-copy serving mode: the
        engine publishes the dataset once to a shared-memory store
        (:mod:`repro.parallel`) and sharded flushes send workers only index
        descriptors.  ``None`` (the default) honours the ``REPRO_EXECUTOR``
        environment variable and otherwise stays serial.
    clock:
        Monotonic time source (injected for deterministic tests).
    """

    def __init__(
        self,
        points: Optional[Sequence] = None,
        *,
        weights: Optional[Sequence[float]] = None,
        colors: Optional[Sequence[Hashable]] = None,
        engine: Optional[QueryEngine] = None,
        monitor: Optional[StreamMonitor] = None,
        routing: str = "direct",
        cache_ttl: float = 60.0,
        cache_size: int = 4096,
        max_batch: int = 64,
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
        clock=time.perf_counter,
    ):
        if routing not in ("direct", "sharded", "auto"):
            raise ValueError(
                "routing must be 'direct', 'sharded' or 'auto', got %r" % (routing,))
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if engine is not None and points is not None:
            raise ValueError("pass either points or a ready-made engine, not both")
        self._owns_engine = False
        if engine is None and points is not None:
            engine = QueryEngine(points, weights=weights, colors=colors,
                                 executor=executor, workers=workers, cache_size=0)
            self._owns_engine = True
        if engine is None and monitor is None:
            raise ValueError("MaxRSService needs a dataset, an engine or a monitor")
        self._engine = engine
        self._monitor = monitor
        self.routing = routing
        self.max_batch = max_batch
        self._cache = TTLCache(maxsize=cache_size, ttl=cache_ttl)
        self._clock = clock
        self.stats = ServiceStats()
        self._lock = threading.RLock()
        self._stream_position = 0
        self._batch_counter = 0
        self._queue: "queue.Queue[PendingResponse]" = queue.Queue()
        self._dispatcher: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "MaxRSService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def engine(self) -> Optional[QueryEngine]:
        """The dataset-bound query engine (``None`` for monitor-only services)."""
        return self._engine

    @property
    def monitor(self) -> Optional[StreamMonitor]:
        """The live stream monitor (``None`` for static-only services)."""
        return self._monitor

    @property
    def cache_stats(self) -> dict:
        """The TTL cache's hit / miss / expiration counters."""
        return self._cache.stats

    def snapshot(self) -> dict:
        """Aggregate serving metrics plus cache (and engine) counters."""
        payload = self.stats.snapshot()
        payload["cache"] = self._cache.stats
        if self._engine is not None:
            payload["engine"] = self._engine.stats
        return payload

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (post-close serving raises)."""
        return self._closed

    def close(self) -> None:
        """Stop the dispatcher (serving what is already queued) and shut
        down the engine the service owns.  Idempotent; afterwards
        :meth:`submit`, :meth:`serve` and :meth:`start` raise
        :class:`RuntimeError` -- the engine's shared-memory store may
        already be released, so silently respawning the dispatcher over it
        would serve corrupt answers.
        """
        with self._lock:
            # The closed flag and the dispatcher handoff flip under _lock so
            # a concurrent submit() either enqueues before the flag is set
            # (and is drained below) or raises RuntimeError -- never lands
            # in a queue nobody will ever drain.
            if self._closed:
                return
            self._closed = True
            dispatcher = self._dispatcher
            self._dispatcher = None
            if dispatcher is not None:
                self._stop.set()
        if dispatcher is not None:
            # Join *outside* the lock: the dispatcher takes _lock inside
            # _serve_window, so holding it across the join would deadlock.
            dispatcher.join()
            self._drain_queue()
        if self._owns_engine and self._engine is not None:
            self._engine.close()

    def _ensure_open(self, what: str) -> None:
        if self._closed:
            raise RuntimeError(
                "MaxRSService is closed; %s() after close() is a bug in the "
                "caller (the owned engine's resources are already released)"
                % what)

    # ------------------------------------------------------------------ #
    # threaded front end
    # ------------------------------------------------------------------ #

    def start(self) -> "MaxRSService":
        """Start the dispatcher thread (idempotent; :meth:`submit` does this
        on first use).  Raises :class:`RuntimeError` after :meth:`close`."""
        with self._lock:  # concurrent first submits must not spawn two dispatchers
            self._ensure_open("start")
            if self._dispatcher is None:
                self._stop.clear()
                self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                                    name="maxrs-service-dispatcher",
                                                    daemon=True)
                self._dispatcher.start()
        return self

    def submit(self, request: ServiceRequest) -> PendingResponse:
        """Enqueue one request; returns a future whose ``result()`` blocks
        until the dispatcher has served the flush containing it.  Raises
        :class:`RuntimeError` after :meth:`close`."""
        pending = PendingResponse(request, self._clock())
        with self._lock:
            # Check-then-enqueue must be atomic w.r.t. close(): once close()
            # sets the flag the queue is never drained again, so an entry
            # slipped in after the check would block its waiter forever.
            self._ensure_open("submit")
            self.start()
            self._queue.put(pending)
        return pending

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                continue
            self._serve_window_guarded(self._drain_window(first))
        # Serve whatever arrived before the stop flag was seen.
        self._drain_queue()

    def _drain_window(self, first: PendingResponse) -> List[PendingResponse]:
        window = [first]
        while len(window) < self.max_batch:
            try:
                window.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return window

    def _drain_queue(self) -> None:
        while True:
            try:
                first = self._queue.get_nowait()
            except queue.Empty:
                return
            self._serve_window_guarded(self._drain_window(first))

    def _serve_window_guarded(self, entries: List[PendingResponse]) -> None:
        """Serve one window, resolving every entry even if the serving core
        itself raises.

        :meth:`_serve_window` attaches per-request errors and should never
        raise, but a bug escaping it must not kill the dispatcher thread:
        before this guard, one such exception left every in-flight
        ``PendingResponse.result()`` blocking forever (and the queue growing
        unboundedly behind a dead dispatcher).
        """
        try:
            self._serve_window(entries)
        except Exception as exc:
            for entry in entries:
                if not entry.done():
                    entry._resolve(ServiceResponse(
                        request=entry.request, result=None,
                        served_from="error", batch_size=len(entries),
                        error=exc))

    # ------------------------------------------------------------------ #
    # deterministic front end
    # ------------------------------------------------------------------ #

    def request(self, request: ServiceRequest) -> ServiceResponse:
        """Serve one request synchronously; raises its error, if any."""
        response = self.serve([request])[0]
        if response.error is not None:
            raise response.error
        return response

    def serve(self, requests: Sequence[ServiceRequest]) -> List[ServiceResponse]:
        """Serve one caller-formed window synchronously, in order.

        Errors are attached per response (``response.error``), never raised:
        one malformed request must not fail the flush that carries it.
        Raises :class:`RuntimeError` after :meth:`close`.
        """
        self._ensure_open("serve")
        now = self._clock()
        return self._serve_window([PendingResponse(r, now) for r in requests])

    def serve_trace(
        self,
        trace: Union[RequestTrace, Sequence[RequestEvent], Sequence[ServiceRequest]],
        *,
        window: Optional[int] = None,
    ) -> TraceReport:
        """Replay a request trace through the serving pipeline.

        The trace is walked in order and flushed in windows of up to
        ``window`` requests (default ``max_batch``) -- the deterministic
        stand-in for concurrent arrival: requests in one window are "in
        flight together" and eligible for coalescing and shared passes,
        while update barriers inside a window still apply in order.
        """
        size = self.max_batch if window is None else window
        if size < 1:
            raise ValueError("window must be >= 1")
        responses: List[ServiceResponse] = []
        batch: List[ServiceRequest] = []
        started = self._clock()
        for event in trace:
            batch.append(ServiceRequest.from_trace(event)
                         if isinstance(event, RequestEvent) else event)
            if len(batch) >= size:
                responses.extend(self.serve(batch))
                batch = []
        if batch:
            responses.extend(self.serve(batch))
        return TraceReport(responses=responses, elapsed=self._clock() - started)

    # ------------------------------------------------------------------ #
    # the serving core
    # ------------------------------------------------------------------ #

    def _serve_window(self, entries: List[PendingResponse]) -> List[ServiceResponse]:
        with self._lock:
            self._batch_counter += 1
            batch_id = self._batch_counter
            flush_started = self._clock()
            window = [entry.request for entry in entries]
            responses: List[Optional[ServiceResponse]] = [None] * len(window)
            solver_calls = 0
            monitor_passes = 0
            # The trace root of one serving flush: everything the flush does
            # (update application, static solving, monitor passes, and the
            # whole engine subtree under them) nests below this span.
            with obs.trace("service.flush", batch_id=batch_id,
                           requests=len(window)) as flush_span:
                for group in form_groups(window):
                    if group.kind == "update":
                        self._apply_update_group(group, window, responses, batch_id)
                        continue
                    calls, passes = self._serve_group(group, window, responses, batch_id)
                    solver_calls += calls
                    monitor_passes += passes
                flush_span.tag(solver_calls=solver_calls,
                               monitor_passes=monitor_passes)
            done = self._clock()
            for entry, response in zip(entries, responses):
                response.queue_wait = max(0.0, flush_started - entry.submitted)
                response.latency = max(0.0, done - entry.submitted)
                self.stats.record(response)
                entry._resolve(response)
            self.stats.record_flush(solver_calls=solver_calls,
                                    monitor_passes=monitor_passes)
            return responses

    def _apply_update_group(self, group, window, responses, batch_id) -> None:
        events = [event for request in group.requests for event in request.events]
        error: Optional[Exception] = None
        if self._monitor is None:
            error = ValueError("update request on a service without a monitor")
        else:
            # The stream offset advances by the whole group even if applying
            # fails partway: trace-recorded delete targets are absolute stream
            # positions, so skipping the failed suffix (rather than reusing
            # its offsets) keeps later batches' handles collision-free.
            start_index = self._stream_position
            self._stream_position += len(events)
            try:
                with obs.span("service.update", events=len(events),
                              requests=len(group.requests)):
                    self._monitor.apply_batch(events, start_index=start_index)
            except Exception as exc:  # surfaced per response, never raised
                error = exc
        for position in group.positions:
            responses[position] = ServiceResponse(
                request=window[position], result=None, served_from="update",
                batch_size=len(window), batch_id=batch_id, error=error)

    def _serve_group(self, group, window, responses, batch_id) -> Tuple[int, int]:
        order, waiters = coalesce(group)
        static_keys = [key for key in order if key[0] == "q"]
        monitor_names = [key[1] for key in order if key[0] == "m"]
        answers: Dict[Hashable, Tuple[Optional[MaxRSResult], Optional[Query],
                                      str, Optional[Exception]]] = {}
        solver_calls = 0
        monitor_passes = 0
        if static_keys:
            with obs.span("service.static", queries=len(static_keys)) as static_span:
                solver_calls = self._answer_static(static_keys, answers)
                static_span.tag(solver_calls=solver_calls)
        if monitor_names:
            with obs.span("service.monitor", reads=len(monitor_names)) as monitor_span:
                monitor_passes = self._answer_monitor(monitor_names, answers)
                monitor_span.tag(passes=monitor_passes)
        for key in order:
            result, served_query, source, error = answers[key]
            for rank, position in enumerate(waiters[key]):
                responses[position] = ServiceResponse(
                    request=window[position], result=result,
                    served_query=served_query,
                    served_from=source if rank == 0 else "coalesced",
                    batch_size=len(window), batch_id=batch_id, error=error)
        return solver_calls, monitor_passes

    def _answer_static(self, keys, answers) -> int:
        """Answer the distinct static queries of one serve group; returns the
        number of fresh solver calls made."""
        if not keys:
            return 0
        if self._engine is None:
            error = ValueError("static query on a service without a dataset")
            for key in keys:
                answers[key] = (None, None, "solver", error)
            return 0
        now = self._clock()
        fingerprint = self._engine.fingerprint
        misses: List[Hashable] = []
        for key in keys:
            cached = self._cache.get(("q", fingerprint, key[1]), now)
            if cached is not MISSING:
                served_query, result = cached
                answers[key] = (result, served_query, "cache", None)
            else:
                misses.append(key)
        if not misses:
            return 0
        # Per-micro-batch backend resolution: "auto" amortises NumPy's
        # per-call setup over the batch (repro.kernels.resolve_batch_backend);
        # the concrete query is recorded on the response and in the cache so
        # the differential guarantee is checkable.
        concrete: List[Query] = []
        for key in misses:
            query = key[1]
            if query.backend == "auto":
                query = replace(query, backend=resolve_batch_backend(
                    "auto", len(self._engine), len(misses)))
            concrete.append(query)
        solver_calls = 0
        flush: List[int] = []  # indices into misses routed through solve_batch
        if self.routing != "direct":
            try:
                plan = self._engine.batch_plan(concrete)
            except ValueError:
                plan = None  # a malformed query: fall back to per-query calls
            if plan is not None:
                self.stats.planned_shard_tasks += plan.shard_tasks
                if self.routing == "sharded":
                    flush = list(range(len(concrete)))
                else:  # "auto": plan-aware — shard only where it cuts work
                    flush = [index for index, query in enumerate(concrete)
                             if plan.cost_classes.get(query, "") == "quadratic"]
        if flush:
            try:
                results = self._engine.solve_batch([concrete[i] for i in flush])
            except Exception:
                # One malformed query fails the whole sharded flush -- fall
                # back to per-query direct calls below, which attach the
                # error to the offending response(s) and still serve the
                # rest (the per-response error contract of :meth:`serve`).
                flush = []
            else:
                solver_calls += len(flush)
                for index, result in zip(flush, results):
                    key, query = misses[index], concrete[index]
                    answers[key] = (result, query, "solver", None)
                    self._cache.put(("q", fingerprint, key[1]), (query, result), now)
        flushed = set(flush)
        for index, (key, query) in enumerate(zip(misses, concrete)):
            if index in flushed:
                continue
            try:
                result = self._engine.solve_direct(query)
                solver_calls += 1
                answers[key] = (result, query, "solver", None)
                self._cache.put(("q", fingerprint, key[1]), (query, result), now)
            except Exception as exc:
                answers[key] = (None, query, "solver", exc)
        return solver_calls

    def _answer_monitor(self, names, answers) -> int:
        """Answer the distinct monitor reads of one serve group with at most
        one shared monitor pass; returns the number of passes made."""
        if not names:
            return 0
        if self._monitor is None:
            error = ValueError("monitor read on a service without a monitor")
            for name in names:
                answers[("m", name)] = (None, None, "monitor", error)
            return 0
        now = self._clock()
        token = self._monitor.generation
        misses: List[Optional[str]] = []
        for name in names:
            cached = self._cache.get(("m", token, name), now)
            if cached is not MISSING:
                # ``cached`` may legitimately be None (a monitor over an
                # empty window): MISSING, not None, is the miss signal.
                answers[("m", name)] = (cached, None, "cache", None)
            else:
                misses.append(name)
        if not misses:
            return 0
        try:
            current = self._monitor.current()
        except Exception as exc:
            for name in misses:
                answers[("m", name)] = (None, None, "monitor", exc)
            return 0
        for name in misses:
            result: Optional[MaxRSResult] = None
            error: Optional[Exception] = None
            if isinstance(current, dict):
                if name is None and len(current) == 1:
                    result = next(iter(current.values()))
                elif name in current:
                    result = current[name]
                else:
                    error = KeyError(
                        "unknown standing query %r (registered: %s)"
                        % (name, ", ".join(sorted(current))))
            elif name is None:
                result = current
            else:
                error = KeyError(
                    "monitor answers a single hotspot query; got name %r" % (name,))
            answers[("m", name)] = (result, None, "monitor", error)
            if error is None:
                self._cache.put(("m", token, name), result, now)
        return 1
