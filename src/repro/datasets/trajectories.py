"""Trajectory workloads for colored MaxRS (the wildlife-monitoring scenario).

Section 1.3 motivates colored MaxRS with trajectory data [ZGH+22]: each
monitored animal contributes a trajectory, points are sampled from each
trajectory and colored by the animal's identity, and the goal is to place a
tracking device covering as many distinct animals as possible.  The generator
here produces exactly that: one bounded random walk per entity, with all of
its sampled positions sharing one color.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from ..core.sampling import default_rng

__all__ = ["trajectory_colored_points"]

Coords = Tuple[float, ...]


def trajectory_colored_points(
    entities: int,
    samples_per_entity: int = 20,
    dim: int = 2,
    extent: float = 10.0,
    step_std: float = 0.3,
    seed=None,
) -> Tuple[List[Coords], List[Hashable]]:
    """Sampled positions of ``entities`` random-walk trajectories, colored by entity.

    Parameters
    ----------
    entities:
        Number of monitored entities (= number of colors).
    samples_per_entity:
        Number of positions sampled along each trajectory.
    dim:
        Ambient dimension (2 for the paper's use case, higher supported).
    extent:
        Trajectories start uniformly inside ``[0, extent]^dim`` and are
        reflected back into that box.
    step_std:
        Standard deviation of each random-walk step.
    seed:
        Seed or numpy Generator.

    Returns
    -------
    (points, colors)
        Parallel lists; ``colors[i]`` is the integer id of the entity whose
        trajectory produced ``points[i]``.
    """
    if entities < 0 or samples_per_entity < 1:
        raise ValueError("entities must be >= 0 and samples_per_entity >= 1")
    rng = default_rng(seed)
    points: List[Coords] = []
    colors: List[Hashable] = []
    for entity in range(entities):
        position = rng.uniform(0.0, extent, size=dim)
        for _ in range(samples_per_entity):
            step = rng.normal(0.0, step_std, size=dim)
            position = position + step
            # Reflect back into the bounding box so trajectories stay comparable.
            for axis in range(dim):
                if position[axis] < 0.0:
                    position[axis] = -position[axis]
                elif position[axis] > extent:
                    position[axis] = 2.0 * extent - position[axis]
            points.append(tuple(float(v) for v in position))
            colors.append(entity)
    return points, colors
