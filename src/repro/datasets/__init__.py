"""Synthetic workload generators.

The paper motivates MaxRS with spatial-database workloads -- hotspot
detection over infection or customer locations, wildlife-trajectory
monitoring, facility analysis -- but evaluates nothing empirically (it is a
theory paper).  The generators here synthesise those motivating workloads so
that every theorem can be validated on data with the structure the paper has
in mind (see DESIGN.md, experiments E1-E10):

* :mod:`repro.datasets.generators` -- uniform and Gaussian-hotspot point
  clouds, optionally weighted;
* :mod:`repro.datasets.planted` -- instances whose exact optimum is known by
  construction (the validation oracle for dimensions where no exact algorithm
  is practical);
* :mod:`repro.datasets.trajectories` -- colored points sampled from random
  walks, one color per entity (the wildlife-monitoring scenario of Section 1.3);
* :mod:`repro.datasets.streams` -- insert/delete update streams (the COVID
  hotspot-monitoring scenario of Section 1.1).
"""

from .generators import (
    clustered_points,
    uniform_points,
    uniform_weighted_points,
    weighted_hotspot_points,
)
from .planted import planted_ball_instance, planted_colored_instance
from .streams import (
    UpdateEvent,
    UpdateStream,
    adversarial_churn_stream,
    burst_stream,
    drift_stream,
    hotspot_monitoring_stream,
    sliding_window_stream,
)
from .requests import (
    RequestEvent,
    RequestTrace,
    default_query_catalog,
    load_trace,
    request_from_dict,
    request_to_dict,
    request_trace,
    save_trace,
)
from .trajectories import trajectory_colored_points
from .io import PointTable, read_points_csv, write_points_csv

__all__ = [
    "uniform_points",
    "uniform_weighted_points",
    "clustered_points",
    "weighted_hotspot_points",
    "planted_ball_instance",
    "planted_colored_instance",
    "trajectory_colored_points",
    "UpdateEvent",
    "UpdateStream",
    "hotspot_monitoring_stream",
    "sliding_window_stream",
    "drift_stream",
    "burst_stream",
    "adversarial_churn_stream",
    "RequestEvent",
    "RequestTrace",
    "default_query_catalog",
    "request_trace",
    "request_to_dict",
    "request_from_dict",
    "save_trace",
    "load_trace",
    "PointTable",
    "read_points_csv",
    "write_points_csv",
]
