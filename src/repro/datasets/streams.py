"""Insert/delete update streams for dynamic MaxRS (the hotspot-monitoring scenario).

Section 1.1 motivates dynamic MaxRS with real-time hotspot monitoring:
locations of newly infected patients are inserted, locations of recovered
patients are deleted, and the authorities continuously ask for the current
hotspot.  :class:`UpdateStream` is a simple ordered list of
:class:`UpdateEvent` objects that :class:`repro.core.dynamic.DynamicMaxRS`
(and the exact re-computation baseline used in experiment E2) can replay.

Besides the two scenario generators the reproduction shipped with
(:func:`hotspot_monitoring_stream`, :func:`sliding_window_stream`), this
module provides the workload families the streaming stress suite replays
against every monitor:

* :func:`drift_stream` -- cluster centers random-walk across the domain, so
  the hotspot *moves* and stale cached answers are wrong answers;
* :func:`burst_stream` -- a quiet background punctuated by dense insertion
  bursts that are later deleted en masse, the flash-crowd shape;
* :func:`adversarial_churn_stream` -- inserts pinned near the corners of the
  monitors' spatial tiling so every event lands in the maximum number of
  tiles, with immediate LIFO deletions: the worst case for dirty-shard
  accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from ..core.sampling import default_rng
from .generators import clustered_points

__all__ = [
    "UpdateEvent",
    "UpdateStream",
    "hotspot_monitoring_stream",
    "sliding_window_stream",
    "drift_stream",
    "burst_stream",
    "adversarial_churn_stream",
]

Coords = Tuple[float, ...]


@dataclass(frozen=True)
class UpdateEvent:
    """One update: an insertion of a weighted point or a deletion by stream index.

    ``kind`` is ``"insert"`` or ``"delete"``.  For insertions ``point`` and
    ``weight`` are set; for deletions ``target`` refers to the position (in
    the stream) of the insertion being undone.  ``timestamp`` (optional,
    non-decreasing along a stream) drives the time-based sliding windows;
    ``color`` (optional) carries the category label colored standing queries
    aggregate over.
    """

    kind: str
    point: Optional[Coords] = None
    weight: float = 1.0
    target: Optional[int] = None
    timestamp: Optional[float] = None
    color: Optional[Hashable] = None

    def __post_init__(self):
        if self.kind not in ("insert", "delete"):
            raise ValueError("event kind must be 'insert' or 'delete'")
        if self.kind == "insert" and self.point is None:
            raise ValueError("insert events need a point")
        if self.kind == "delete" and self.target is None:
            raise ValueError("delete events need the index of the insertion to undo")


class UpdateStream:
    """An ordered sequence of update events, replayable against any structure."""

    def __init__(self, events: Sequence[UpdateEvent]):
        self.events: List[UpdateEvent] = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[UpdateEvent]:
        return iter(self.events)

    def live_points_after(self, prefix: int) -> List[Tuple[Coords, float]]:
        """Points alive after the first ``prefix`` events (for exact baselines)."""
        alive = {}
        for index, event in enumerate(self.events[:prefix]):
            if event.kind == "insert":
                alive[index] = (event.point, event.weight)
            else:
                alive.pop(event.target, None)
        return list(alive.values())


def hotspot_monitoring_stream(
    updates: int,
    dim: int = 2,
    extent: float = 10.0,
    clusters: int = 3,
    delete_fraction: float = 0.35,
    seed=None,
) -> UpdateStream:
    """A COVID-style stream: clustered insertions interleaved with random deletions.

    Events carry unit-spaced timestamps, so the stream also drives the
    time-based sliding windows.
    """
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError("delete_fraction must lie in [0, 1)")
    rng = default_rng(seed)
    insert_count = max(1, int(round(updates * (1.0 - delete_fraction))))
    points = clustered_points(insert_count, dim=dim, extent=extent,
                              clusters=clusters, seed=rng)
    events: List[UpdateEvent] = []
    live_insert_indices: List[int] = []
    inserted = 0
    while len(events) < updates:
        remaining_inserts = insert_count - inserted
        if remaining_inserts == 0 and not live_insert_indices:
            break
        want_delete = bool(
            live_insert_indices
            and (remaining_inserts == 0 or rng.random() < delete_fraction)
        )
        if want_delete:
            position = int(rng.integers(0, len(live_insert_indices)))
            target = live_insert_indices.pop(position)
            events.append(UpdateEvent(kind="delete", target=target,
                                      timestamp=float(len(events))))
        else:
            events.append(UpdateEvent(kind="insert", point=points[inserted], weight=1.0,
                                      timestamp=float(len(events))))
            live_insert_indices.append(len(events) - 1)
            inserted += 1
    return UpdateStream(events)


def sliding_window_stream(
    total_points: int,
    window: int,
    dim: int = 2,
    extent: float = 10.0,
    clusters: int = 3,
    seed=None,
) -> UpdateStream:
    """A sliding-window stream: every insertion beyond ``window`` expires the oldest point.

    This matches monitoring scenarios where only the most recent ``window``
    observations matter (e.g. infections within the last two weeks).  Events
    carry unit-spaced timestamps.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    rng = default_rng(seed)
    points = clustered_points(total_points, dim=dim, extent=extent,
                              clusters=clusters, seed=rng)
    events: List[UpdateEvent] = []
    insert_event_indices: List[int] = []
    for point in points:
        # Expire the oldest observation first so the live set never exceeds
        # the window, then insert the new one.
        if len(insert_event_indices) == window:
            oldest = insert_event_indices.pop(0)
            events.append(UpdateEvent(kind="delete", target=oldest,
                                      timestamp=float(len(events))))
        events.append(UpdateEvent(kind="insert", point=point, weight=1.0,
                                  timestamp=float(len(events))))
        insert_event_indices.append(len(events) - 1)
    return UpdateStream(events)


def drift_stream(
    updates: int,
    dim: int = 2,
    extent: float = 10.0,
    clusters: int = 3,
    drift: float = 0.15,
    delete_fraction: float = 0.4,
    dt: float = 1.0,
    seed=None,
) -> UpdateStream:
    """A concept-drift stream: cluster centers random-walk across the domain.

    Each insertion is drawn around one of ``clusters`` centers that take a
    Gaussian step of scale ``drift`` per event, so the hotspot migrates over
    the stream's lifetime; deletions expire the *oldest* live point (with
    probability ``delete_fraction`` per event), mimicking observations aging
    out.  Events carry timestamps spaced ``dt`` apart, so the stream also
    exercises the time-based sliding windows.  The monitoring literature
    calls this the non-stationary case: any monitor that caches regional
    answers must invalidate them as mass drifts between regions.
    """
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError("delete_fraction must lie in [0, 1)")
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    rng = default_rng(seed)
    centers = [rng.uniform(0.0, extent, size=dim) for _ in range(clusters)]
    std = extent / (6.0 * clusters)
    events: List[UpdateEvent] = []
    live_insert_indices: List[int] = []
    for step in range(updates):
        for center in centers:
            center += rng.normal(0.0, drift, size=dim)
        if live_insert_indices and rng.random() < delete_fraction:
            target = live_insert_indices.pop(0)  # expire the oldest
            events.append(UpdateEvent(kind="delete", target=target, timestamp=step * dt))
        else:
            center = centers[int(rng.integers(0, clusters))]
            point = tuple(float(c) for c in center + rng.normal(0.0, std, size=dim))
            events.append(UpdateEvent(kind="insert", point=point, timestamp=step * dt))
            live_insert_indices.append(len(events) - 1)
    return UpdateStream(events)


def burst_stream(
    updates: int,
    dim: int = 2,
    extent: float = 10.0,
    burst_every: int = 60,
    burst_size: int = 20,
    burst_std: float = 0.3,
    background_delete_fraction: float = 0.3,
    dt: float = 1.0,
    seed=None,
) -> UpdateStream:
    """A flash-crowd stream: quiet background traffic punctuated by bursts.

    Background events are uniform insertions (mixed with deletions of random
    live points).  Every ``burst_every`` events a *burst* fires: ``burst_size``
    insertions packed within ``burst_std`` of a random burst site, followed --
    one burst period later -- by the deletion of that entire burst.  The live
    set therefore oscillates between diffuse and sharply peaked, the shape
    that separates monitors with per-region caching (only the burst's tiles
    go dirty) from from-scratch recomputation.  Timestamps advance ``dt`` per
    event.
    """
    if burst_every < 1 or burst_size < 1:
        raise ValueError("burst_every and burst_size must be >= 1")
    if not 0.0 <= background_delete_fraction < 1.0:
        raise ValueError("background_delete_fraction must lie in [0, 1)")
    rng = default_rng(seed)
    events: List[UpdateEvent] = []
    background_live: List[int] = []
    pending_burst: List[int] = []  # insert indices of the last burst, not yet deleted
    since_burst = 0
    while len(events) < updates:
        since_burst += 1
        if since_burst >= burst_every:
            since_burst = 0
            # Tear down the previous burst, then fire a new one.
            for target in pending_burst:
                if len(events) >= updates:
                    break
                events.append(UpdateEvent(kind="delete", target=target,
                                          timestamp=float(len(events)) * dt))
            pending_burst = []
            site = rng.uniform(0.0, extent, size=dim)
            for _ in range(burst_size):
                if len(events) >= updates:
                    break
                point = tuple(float(c) for c in site + rng.normal(0.0, burst_std, size=dim))
                events.append(UpdateEvent(kind="insert", point=point,
                                          timestamp=float(len(events)) * dt))
                pending_burst.append(len(events) - 1)
            continue
        if background_live and rng.random() < background_delete_fraction:
            position = int(rng.integers(0, len(background_live)))
            target = background_live.pop(position)
            events.append(UpdateEvent(kind="delete", target=target,
                                      timestamp=float(len(events)) * dt))
        else:
            point = tuple(float(c) for c in rng.uniform(0.0, extent, size=dim))
            events.append(UpdateEvent(kind="insert", point=point,
                                      timestamp=float(len(events)) * dt))
            background_live.append(len(events) - 1)
    return UpdateStream(events)


def adversarial_churn_stream(
    updates: int,
    radius: float = 1.0,
    tile_side: Optional[float] = None,
    span: int = 4,
    jitter: float = 0.05,
    churn_depth: int = 3,
    dt: float = 1.0,
    seed=None,
) -> UpdateStream:
    """A worst-case stream for dirty-shard monitors: corner-pinned LIFO churn.

    Insertions land within ``jitter * radius`` of the corners of the
    ``tile_side`` lattice (default ``4 * radius``, matching
    :class:`repro.streaming.ShardedMaxRSMonitor`), where a point's halo
    overlaps the maximum number of tiles -- every event dirties four shards
    instead of one.  The stream hops between corners spread over a
    ``span x span`` lattice patch, and after every few insertions deletes the
    most recent ``churn_depth`` live points (LIFO), so shard caches are
    invalidated at the highest possible rate while the live set stays small.
    Timestamps advance ``dt`` per event.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if span < 1 or churn_depth < 1:
        raise ValueError("span and churn_depth must be >= 1")
    side = 4.0 * radius if tile_side is None else float(tile_side)
    rng = default_rng(seed)
    events: List[UpdateEvent] = []
    live_stack: List[int] = []
    inserted_since_churn = 0
    while len(events) < updates:
        if inserted_since_churn > churn_depth and live_stack:
            for _ in range(min(churn_depth, len(live_stack))):
                if len(events) >= updates:
                    break
                target = live_stack.pop()  # LIFO: undo the freshest inserts
                events.append(UpdateEvent(kind="delete", target=target,
                                          timestamp=float(len(events)) * dt))
            inserted_since_churn = 0
            continue
        corner = (float(rng.integers(0, span + 1)) * side,
                  float(rng.integers(0, span + 1)) * side)
        point = tuple(c + float(rng.normal(0.0, jitter * radius)) for c in corner)
        events.append(UpdateEvent(kind="insert", point=point,
                                  timestamp=float(len(events)) * dt))
        live_stack.append(len(events) - 1)
        inserted_since_churn += 1
    return UpdateStream(events)
