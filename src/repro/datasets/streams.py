"""Insert/delete update streams for dynamic MaxRS (the hotspot-monitoring scenario).

Section 1.1 motivates dynamic MaxRS with real-time hotspot monitoring:
locations of newly infected patients are inserted, locations of recovered
patients are deleted, and the authorities continuously ask for the current
hotspot.  :class:`UpdateStream` is a simple ordered list of
:class:`UpdateEvent` objects that :class:`repro.core.dynamic.DynamicMaxRS`
(and the exact re-computation baseline used in experiment E2) can replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.sampling import default_rng
from .generators import clustered_points

__all__ = ["UpdateEvent", "UpdateStream", "hotspot_monitoring_stream", "sliding_window_stream"]

Coords = Tuple[float, ...]


@dataclass(frozen=True)
class UpdateEvent:
    """One update: an insertion of a weighted point or a deletion by stream index.

    ``kind`` is ``"insert"`` or ``"delete"``.  For insertions ``point`` and
    ``weight`` are set; for deletions ``target`` refers to the position (in
    the stream) of the insertion being undone.
    """

    kind: str
    point: Optional[Coords] = None
    weight: float = 1.0
    target: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("insert", "delete"):
            raise ValueError("event kind must be 'insert' or 'delete'")
        if self.kind == "insert" and self.point is None:
            raise ValueError("insert events need a point")
        if self.kind == "delete" and self.target is None:
            raise ValueError("delete events need the index of the insertion to undo")


class UpdateStream:
    """An ordered sequence of update events, replayable against any structure."""

    def __init__(self, events: Sequence[UpdateEvent]):
        self.events: List[UpdateEvent] = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[UpdateEvent]:
        return iter(self.events)

    def live_points_after(self, prefix: int) -> List[Tuple[Coords, float]]:
        """Points alive after the first ``prefix`` events (for exact baselines)."""
        alive = {}
        for index, event in enumerate(self.events[:prefix]):
            if event.kind == "insert":
                alive[index] = (event.point, event.weight)
            else:
                alive.pop(event.target, None)
        return list(alive.values())


def hotspot_monitoring_stream(
    updates: int,
    dim: int = 2,
    extent: float = 10.0,
    clusters: int = 3,
    delete_fraction: float = 0.35,
    seed=None,
) -> UpdateStream:
    """A COVID-style stream: clustered insertions interleaved with random deletions."""
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError("delete_fraction must lie in [0, 1)")
    rng = default_rng(seed)
    insert_count = max(1, int(round(updates * (1.0 - delete_fraction))))
    points = clustered_points(insert_count, dim=dim, extent=extent,
                              clusters=clusters, seed=rng)
    events: List[UpdateEvent] = []
    live_insert_indices: List[int] = []
    inserted = 0
    while len(events) < updates:
        remaining_inserts = insert_count - inserted
        if remaining_inserts == 0 and not live_insert_indices:
            break
        want_delete = bool(
            live_insert_indices
            and (remaining_inserts == 0 or rng.random() < delete_fraction)
        )
        if want_delete:
            position = int(rng.integers(0, len(live_insert_indices)))
            target = live_insert_indices.pop(position)
            events.append(UpdateEvent(kind="delete", target=target))
        else:
            events.append(UpdateEvent(kind="insert", point=points[inserted], weight=1.0))
            live_insert_indices.append(len(events) - 1)
            inserted += 1
    return UpdateStream(events)


def sliding_window_stream(
    total_points: int,
    window: int,
    dim: int = 2,
    extent: float = 10.0,
    clusters: int = 3,
    seed=None,
) -> UpdateStream:
    """A sliding-window stream: every insertion beyond ``window`` expires the oldest point.

    This matches monitoring scenarios where only the most recent ``window``
    observations matter (e.g. infections within the last two weeks).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    rng = default_rng(seed)
    points = clustered_points(total_points, dim=dim, extent=extent,
                              clusters=clusters, seed=rng)
    events: List[UpdateEvent] = []
    insert_event_indices: List[int] = []
    for point in points:
        # Expire the oldest observation first so the live set never exceeds
        # the window, then insert the new one.
        if len(insert_event_indices) == window:
            oldest = insert_event_indices.pop(0)
            events.append(UpdateEvent(kind="delete", target=oldest))
        events.append(UpdateEvent(kind="insert", point=point, weight=1.0))
        insert_event_indices.append(len(events) - 1)
    return UpdateStream(events)
