"""CSV import/export of point workloads.

The command-line interface (``python -m repro``) reads and writes point sets
as plain CSV so workloads can be exchanged with spreadsheets, GIS exports or
other tools.  The format is deliberately small:

* one header row;
* coordinate columns named ``x1, x2, ..., xd`` (aliases ``x, y, z`` are
  accepted on input);
* an optional ``weight`` column;
* an optional ``color`` column.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["PointTable", "write_points_csv", "read_points_csv"]

Coords = Tuple[float, ...]

_COORD_ALIASES = {"x": "x1", "y": "x2", "z": "x3"}


@dataclass
class PointTable:
    """A point workload loaded from (or destined for) a CSV file."""

    points: List[Coords]
    weights: Optional[List[float]] = None
    colors: Optional[List[str]] = None

    @property
    def dim(self) -> int:
        return len(self.points[0]) if self.points else 0

    def __len__(self) -> int:
        return len(self.points)


def write_points_csv(
    path: str,
    points: Sequence[Sequence[float]],
    *,
    weights: Optional[Sequence[float]] = None,
    colors: Optional[Sequence[object]] = None,
) -> None:
    """Write a point set (plus optional weights / colors) to ``path``."""
    points = [tuple(float(v) for v in p) for p in points]
    if weights is not None and len(weights) != len(points):
        raise ValueError("got %d weights for %d points" % (len(weights), len(points)))
    if colors is not None and len(colors) != len(points):
        raise ValueError("got %d colors for %d points" % (len(colors), len(points)))
    dim = len(points[0]) if points else 0
    header = ["x%d" % (i + 1) for i in range(dim)]
    if weights is not None:
        header.append("weight")
    if colors is not None:
        header.append("color")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for index, point in enumerate(points):
            row: List[object] = list(point)
            if weights is not None:
                row.append(weights[index])
            if colors is not None:
                row.append(colors[index])
            writer.writerow(row)


def read_points_csv(path: str) -> PointTable:
    """Read a point set written by :func:`write_points_csv` (or compatible)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return PointTable(points=[])
        normalized = [_COORD_ALIASES.get(name.strip().lower(), name.strip().lower())
                      for name in header]
        coord_columns = [
            (index, name) for index, name in enumerate(normalized)
            if name.startswith("x") and name[1:].isdigit()
        ]
        coord_columns.sort(key=lambda item: int(item[1][1:]))
        if not coord_columns:
            raise ValueError(
                "no coordinate columns found in %r; expected headers like x1, x2 or x, y" % path
            )
        weight_index = normalized.index("weight") if "weight" in normalized else None
        color_index = normalized.index("color") if "color" in normalized else None

        points: List[Coords] = []
        weights: List[float] = []
        colors: List[str] = []
        for row in reader:
            if not row or all(not cell.strip() for cell in row):
                continue
            points.append(tuple(float(row[index]) for index, _ in coord_columns))
            if weight_index is not None:
                weights.append(float(row[weight_index]))
            if color_index is not None:
                colors.append(row[color_index])
    return PointTable(
        points=points,
        weights=weights if weight_index is not None else None,
        colors=colors if color_index is not None else None,
    )
