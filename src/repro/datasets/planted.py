"""Instances whose exact optimum is known by construction.

Exact MaxRS for ``d``-balls in ``d >= 3`` costs roughly ``O(n^d)`` (the paper
only cites the arrangement bound), so the approximation guarantees of
Theorems 1.1, 1.2 and 1.5 cannot be validated against an exact solver there.
Planted instances sidestep this: a cluster of ``k`` points inside a ball of
the query radius, placed far from sparse background noise whose points are
pairwise farther than the query diameter, has optimum exactly ``k`` (a ball
can cover the whole cluster, and no ball can cover two background points or a
background point together with the cluster).
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, List, Tuple

from ..core.sampling import default_rng

__all__ = ["planted_ball_instance", "planted_colored_instance"]

Coords = Tuple[float, ...]


def _sparse_background(
    count: int,
    dim: int,
    spacing: float,
    offset: float,
    rng,
) -> List[Coords]:
    """Background points on a jittered lattice with pairwise distance > spacing."""
    if count <= 0:
        return []
    per_axis = max(2, math.ceil(count ** (1.0 / dim)) + 1)
    jitter = spacing * 0.05
    points: List[Coords] = []
    for index in itertools.product(range(per_axis), repeat=dim):
        if len(points) >= count:
            break
        base = tuple(offset + i * spacing for i in index)
        points.append(tuple(
            float(b + rng.uniform(-jitter, jitter)) for b in base
        ))
    return points


def planted_ball_instance(
    n: int,
    planted: int,
    dim: int = 2,
    radius: float = 1.0,
    seed=None,
) -> Tuple[List[Coords], int]:
    """Unweighted instance with a planted cluster; returns ``(points, opt)``.

    ``planted`` points are placed inside a ball of the query radius centered
    at the origin; the remaining ``n - planted`` points form sparse background
    noise.  The exact unweighted optimum for a query ball of the given radius
    is ``max(planted, 1)`` provided ``planted >= 1``.
    """
    if planted < 1 or planted > n:
        raise ValueError("planted must satisfy 1 <= planted <= n")
    rng = default_rng(seed)
    cluster: List[Coords] = []
    for _ in range(planted):
        direction = rng.standard_normal(dim)
        norm = math.sqrt(float(sum(v * v for v in direction))) or 1.0
        # Uniform radius in [0, 0.9 r]: strictly inside the query ball.
        length = radius * 0.9 * float(rng.random()) ** (1.0 / dim)
        cluster.append(tuple(float(length * v / norm) for v in direction))

    spacing = 2.5 * radius
    offset = 10.0 * radius
    background = _sparse_background(n - planted, dim, spacing, offset, rng)
    return cluster + background, planted


def planted_colored_instance(
    n: int,
    planted_colors: int,
    dim: int = 2,
    radius: float = 1.0,
    background_colors: int = 3,
    seed=None,
) -> Tuple[List[Coords], List[Hashable], int]:
    """Colored instance with a planted rainbow cluster; returns ``(points, colors, opt)``.

    A cluster of ``planted_colors`` distinctly colored points sits inside a
    query ball at the origin; the background re-uses a small palette of
    ``background_colors`` colors (all of which also appear in the cluster when
    possible), so no far-away placement can beat the cluster.  The exact
    colored optimum is ``planted_colors``.
    """
    if planted_colors < 1 or planted_colors > n:
        raise ValueError("planted_colors must satisfy 1 <= planted_colors <= n")
    if background_colors < 1:
        raise ValueError("background_colors must be >= 1")
    rng = default_rng(seed)
    cluster_points, _ = planted_ball_instance(planted_colors, planted_colors,
                                              dim=dim, radius=radius, seed=rng)
    cluster_colors: List[Hashable] = list(range(planted_colors))

    background_count = n - planted_colors
    spacing = 2.5 * radius
    offset = 10.0 * radius
    background_points = _sparse_background(background_count, dim, spacing, offset, rng)
    palette = min(background_colors, planted_colors)
    background_color_list: List[Hashable] = [
        int(rng.integers(0, palette)) for _ in background_points
    ]
    points = cluster_points + background_points
    colors = cluster_colors + background_color_list
    return points, colors, planted_colors
