"""Point-cloud generators: uniform background noise and Gaussian hotspots.

All generators are deterministic given a seed and return plain coordinate
tuples (plus separate weight lists where applicable), which every solver in
the library accepts directly.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.sampling import default_rng

__all__ = [
    "uniform_points",
    "uniform_weighted_points",
    "clustered_points",
    "weighted_hotspot_points",
]

Coords = Tuple[float, ...]


def uniform_points(
    n: int,
    dim: int = 2,
    extent: float = 10.0,
    seed=None,
) -> List[Coords]:
    """``n`` points drawn uniformly from the cube ``[0, extent]^dim``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    rng = default_rng(seed)
    pts = rng.uniform(0.0, extent, size=(n, dim))
    return [tuple(float(v) for v in row) for row in pts]


def uniform_weighted_points(
    n: int,
    dim: int = 2,
    extent: float = 10.0,
    weight_range: Tuple[float, float] = (0.5, 2.0),
    seed=None,
) -> Tuple[List[Coords], List[float]]:
    """Uniform points with i.i.d. uniform weights in ``weight_range``."""
    low, high = weight_range
    if low <= 0 or high < low:
        raise ValueError("weight_range must satisfy 0 < low <= high")
    rng = default_rng(seed)
    coords = uniform_points(n, dim=dim, extent=extent, seed=rng)
    weights = [float(w) for w in rng.uniform(low, high, size=n)]
    return coords, weights


def clustered_points(
    n: int,
    dim: int = 2,
    extent: float = 10.0,
    clusters: int = 3,
    cluster_std: float = 0.5,
    background_fraction: float = 0.3,
    seed=None,
) -> List[Coords]:
    """Gaussian hotspots over a uniform background (the COVID / retail scenario).

    ``clusters`` Gaussian blobs of standard deviation ``cluster_std`` receive
    ``(1 - background_fraction)`` of the points; the rest are uniform noise.
    """
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError("background_fraction must lie in [0, 1]")
    rng = default_rng(seed)
    background = int(round(n * background_fraction))
    clustered = n - background
    centers = rng.uniform(extent * 0.2, extent * 0.8, size=(clusters, dim))
    assignments = rng.integers(0, clusters, size=clustered)
    points: List[Coords] = []
    for cluster_index in assignments:
        sample = centers[cluster_index] + rng.normal(0.0, cluster_std, size=dim)
        points.append(tuple(float(v) for v in sample))
    points.extend(uniform_points(background, dim=dim, extent=extent, seed=rng))
    return points


def weighted_hotspot_points(
    n: int,
    dim: int = 2,
    extent: float = 10.0,
    clusters: int = 3,
    cluster_std: float = 0.5,
    seed=None,
) -> Tuple[List[Coords], List[float]]:
    """Hotspot points where cluster members carry larger weights than noise.

    Models the retail scenario of Section 1: customers near a hotspot are more
    valuable to cover, so a weighted MaxRS placement should land there.
    """
    rng = default_rng(seed)
    coords = clustered_points(
        n, dim=dim, extent=extent, clusters=clusters,
        cluster_std=cluster_std, background_fraction=0.4, seed=rng,
    )
    boundary = int(round(n * 0.6))
    weights = [float(w) for w in rng.uniform(1.5, 3.0, size=boundary)]
    weights.extend(float(w) for w in rng.uniform(0.5, 1.0, size=n - boundary))
    return coords, weights
