"""Synthetic request traces for the query-serving front end.

The serving layer (:mod:`repro.service`) is exercised with *request traces*:
ordered sequences of heterogeneous service requests -- static MaxRS queries
against a fixed dataset, hotspot reads against a live stream monitor, and
update batches that mutate the monitor's live set.  This module synthesises
the traffic shapes the serving benchmarks and tests replay:

* an **open-loop arrival process** -- requests arrive on exponential
  interarrival gaps at a base rate, punctuated by *hotspot windows* during
  which the arrival rate multiplies (the flash-crowd shape that makes
  micro-batching worthwhile: requests pile up faster than one-at-a-time
  service can drain them);
* **Zipf-distributed query popularity** over a finite catalog, so a few
  queries dominate the traffic (the coalescing / caching opportunity);
* **update interleaving** -- every so often an update batch from a
  :func:`~repro.datasets.streams.hotspot_monitoring_stream` arrives, which
  invalidates monitor-derived cached answers and forces fresh monitor passes.

Traces round-trip through JSON lines (:func:`save_trace` /
:func:`load_trace`) so a CLI ``repro serve --replay trace.jsonl`` run is
reproducible byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..engine.planner import Query
from ..core.sampling import default_rng
from .streams import UpdateEvent, hotspot_monitoring_stream

__all__ = [
    "RequestEvent",
    "RequestTrace",
    "default_query_catalog",
    "zoo_query_catalog",
    "request_trace",
    "request_to_dict",
    "request_from_dict",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class RequestEvent:
    """One request of a serving trace.

    ``kind`` selects the request family:

    * ``"query"`` -- a static MaxRS query (``query`` is set) against the
      service's fixed dataset;
    * ``"monitor"`` -- a hotspot read against the service's live stream
      monitor (``name`` optionally selects one standing query of a
      multi-query monitor);
    * ``"update"`` -- a batch of stream events (``events``) to apply to the
      monitor, invalidating monitor-derived cached answers.

    ``arrival`` is the request's open-loop arrival time in seconds from the
    start of the trace (non-decreasing along a trace).
    """

    kind: str
    arrival: float = 0.0
    query: Optional[Query] = None
    name: Optional[str] = None
    events: Tuple[UpdateEvent, ...] = ()

    def __post_init__(self):
        if self.kind not in ("query", "monitor", "update"):
            raise ValueError("request kind must be 'query', 'monitor' or 'update'")
        if self.kind == "query" and self.query is None:
            raise ValueError("query requests need a query")
        if self.kind == "update" and not self.events:
            raise ValueError("update requests need at least one stream event")


class RequestTrace:
    """An ordered, replayable sequence of :class:`RequestEvent` objects."""

    def __init__(self, requests: Sequence[RequestEvent]):
        self.requests: List[RequestEvent] = list(requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[RequestEvent]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    @property
    def counts(self) -> dict:
        """Request counts per kind plus the total stream events carried."""
        counts = {"query": 0, "monitor": 0, "update": 0, "stream_events": 0}
        for request in self.requests:
            counts[request.kind] += 1
            counts["stream_events"] += len(request.events)
        return counts


def default_query_catalog(
    *,
    colored: bool = False,
    heavy: bool = True,
    backend: str = "auto",
) -> List[Query]:
    """The standard static-query catalog the synthetic traces draw from.

    Mostly linearithmic rectangle sweeps (cheap enough that a 10k-request
    trace replays in seconds), a few exact disk sweeps and approximate
    d-ball queries (``heavy=True``), and -- when the target dataset carries
    colors -- a pair of colored disk queries.
    """
    catalog: List[Query] = []
    for width, height in ((1.0, 1.0), (2.0, 1.0), (1.0, 2.0), (2.0, 2.0),
                          (0.5, 0.5), (3.0, 1.5), (1.5, 3.0), (4.0, 4.0)):
        catalog.append(Query.rectangle(width, height, backend=backend))
    if heavy:
        for radius in (0.5, 1.0):
            catalog.append(Query.disk(radius, backend=backend))
        for epsilon in (0.25, 0.4):
            catalog.append(Query.disk_approx(1.0, epsilon=epsilon, seed=7,
                                             backend=backend))
    if colored:
        catalog.append(Query.colored_disk(0.75, backend=backend))
        catalog.append(Query.colored_disk_approx(1.0, epsilon=0.4, seed=7,
                                                 backend=backend))
    return catalog


def zoo_query_catalog(
    *,
    families: Sequence[str] = ("topk", "decayed", "batched"),
    backend: str = "auto",
) -> List[Query]:
    """Long-tail query families for heterogeneous-zoo traces.

    ``families`` selects which family mixes to include:

    * ``"topk"`` -- greedy disjoint top-k rectangle/disk placements;
    * ``"decayed"`` -- arrival-order exponential decay (planar);
    * ``"batched"`` -- batched rectangle sizes (planar; use
      ``"batched_interval"`` for the 1-d lengths variant);
    * ``"colored_box3d"`` -- exact colored boxes (needs a 3-d colored
      dataset, so it is off by default for planar traces).

    Unknown family names raise so a typo cannot silently thin the mix.
    """
    known = {"topk", "decayed", "batched", "batched_interval", "colored_box3d"}
    unknown = [family for family in families if family not in known]
    if unknown:
        raise ValueError("unknown zoo families %r (known: %s)"
                         % (unknown, ", ".join(sorted(known))))
    catalog: List[Query] = []
    for family in families:
        if family == "topk":
            catalog.append(Query.topk_rectangle(1.5, 1.0, 3, backend=backend))
            catalog.append(Query.topk_disk(0.75, 2, backend=backend))
        elif family == "decayed":
            catalog.append(Query.decayed_disk(0.8, 0.9, backend=backend))
            catalog.append(Query.decayed_rectangle(1.0, 1.0, 0.95,
                                                   backend=backend))
        elif family == "batched":
            catalog.append(Query.batched_rectangles(
                ((1.0, 1.0), (2.0, 1.5), (0.5, 2.0)), backend=backend))
        elif family == "batched_interval":
            catalog.append(Query.batched_intervals((0.5, 1.0, 2.0),
                                                   backend=backend))
        else:  # colored_box3d
            catalog.append(Query.colored_box3d(1.5, 1.5, 1.5))
            catalog.append(Query.colored_box3d(2.5, 2.0, 1.0))
    return catalog


def request_trace(
    n_requests: int,
    *,
    catalog: Optional[Sequence[Query]] = None,
    zipf_s: float = 1.1,
    shuffle: bool = True,
    monitor_fraction: float = 0.25,
    update_every: int = 40,
    update_batch: int = 16,
    rate: float = 500.0,
    hotspot_every: int = 1000,
    hotspot_length: int = 200,
    hotspot_boost: float = 8.0,
    extent: float = 10.0,
    seed=None,
    families: Optional[Sequence[str]] = None,
    families_backend: str = "auto",
) -> RequestTrace:
    """Synthesise a mixed open-loop serving trace of ``n_requests`` requests.

    Parameters
    ----------
    catalog:
        The static queries traffic draws from (default:
        :func:`default_query_catalog`).  Popularity is Zipf with exponent
        ``zipf_s`` over a random permutation of the catalog
        (``shuffle=True``, the default) or over the catalog's own order
        (``shuffle=False``: the first entry is the most popular -- how the
        benchmarks pin expensive queries to the popularity tail), so a
        handful of queries receive most of the traffic.
    families:
        Optional long-tail family mix: the names
        :func:`zoo_query_catalog` accepts.  The zoo queries are appended to
        the catalog (after the default one when ``catalog`` is ``None``), so
        heterogeneous traces are one knob away from the headline mix;
        ``families_backend`` pins their kernel backend (a concrete name
        makes served answers bit-comparable to a per-call baseline --
        ``"auto"`` resolves per micro-batch in the service but per call in
        a serial loop, which flips kernels near the threshold).
    monitor_fraction:
        Fraction of non-update requests that are live-monitor hotspot reads
        instead of static queries.
    update_every, update_batch:
        Every ``update_every`` requests, one ``"update"`` request carrying
        ``update_batch`` events of a clustered insert/delete stream is
        interleaved (0 disables updates).
    rate, hotspot_every, hotspot_length, hotspot_boost:
        The open-loop arrival process: exponential interarrival gaps at
        ``rate`` requests/sec, multiplied by ``hotspot_boost`` for
        ``hotspot_length``-request windows starting every ``hotspot_every``
        requests -- the flash-crowd periods in which requests pile up and
        micro-batches grow.
    extent, seed:
        Stream geometry and determinism.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if zipf_s <= 0:
        raise ValueError("zipf_s must be positive")
    if not 0.0 <= monitor_fraction <= 1.0:
        raise ValueError("monitor_fraction must lie in [0, 1]")
    if update_every < 0 or update_batch < 1:
        raise ValueError("update_every must be >= 0 and update_batch >= 1")
    if rate <= 0 or hotspot_boost < 1.0:
        raise ValueError("rate must be positive and hotspot_boost >= 1")
    rng = default_rng(seed)
    queries = list(catalog) if catalog is not None else default_query_catalog()
    if families:
        queries.extend(zoo_query_catalog(families=families,
                                         backend=families_backend))
    if not queries:
        raise ValueError("the query catalog must not be empty")
    order = rng.permutation(len(queries)) if shuffle else list(range(len(queries)))
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(queries))]
    total = sum(weights)
    popularity = [w / total for w in weights]

    # One long update stream, chopped sequentially into the trace's update
    # batches: delete targets stay consistent because the service replays the
    # batches in order at monotonically increasing stream offsets.
    n_updates = 0 if update_every == 0 else (n_requests // update_every + 1)
    stream = list(hotspot_monitoring_stream(max(1, n_updates * update_batch),
                                            extent=extent, seed=rng))
    stream_cursor = 0

    requests: List[RequestEvent] = []
    clock = 0.0
    for index in range(n_requests):
        in_hotspot = hotspot_every > 0 and (index % hotspot_every) < hotspot_length
        effective_rate = rate * (hotspot_boost if in_hotspot else 1.0)
        clock += float(rng.exponential(1.0 / effective_rate))
        if update_every and index % update_every == update_every - 1:
            chunk = stream[stream_cursor:stream_cursor + update_batch]
            stream_cursor += len(chunk)
            if chunk:
                requests.append(RequestEvent(kind="update", arrival=clock,
                                             events=tuple(chunk)))
                continue
        if rng.random() < monitor_fraction:
            requests.append(RequestEvent(kind="monitor", arrival=clock))
        else:
            choice = int(rng.choice(len(queries), p=popularity))
            requests.append(RequestEvent(kind="query", arrival=clock,
                                         query=queries[int(order[choice])]))
    return RequestTrace(requests)


# --------------------------------------------------------------------------- #
# JSONL persistence
# --------------------------------------------------------------------------- #

def _query_to_dict(query: Query) -> dict:
    return {k: v for k, v in asdict(query).items() if v is not None}


def _event_to_dict(event: UpdateEvent) -> dict:
    payload = asdict(event)
    return {k: v for k, v in payload.items() if v is not None}


def request_to_dict(request: RequestEvent) -> dict:
    """One :class:`RequestEvent` as a JSON-ready dict.

    This is the single request-serialisation schema of the project: the
    lines :func:`save_trace` writes and the request bodies the network
    front end (:mod:`repro.net`) accepts are both exactly this shape.
    """
    record = {"kind": request.kind, "arrival": request.arrival}
    if request.query is not None:
        record["query"] = _query_to_dict(request.query)
    if request.name is not None:
        record["name"] = request.name
    if request.events:
        record["events"] = [_event_to_dict(e) for e in request.events]
    return record


def request_from_dict(record: dict) -> RequestEvent:
    """Rebuild a :class:`RequestEvent` from :func:`request_to_dict` output.

    Raises ``ValueError`` / ``TypeError`` / ``KeyError`` on malformed
    records -- callers decoding untrusted input (the JSONL loader, the
    network front end) surface these per request.
    """
    query = None
    if "query" in record:
        fields = dict(record["query"])
        # JSON has no tuples; exactness defaults are restored by Query.
        query = Query(**fields)
    events = tuple(
        UpdateEvent(
            kind=e["kind"],
            point=tuple(e["point"]) if "point" in e else None,
            weight=e.get("weight", 1.0),
            target=e.get("target"),
            timestamp=e.get("timestamp"),
            color=e.get("color"),
        )
        for e in record.get("events", ())
    )
    return RequestEvent(kind=record["kind"],
                        arrival=record.get("arrival", 0.0),
                        query=query,
                        name=record.get("name"),
                        events=events)


def save_trace(path: str, trace: RequestTrace) -> None:
    """Write a trace as JSON lines (one request per line, replayable with
    ``repro serve --replay``)."""
    with open(path, "w") as handle:
        for request in trace:
            handle.write(json.dumps(request_to_dict(request)) + "\n")


def load_trace(path: str) -> RequestTrace:
    """Read a trace previously written by :func:`save_trace`."""
    requests: List[RequestEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            requests.append(request_from_dict(json.loads(line)))
    return RequestTrace(requests)
