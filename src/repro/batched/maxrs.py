"""Batched MaxRS oracles (Section 5).

In the batched MaxRS problem the point set is fixed and ``m`` query ranges
(interval lengths in ``R^1``, rectangle sizes in ``R^2``) are given; the goal
is an optimal placement for each.  The paper's Theorem 1.3 shows that, under
the (min,+)-convolution conjecture, no ``o(mn)``-time algorithm exists even in
``R^1`` -- which makes the trivial "solve each query independently" upper
bound of ``O(m n log n)`` essentially the best possible.  These oracles *are*
that upper bound; they double as the oracle plugged into the Section 5.4
reduction, which is how the lower-bound construction is validated end-to-end
(experiment E6).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.result import MaxRSResult
from ..exact.interval1d import maxrs_interval_exact
from ..exact.rectangle2d import maxrs_rectangle_exact

__all__ = ["batched_maxrs_1d", "batched_maxrs_rectangles"]


def batched_maxrs_1d(
    points: Sequence,
    lengths: Sequence[float],
    *,
    weights: Optional[Sequence[float]] = None,
    allow_empty: bool = True,
    backend: str = "auto",
) -> List[MaxRSResult]:
    """Solve 1-d MaxRS for every query interval length (``O(m n log n)``).

    Weights may be negative (the Section 5.4 reduction relies on it).
    ``backend`` is forwarded to every per-length sweep.
    """
    return [
        maxrs_interval_exact(points, length, weights=weights, allow_empty=allow_empty,
                             backend=backend)
        for length in lengths
    ]


def batched_maxrs_rectangles(
    points: Sequence,
    sizes: Sequence[Tuple[float, float]],
    *,
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
) -> List[MaxRSResult]:
    """Solve planar MaxRS for every query rectangle size (``O(m n log n)``).

    This is the ``R^2`` upper bound discussed after Theorem 1.3: running the
    exact Imai--Asano / Nandy--Bhattacharya sweep once per query size.
    ``backend`` is forwarded to every per-size sweep.
    """
    return [
        maxrs_rectangle_exact(points, width, height, weights=weights, backend=backend)
        for width, height in sizes
    ]
