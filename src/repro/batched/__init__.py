"""Batched MaxRS and batched smallest k-enclosing interval oracles (Sections 5 and 6)."""

from .maxrs import batched_maxrs_1d, batched_maxrs_rectangles
from .sei import (
    batched_smallest_enclosing_intervals,
    smallest_k_enclosing_interval,
)

__all__ = [
    "batched_maxrs_1d",
    "batched_maxrs_rectangles",
    "smallest_k_enclosing_interval",
    "batched_smallest_enclosing_intervals",
]
