"""Smallest k-enclosing interval and its batched version (Section 6).

Given ``n`` points on the real line, the smallest ``k``-enclosing interval
(SEI) is the shortest interval containing ``k`` of the points; the batched
problem (BSEI) asks for the answer for *every* ``k`` from 1 to ``n``.  After
sorting, the smallest interval containing ``k`` points is realised by ``k``
consecutive points, so a sliding window solves one ``k`` in ``O(n)`` and all
of them in ``O(n^2)`` -- the upper bound that Theorem 1.4 shows is essentially
optimal under the (min,+)-convolution conjecture.

The batched solver is the oracle consumed by the Section 6.2 reduction
(monotone (min,+)-convolution -> BSEI), validated in experiment E7.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["smallest_k_enclosing_interval", "batched_smallest_enclosing_intervals"]


def _to_sorted_floats(points: Sequence) -> List[float]:
    values = []
    for p in points:
        if isinstance(p, (int, float)):
            values.append(float(p))
        else:
            seq = tuple(p)
            if len(seq) != 1:
                raise ValueError("SEI expects points on the real line")
            values.append(float(seq[0]))
    values.sort()
    return values


def smallest_k_enclosing_interval(
    points: Sequence, k: int
) -> Tuple[float, Optional[Tuple[float, float]]]:
    """Length and placement of the smallest interval containing ``k`` points.

    Returns ``(length, (left, right))``; ``k`` must satisfy ``1 <= k <= n``.
    """
    values = _to_sorted_floats(points)
    n = len(values)
    if not 1 <= k <= n:
        raise ValueError("k must lie in [1, n], got k=%d for n=%d" % (k, n))
    best_length = float("inf")
    best_window: Optional[Tuple[float, float]] = None
    for start in range(n - k + 1):
        left, right = values[start], values[start + k - 1]
        if right - left < best_length:
            best_length = right - left
            best_window = (left, right)
    return best_length, best_window


def batched_smallest_enclosing_intervals(points: Sequence) -> List[float]:
    """Smallest enclosing-interval length for every ``k`` in ``1..n`` (``O(n^2)``).

    The returned list ``G`` is 1-indexed conceptually: ``G[k - 1]`` is the
    length of the smallest interval containing ``k`` points.
    """
    values = _to_sorted_floats(points)
    n = len(values)
    results: List[float] = []
    for k in range(1, n + 1):
        best = min(values[start + k - 1] - values[start] for start in range(n - k + 1))
        results.append(best)
    return results
