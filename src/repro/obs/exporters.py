"""Trace and metric exporters: JSONL sink, tree/summary renderers,
Prometheus-style text exposition.

Three consumers, three formats:

* machines replaying a run read the **JSONL sink** -- one
  :class:`repro.obs.SpanRecord` per line, append-only, loadable with
  :func:`load_trace_jsonl`;
* humans debugging a request read the **tree renderer** -- the span
  hierarchy indented with durations and tags -- or the **summary table**,
  which aggregates spans by name (count, total, p50/p95/max);
* scrapers read the **Prometheus text exposition** of a
  :class:`repro.obs.MetricsRegistry` (counters, gauges, summary-style
  histogram lines).

All output is deterministic given the input records (ordering is by span
start time, ties by span id), so tests can assert on rendered text.
"""

from __future__ import annotations

import json
import threading
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

from .metrics import MetricsRegistry, percentile
from .tracing import SpanRecord

__all__ = [
    "JsonlSink",
    "ListSink",
    "load_trace_jsonl",
    "render_prometheus",
    "render_summary",
    "render_tree",
    "registry_from_spans",
    "summarize_spans",
]


class JsonlSink:
    """Appends every exported span as one JSON line to ``path``.

    Register with ``repro.obs.add_sink``; traces arrive whole (one record
    list per finished trace) and are written under a lock, so concurrent
    flush threads interleave at trace granularity, not mid-line.  Call
    :meth:`close` (or use as a context manager) to flush and release the
    file handle; ``spans_written`` counts the lines emitted.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self.spans_written = 0
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def export(self, records: Sequence[SpanRecord]) -> None:
        """Write one finished trace's records as JSON lines."""
        with self._lock:
            if self._handle is None:
                return
            for record in records:
                self._handle.write(json.dumps(record.to_dict(),
                                              sort_keys=True) + "\n")
                self.spans_written += 1
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class ListSink:
    """Collects exported traces in memory -- the sink tests and benchmarks
    use to inspect spans without touching disk.

    ``traces`` is the list of record lists (one per finished trace);
    ``spans()`` flattens them.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.traces: List[List[SpanRecord]] = []

    def export(self, records: Sequence[SpanRecord]) -> None:
        """Retain one finished trace's records."""
        with self._lock:
            self.traces.append(list(records))

    def spans(self) -> List[SpanRecord]:
        """Every retained span, across all traces, in arrival order."""
        with self._lock:
            return [r for trace in self.traces for r in trace]


def load_trace_jsonl(path: str) -> List[SpanRecord]:
    """Read a :class:`JsonlSink` file back into :class:`SpanRecord` objects
    (blank lines are skipped)."""
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def _format_tags(tags: Dict[str, object]) -> str:
    if not tags:
        return ""
    parts = ["%s=%s" % (key, tags[key]) for key in sorted(tags)]
    return "  {%s}" % ", ".join(parts)


def _children_index(records: Sequence[SpanRecord]):
    by_parent: Dict[Optional[str], List[SpanRecord]] = defaultdict(list)
    for record in records:
        by_parent[record.parent_id].append(record)
    for siblings in by_parent.values():
        siblings.sort(key=lambda r: (r.start, r.span_id))
    return by_parent

def render_tree(records: Sequence[SpanRecord]) -> str:
    """Render spans as an indented tree with durations and tags.

    Roots are records whose ``parent_id`` is absent from the record set;
    multiple traces in one record list render as successive trees.
    """
    if not records:
        return "(no spans)"
    ids = {r.span_id for r in records}
    by_parent = _children_index(records)
    roots = sorted((r for r in records
                    if r.parent_id is None or r.parent_id not in ids),
                   key=lambda r: (r.start, r.span_id))
    lines: List[str] = []

    def walk(record: SpanRecord, depth: int) -> None:
        lines.append("%s%-24s %9.3f ms%s" % (
            "  " * depth, record.name, record.duration * 1e3,
            _format_tags(record.tags)))
        for child in by_parent.get(record.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def summarize_spans(records: Sequence[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: count, total/mean duration, p50/p95/max.

    The per-name totals are what the benchmark artifacts embed -- a
    per-phase time attribution that survives after the raw trace is gone.
    """
    by_name: Dict[str, List[float]] = defaultdict(list)
    for record in records:
        by_name[record.name].append(record.duration)
    summary: Dict[str, Dict[str, float]] = {}
    for name, durations in by_name.items():
        total = sum(durations)
        summary[name] = {
            "count": len(durations),
            "total_s": total,
            "mean_s": total / len(durations),
            "p50_s": percentile(durations, 50),
            "p95_s": percentile(durations, 95),
            "max_s": max(durations),
        }
    return summary


def render_summary(records: Sequence[SpanRecord], top: int = 0) -> str:
    """Human-readable table of :func:`summarize_spans`, sorted by total
    time descending; ``top`` > 0 keeps only the first ``top`` rows."""
    summary = summarize_spans(records)
    if not summary:
        return "(no spans)"
    rows = sorted(summary.items(), key=lambda kv: -kv[1]["total_s"])
    if top > 0:
        rows = rows[:top]
    lines = ["%-24s %7s %12s %12s %12s %12s"
             % ("span", "count", "total ms", "mean ms", "p95 ms", "max ms")]
    for name, stats in rows:
        lines.append("%-24s %7d %12.3f %12.3f %12.3f %12.3f" % (
            name, stats["count"], stats["total_s"] * 1e3,
            stats["mean_s"] * 1e3, stats["p95_s"] * 1e3,
            stats["max_s"] * 1e3))
    return "\n".join(lines)


def _metric_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def render_prometheus(registry: MetricsRegistry,
                      prefix: str = "repro") -> str:
    """Prometheus-style text exposition of a registry's instruments.

    Counters/gauges emit ``# TYPE`` headers and a single sample; histograms
    emit summary-style lines (``_count``, ``_sum``, and ``{quantile=...}``
    samples).  Names are sanitized to the Prometheus charset and prefixed.
    """
    lines: List[str] = []
    for name, entry in registry.snapshot().items():
        metric = "%s_%s" % (prefix, _metric_name(name))
        kind = entry["type"]
        if kind == "counter":
            lines.append("# TYPE %s counter" % metric)
            lines.append("%s %d" % (metric, entry["value"]))
        elif kind == "gauge":
            lines.append("# TYPE %s gauge" % metric)
            lines.append("%s %s" % (metric, _format_value(entry["value"])))
        elif kind == "histogram":
            lines.append("# TYPE %s summary" % metric)
            for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                                   ("0.99", "p99")):
                lines.append('%s{quantile="%s"} %s'
                             % (metric, q_label,
                                _format_value(entry[q_key])))
            lines.append("%s_sum %s" % (metric, _format_value(entry["sum"])))
            lines.append("%s_count %d" % (metric, entry["count"]))
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    return repr(value)


def registry_from_spans(records: Iterable[SpanRecord],
                        registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Distill span records into a registry: per-name count counters and
    duration histograms (``span_<name>_seconds``) -- the bridge that lets
    ``repro stats --format prometheus`` expose a trace file."""
    registry = registry if registry is not None else MetricsRegistry()
    for record in records:
        registry.counter("span_%s_total" % record.name).inc()
        registry.histogram("span_%s_seconds" % record.name).observe(
            record.duration)
    return registry
