"""Process-safe metric primitives: counters, gauges, reservoir histograms.

These generalize the percentile bookkeeping that grew up inside
``repro.service.metrics.ServiceStats`` into reusable, individually locked
instruments.  Everything here is dependency-free and cheap enough to leave
in hot paths: a counter increment is one lock acquisition and an integer
add; a histogram observation appends to a bounded deque.

The :class:`MetricsRegistry` is the get-or-create directory instruments
live in.  Registries snapshot to plain dictionaries (JSON-ready) and can
*merge* snapshots from other registries -- the mechanism worker processes
use to ship their counts back to the parent without sharing memory.

:func:`percentile` is the one shared statistic: nearest-rank percentiles
over a plain sequence, with explicit edge behaviour (empty input -> NaN,
single element -> that element for every q, q outside [0, 100] ->
``ValueError``).  ``repro.service.metrics`` re-exports it for
back-compatibility.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
]

#: Bounded-reservoir size for histograms: large enough for stable tail
#: percentiles, small enough that a long-running service cannot grow
#: unboundedly.
RESERVOIR_SIZE = 4096


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (unsorted ok).

    Edge behaviour, deliberately explicit:

    * empty ``values`` -> ``float('nan')`` (there is no order statistic to
      report, and 0.0 would be indistinguishable from a real measurement);
    * a single element -> that element, for *every* ``q`` in [0, 100];
    * ``q = 0`` -> the minimum, ``q = 100`` -> the maximum;
    * ``q`` outside [0, 100] -> ``ValueError`` (silent clamping would turn
      a caller bug into a wrong-but-plausible number).
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be within [0, 100], got %r" % (q,))
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


class Counter:
    """A monotonically increasing count (requests served, cache hits, ...).

    Thread-safe; increments are non-negative.  Read with :attr:`value`.
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; got %r" % (amount,))
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time measurement that moves both ways (queue depth,
    live shard count, window size)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current reading."""
        with self._lock:
            return self._value


class Histogram:
    """A bounded-reservoir distribution (latencies, queue waits, sizes).

    Exact ``count``/``sum``/``min``/``max`` over *everything* observed;
    percentiles come from the newest ``reservoir`` observations (a
    ``deque(maxlen=...)``), which keeps memory constant while tracking the
    current regime rather than ancient history.  ``len(h)`` is the number
    of samples currently in the reservoir (<= ``count``).
    """

    __slots__ = ("name", "_lock", "_samples", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, reservoir: int = RESERVOIR_SIZE):
        self.name = name
        self._lock = threading.Lock()
        self._samples: "deque[float]" = deque(maxlen=reservoir)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def count(self) -> int:
        """Total observations ever recorded (not capped by the reservoir)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Exact sum of every observation."""
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the current reservoir
        (see :func:`percentile` for edge behaviour)."""
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, q)

    def snapshot(self) -> Dict[str, float]:
        """Summary dict: count, sum, mean, min, max, p50/p95/p99."""
        with self._lock:
            samples = list(self._samples)
            count, total = self._count, self._sum
            low, high = self._min, self._max
        mean = total / count if count else float("nan")
        return {
            "count": count,
            "sum": total,
            "mean": mean,
            "min": float("nan") if low is None else low,
            "max": float("nan") if high is None else high,
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
            "p99": percentile(samples, 99),
        }


class MetricsRegistry:
    """A get-or-create directory of named instruments.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` return the
    existing instrument or create it; asking for a name under a different
    type raises ``TypeError`` (two call sites silently sharing one name
    across types is always a bug).  :meth:`snapshot` renders everything to
    a plain dict; :meth:`merge_snapshot` folds another registry's snapshot
    in -- counters add, gauges take the incoming reading, histogram
    percentiles cannot be merged so their counts/sums accumulate into a
    counter-like entry.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        "metric %r already registered as %s, not %s"
                        % (name, type(existing).__name__, cls.__name__))
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, reservoir: int = RESERVOIR_SIZE) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram, reservoir=reservoir)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every instrument, keyed by name; each entry
        carries a ``type`` discriminator plus the instrument's values."""
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            elif isinstance(metric, Histogram):
                entry: Dict[str, object] = {"type": "histogram"}
                entry.update(metric.snapshot())
                out[name] = entry
        return out

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` from another registry (typically a worker
        process) into this one: counters add, gauges adopt the incoming
        reading, histograms accumulate count/sum and widen min/max."""
        for name, entry in snapshot.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).inc(int(entry.get("value", 0)))
            elif kind == "gauge":
                self.gauge(name).set(float(entry.get("value", 0.0)))
            elif kind == "histogram":
                hist = self.histogram(name)
                # Empty incoming histograms snapshot min/max as NaN; a
                # worker's real extremes must widen (never narrow) ours.
                low = _merge_bound(entry.get("min"))
                high = _merge_bound(entry.get("max"))
                with hist._lock:
                    hist._count += int(entry.get("count", 0))
                    hist._sum += float(entry.get("sum", 0.0))
                    if low is not None:
                        hist._min = low if hist._min is None else min(hist._min, low)
                    if high is not None:
                        hist._max = high if hist._max is None else max(hist._max, high)


def _merge_bound(value) -> Optional[float]:
    """A snapshot's min/max as a float, or ``None`` when absent/NaN."""
    if value is None:
        return None
    bound = float(value)
    return None if math.isnan(bound) else bound


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
