"""Cross-layer observability: hierarchical spans, metrics, exporters.

``repro.obs`` is the zero-dependency telemetry substrate the serving stack
reports through.  One traced request produces a *span tree* attributing
wall time to each layer -- the service flush at the root, the engine batch
under it, planning and merging per query, the executor dispatch, and every
per-shard kernel solve (tagged with shard ordinal, backend, and point
count) even when it ran in a worker process.  Alongside the spans, a
process-safe :class:`MetricsRegistry` holds counters, gauges, and
bounded-reservoir histograms -- the primitives ``ServiceStats`` is built
on.

The three moving parts:

* **tracing** -- :func:`trace` marks a layer entry point (roots a trace
  when tracing is enabled and none is active; nests otherwise),
  :func:`span` times a child step, :func:`capture` records inside worker
  processes for the parent to :meth:`Span.graft` back in.  When tracing is
  off every call returns a shared no-op span: the hot paths stay free.
* **metrics** -- :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  instruments in a get-or-create :class:`MetricsRegistry`;
  :func:`percentile` is the shared nearest-rank statistic.
* **exporters** -- :class:`JsonlSink` streams finished traces to disk,
  :func:`render_tree` / :func:`render_summary` produce human-readable
  views, :func:`render_prometheus` exposes a registry as Prometheus text.

Switch tracing on with ``REPRO_TRACE=1`` in the environment or
:func:`set_enabled`; route traces to a file with
``add_sink(JsonlSink(path))`` or any of the CLI ``--trace-out`` flags, and
inspect the result with ``repro stats``.
"""

from .tracing import (
    Capture,
    Span,
    SpanRecord,
    Tracer,
    add_sink,
    capture,
    current_span,
    enabled,
    get_tracer,
    last_trace,
    remove_sink,
    set_enabled,
    span,
    trace,
    tracing_active,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
)
from .exporters import (
    JsonlSink,
    ListSink,
    load_trace_jsonl,
    render_prometheus,
    render_summary,
    render_tree,
    registry_from_spans,
    summarize_spans,
)

__all__ = [
    # tracing
    "Capture",
    "Span",
    "SpanRecord",
    "Tracer",
    "add_sink",
    "capture",
    "current_span",
    "enabled",
    "get_tracer",
    "last_trace",
    "remove_sink",
    "set_enabled",
    "span",
    "trace",
    "tracing_active",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    # exporters
    "JsonlSink",
    "ListSink",
    "load_trace_jsonl",
    "render_prometheus",
    "render_summary",
    "render_tree",
    "registry_from_spans",
    "summarize_spans",
]
