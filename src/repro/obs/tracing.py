"""Hierarchical spans: the cross-layer timing substrate.

A *trace* is one request's tree of timed *spans*: the serving flush at the
root, the engine batch under it, per-query plan/merge work, the executor
dispatch, and -- grafted in from worker threads and processes -- every
per-shard solve.  The design constraints, in order:

* **zero overhead when off** -- :func:`span` costs one context-variable read
  when no trace is active (it returns the shared no-op span), so the tier-1
  hot paths are indistinguishable from the untraced build;
* **zero dependencies** -- monotonic clocks, ``contextvars`` and dataclasses
  only; records are plain picklable data;
* **process-correct timing** -- every record carries a wall-clock ``start``
  (comparable across processes on one host) and a ``perf_counter``-derived
  ``duration`` (immune to wall-clock steps), so per-shard durations measured
  inside worker processes sum meaningfully against parent-side wall spans;
* **worker capture, parent graft** -- a worker cannot see the parent's live
  trace, so it records under :func:`capture` (always on; the *parent*
  decided to trace when it picked the traced task variant) and ships the
  finished records back with its result.  The parent adopts them with
  :meth:`Span.graft`, which rewires the captured roots onto the grafting
  span, giving one connected tree across process boundaries.

Enablement: :func:`set_enabled` is the programmatic switch; when unset, the
``REPRO_TRACE`` environment variable (``1``/``true``/``yes``/``on``) decides.
:func:`trace` starts a new trace only where none is active (and tracing is
enabled); nested calls degrade to plain child spans, so every layer can mark
its entry point without coordinating on who owns the root.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "SpanRecord",
    "Span",
    "Capture",
    "Tracer",
    "add_sink",
    "capture",
    "current_span",
    "enabled",
    "get_tracer",
    "last_trace",
    "remove_sink",
    "set_enabled",
    "span",
    "trace",
    "tracing_active",
]

_TRUTHY = ("1", "true", "yes", "on")

#: Programmatic override of the tracing switch; ``None`` defers to the
#: ``REPRO_TRACE`` environment variable.
_ENABLED: Optional[bool] = None

_IDS = itertools.count(1)


def _new_id() -> str:
    """A span/trace id unique across the processes of one run (pid-prefixed)."""
    return "%x-%x" % (os.getpid(), next(_IDS))


def enabled() -> bool:
    """Whether tracing is globally enabled (:func:`set_enabled`, else the
    ``REPRO_TRACE`` environment variable)."""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


def set_enabled(flag: Optional[bool]) -> Optional[bool]:
    """Set the global tracing switch; returns the previous value.

    ``True`` / ``False`` force tracing on / off; ``None`` restores the
    default behaviour of deferring to ``REPRO_TRACE``.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = None if flag is None else bool(flag)
    return previous


# --------------------------------------------------------------------------- #
# records and trace state
# --------------------------------------------------------------------------- #

@dataclass
class SpanRecord:
    """One finished span: plain picklable data, the unit every sink exports.

    ``start`` is wall-clock epoch seconds (``time.time``; comparable across
    the processes of one host), ``duration`` is ``perf_counter``-derived
    elapsed seconds (immune to wall-clock adjustment).  ``parent_id`` is
    ``None`` only for trace roots and un-grafted capture roots.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    duration: float
    tags: Dict[str, object] = field(default_factory=dict)
    pid: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the JSONL sink's line payload)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "tags": self.tags,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output (JSONL loading)."""
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=(None if payload.get("parent_id") is None
                       else str(payload["parent_id"])),
            name=str(payload["name"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            tags=dict(payload.get("tags") or {}),
            pid=int(payload.get("pid") or 0),
        )


class _TraceState:
    """The mutable state of one live trace: its id, the finished records,
    and the stack of open spans (top = current parent)."""

    __slots__ = ("trace_id", "records", "stack")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.records: List[SpanRecord] = []
        self.stack: List["Span"] = []


_ACTIVE: ContextVar[Optional[_TraceState]] = ContextVar("repro_obs_trace",
                                                        default=None)


def tracing_active() -> bool:
    """Whether a trace is live in the current context (thread/task).

    This is the check hot paths use to pick traced task variants: it is one
    context-variable read and does not consult the environment.
    """
    return _ACTIVE.get() is not None


# --------------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------------- #

class _NoopSpan:
    """The shared do-nothing span returned whenever tracing is off.

    Every :class:`Span` method exists here as a no-op returning ``self``, so
    instrumented code never branches on whether tracing is live.
    """

    __slots__ = ()

    span_id: Optional[str] = None
    trace_id: Optional[str] = None
    name = ""
    start = 0.0
    duration = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def tag(self, **tags) -> "_NoopSpan":
        return self

    def child(self, name, duration, **tags) -> "_NoopSpan":
        return self

    def graft(self, records) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span: a context manager that appends one :class:`SpanRecord`
    to its trace on exit.

    Use :func:`span` / :func:`trace` to obtain instances; the constructor is
    internal.  ``tag()`` adds attributes while open; ``child()`` and
    ``graft()`` stay usable after exit for post-hoc attribution (derived
    overhead records, worker-captured subtrees) for as long as the enclosing
    trace is live.
    """

    __slots__ = ("name", "tags", "span_id", "parent_id", "start", "duration",
                 "_state", "_t0")

    def __init__(self, state: _TraceState, name: str, tags: Dict[str, object]):
        self._state = state
        self.name = name
        self.tags = dict(tags)
        self.span_id = _new_id()
        parent = state.stack[-1] if state.stack else None
        self.parent_id = parent.span_id if parent is not None else None
        self.start = 0.0
        self.duration = 0.0
        self._t0 = 0.0

    @property
    def trace_id(self) -> str:
        """The id of the trace this span belongs to."""
        return self._state.trace_id

    def __enter__(self) -> "Span":
        self._state.stack.append(self)
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.duration = time.perf_counter() - self._t0
        stack = self._state.stack
        if stack and stack[-1] is self:
            stack.pop()
        self._state.records.append(SpanRecord(
            trace_id=self._state.trace_id, span_id=self.span_id,
            parent_id=self.parent_id, name=self.name, start=self.start,
            duration=self.duration, tags=self.tags, pid=os.getpid()))
        return False

    def tag(self, **tags) -> "Span":
        """Attach (or overwrite) tag values; returns ``self`` for chaining."""
        self.tags.update(tags)
        return self

    def child(self, name: str, duration: float, **tags) -> "Span":
        """Append a *derived* child record of ``duration`` seconds.

        For time that is attributed arithmetically rather than measured
        in-line -- e.g. executor queue/dispatch overhead computed as the
        dispatch wall time minus the workers' busy time.  The record is
        tagged ``derived=True`` so exporters can distinguish it.
        """
        merged = {"derived": True}
        merged.update(tags)
        self._state.records.append(SpanRecord(
            trace_id=self._state.trace_id, span_id=_new_id(),
            parent_id=self.span_id, name=name, start=self.start,
            duration=float(duration), tags=merged, pid=os.getpid()))
        return self

    def graft(self, records: Sequence[SpanRecord]) -> "Span":
        """Adopt worker-captured records as children of this span.

        Captured roots (``parent_id is None``) are re-parented onto this
        span and every record is rewritten onto this trace's id; interior
        parent links and worker-side timings are preserved untouched.
        """
        for record in records:
            self._state.records.append(SpanRecord(
                trace_id=self._state.trace_id,
                span_id=record.span_id,
                parent_id=(self.span_id if record.parent_id is None
                           else record.parent_id),
                name=record.name,
                start=record.start,
                duration=record.duration,
                tags=record.tags,
                pid=record.pid,
            ))
        return self


class _RootSpan(Span):
    """A span that owns its trace: activates the trace state on entry and
    emits the finished record list to the tracer on exit."""

    __slots__ = ("_token",)

    def __init__(self, name: str, tags: Dict[str, object]):
        super().__init__(_TraceState(_new_id()), name, tags)
        self._token = None

    def __enter__(self) -> "Span":
        self._token = _ACTIVE.set(self._state)
        return super().__enter__()

    def __exit__(self, *exc_info) -> bool:
        super().__exit__(*exc_info)
        _ACTIVE.reset(self._token)
        get_tracer()._emit(self._state.records)
        return False


def span(name: str, **tags) -> Span:
    """A child span of the current context's live trace.

    Returns the shared no-op span when no trace is active -- :func:`span`
    never starts a trace on its own, so un-rooted hot paths stay free.
    """
    state = _ACTIVE.get()
    if state is None:
        return NOOP_SPAN
    return Span(state, name, tags)


def trace(name: str, **tags) -> Span:
    """Mark a layer entry point: root a new trace here, or nest.

    * a trace is already active -> a plain child span (layers compose);
    * tracing enabled, no active trace -> a new root span whose records are
      emitted to the tracer's sinks when it closes;
    * tracing disabled -> the shared no-op span.
    """
    state = _ACTIVE.get()
    if state is not None:
        return Span(state, name, tags)
    if not enabled():
        return NOOP_SPAN
    return _RootSpan(name, tags)


def current_span() -> Span:
    """The innermost open span of the active trace (no-op span if none)."""
    state = _ACTIVE.get()
    if state is None or not state.stack:
        return NOOP_SPAN
    return state.stack[-1]


# --------------------------------------------------------------------------- #
# worker-side capture
# --------------------------------------------------------------------------- #

class Capture:
    """Record spans in a context that cannot see the live trace (a worker
    thread or process) and hand the finished records back for grafting.

    Unlike :func:`trace`, capture is **unconditional**: the parent decided
    to trace when it dispatched the captured task, so the worker must not
    re-consult a switch (worker processes may not share the parent's
    environment or programmatic override).  Records are returned on
    ``records`` -- never emitted to sinks -- and the capture root keeps
    ``parent_id=None`` so :meth:`Span.graft` can rewire it.
    """

    __slots__ = ("name", "tags", "records", "_span", "_state", "_token")

    def __init__(self, name: str, tags: Dict[str, object]):
        self.name = name
        self.tags = dict(tags)
        self.records: List[SpanRecord] = []
        self._span: Optional[Span] = None
        self._state: Optional[_TraceState] = None
        self._token = None

    def __enter__(self) -> "Capture":
        self._state = _TraceState("capture-" + _new_id())
        self._token = _ACTIVE.set(self._state)
        self._span = Span(self._state, self.name, self.tags)
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._span.__exit__(*exc_info)
        _ACTIVE.reset(self._token)
        self.records = self._state.records
        return False

    def tag(self, **tags) -> "Capture":
        """Attach tags to the capture's root span; returns ``self``."""
        self._span.tag(**tags)
        return self


def capture(name: str, **tags) -> Capture:
    """Worker-side span capture (see :class:`Capture`): always records, and
    returns the records instead of emitting them."""
    return Capture(name, tags)


# --------------------------------------------------------------------------- #
# the tracer
# --------------------------------------------------------------------------- #

class Tracer:
    """Receives every finished trace and forwards it to registered sinks.

    Keeps a small ring of recent traces for programmatic inspection
    (:meth:`last_trace`); sinks (anything with an ``export(records)``
    method, e.g. :class:`repro.obs.JsonlSink`) receive each trace's record
    list once, in completion order.  Thread-safe: the serving dispatcher and
    direct callers may finish traces concurrently.
    """

    def __init__(self, keep: int = 16):
        self._lock = threading.Lock()
        self._sinks: List[object] = []
        self._recent: "deque[List[SpanRecord]]" = deque(maxlen=keep)

    def add_sink(self, sink) -> None:
        """Register a sink; it receives every subsequently finished trace."""
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Deregister a sink; unknown sinks are ignored."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def _emit(self, records: List[SpanRecord]) -> None:
        with self._lock:
            self._recent.append(list(records))
            sinks = list(self._sinks)
        for sink in sinks:
            sink.export(records)

    def last_trace(self) -> List[SpanRecord]:
        """The most recently finished trace's records (empty list if none)."""
        with self._lock:
            return list(self._recent[-1]) if self._recent else []

    def recent_traces(self) -> List[List[SpanRecord]]:
        """The retained ring of recent traces, oldest first."""
        with self._lock:
            return [list(records) for records in self._recent]


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer every root span emits to."""
    return _TRACER


def last_trace() -> List[SpanRecord]:
    """Shorthand for ``get_tracer().last_trace()``."""
    return _TRACER.last_trace()


def add_sink(sink) -> None:
    """Shorthand for ``get_tracer().add_sink(sink)``."""
    _TRACER.add_sink(sink)


def remove_sink(sink) -> None:
    """Shorthand for ``get_tracer().remove_sink(sink)``."""
    _TRACER.remove_sink(sink)
