"""The wire codec of the network front end.

One schema, three uses: the JSONL lines :func:`repro.datasets.save_trace`
writes, the request bodies :class:`repro.net.server.MaxRSServer` accepts,
and the requests :func:`repro.net.loadgen.run_loadgen` replays are all the
same JSON object (:func:`repro.datasets.requests.request_to_dict`).  This
module adds the *response* half -- how a
:class:`~repro.service.requests.ServiceResponse` travels back over the
socket -- plus the result encoding both directions share.

Responses are JSON objects of the shape::

    {"ok": true, "served_from": "solver", "batch_size": 5, "batch_id": 3,
     "queue_wait": 0.0012, "latency": 0.0038,
     "result": {"value": 4.0, "center": [0.1, 0.2], "shape": "disk",
                "exact": true, "meta": {...}},
     "served_query": {"shape": "disk", "radius": 1.0, ...},
     "error": null}

``error``, when set, is ``{"type": <exception class name>, "message": ...}``
-- exceptions do not cross the wire, their identity does.  The HTTP status
stays 200 for served-with-error responses (the per-response error contract
of :meth:`~repro.service.MaxRSService.serve`); non-200 statuses are
transport-level outcomes: 400 (undecodable request), 503 (shed by the
admission queue), 404/405 (bad route).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..core.result import MaxRSResult
from ..datasets.requests import RequestEvent, request_from_dict, request_to_dict
from ..engine.planner import Query
from ..service.requests import ServiceResponse

__all__ = [
    "RemoteResponse",
    "encode_request",
    "decode_request",
    "result_to_dict",
    "result_from_dict",
    "response_to_dict",
    "response_from_dict",
]


def encode_request(request: RequestEvent) -> bytes:
    """One request as its wire body: the UTF-8 JSON of the trace schema."""
    return json.dumps(request_to_dict(request)).encode("utf-8")


def decode_request(body: bytes) -> RequestEvent:
    """Parse a wire body back into a :class:`RequestEvent`.

    Raises ``ValueError`` on anything malformed -- bad JSON, a non-object
    payload, unknown kinds or query fields -- so the server can turn the
    failure into a 400 without guessing what the client meant.
    """
    try:
        record = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError("request body is not valid JSON: %s" % (exc,)) from None
    if not isinstance(record, dict):
        raise ValueError("request body must be a JSON object, got %s"
                         % type(record).__name__)
    try:
        return request_from_dict(record)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError("malformed request record: %s" % (exc,)) from None


def _canonical(value):
    """JSON-canonical form: tuples become lists, containers recurse.

    Makes :func:`result_to_dict` output *stable under a JSON round trip*,
    so a wire-decoded result dict compares equal to the local encoding of
    the same result -- the equality the differential gate relies on.
    """
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {key: _canonical(item) for key, item in value.items()}
    return value


def result_to_dict(result: MaxRSResult) -> dict:
    """A :class:`MaxRSResult` as a JSON-ready dict.

    The encoding is canonical: two results are bit-identical exactly when
    their encodings are equal (floats round-trip through JSON's shortest
    repr, tuples and lists encode alike), which is what the serving-SLO
    differential gate compares.
    """
    return {
        "value": result.value,
        "center": None if result.center is None else list(result.center),
        "shape": result.shape,
        "exact": result.exact,
        "meta": _canonical(dict(result.meta)),
    }


def result_from_dict(record: dict) -> MaxRSResult:
    """Rebuild a :class:`MaxRSResult` from :func:`result_to_dict` output."""
    center = record.get("center")
    return MaxRSResult(
        value=float(record["value"]),
        center=None if center is None else tuple(center),
        shape=record.get("shape", "ball"),
        exact=bool(record.get("exact", True)),
        meta=dict(record.get("meta") or {}),
    )


def _query_to_dict(query: Query) -> dict:
    # Same shape as the trace serialisation: drop unset fields so the dict
    # round-trips through Query(**fields).
    return {k: v for k, v in asdict(query).items() if v is not None}


def response_to_dict(response: ServiceResponse) -> dict:
    """A :class:`ServiceResponse` as its wire payload."""
    error = None
    if response.error is not None:
        error = {"type": type(response.error).__name__,
                 "message": str(response.error)}
    return {
        "ok": response.ok,
        "served_from": response.served_from,
        "batch_size": response.batch_size,
        "batch_id": response.batch_id,
        "queue_wait": response.queue_wait,
        "latency": response.latency,
        "result": (None if response.result is None
                   else result_to_dict(response.result)),
        "served_query": (None if response.served_query is None
                         else _query_to_dict(response.served_query)),
        "error": error,
    }


@dataclass
class RemoteResponse:
    """A client-side view of one wire response.

    ``status`` is the HTTP status the transport returned; ``shed`` is true
    for 503 admission-queue rejections.  ``result`` stays in its encoded
    dict form -- the differential gate compares encodings, and callers who
    want the object call :func:`result_from_dict`.
    """

    status: int
    ok: bool = False
    served_from: str = "error"
    result: Optional[dict] = None
    served_query: Optional[dict] = None
    error: Optional[Dict[str, str]] = None
    batch_size: int = 0
    batch_id: int = 0
    queue_wait: float = 0.0
    latency: float = 0.0
    payload: dict = field(default_factory=dict, repr=False)

    @property
    def shed(self) -> bool:
        """Whether the admission queue rejected the request (503)."""
        return self.status == 503


def response_from_dict(payload: dict, status: int = 200) -> RemoteResponse:
    """Parse a wire response payload into a :class:`RemoteResponse`."""
    return RemoteResponse(
        status=status,
        ok=bool(payload.get("ok", False)) and status == 200,
        served_from=str(payload.get("served_from", "error")),
        result=payload.get("result"),
        served_query=payload.get("served_query"),
        error=payload.get("error"),
        batch_size=int(payload.get("batch_size", 0)),
        batch_id=int(payload.get("batch_id", 0)),
        queue_wait=float(payload.get("queue_wait", 0.0)),
        latency=float(payload.get("latency", 0.0)),
        payload=payload,
    )
