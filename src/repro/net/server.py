"""The asyncio HTTP front end over :class:`~repro.service.MaxRSService`.

:class:`MaxRSServer` bridges the event loop to the threaded serving core:

1. **accept** -- each connection is one asyncio task speaking minimal
   HTTP/1.1 (keep-alive, ``Content-Length`` framing; no chunked encoding,
   no TLS -- this is a serving-experiment harness, not an edge proxy);
2. **decode** -- ``POST /v1/request`` bodies are the trace-line schema
   (:func:`repro.net.protocol.decode_request`); malformed bodies get a 400
   without touching the service;
3. **admit or shed** -- decoded requests enter a **bounded** admission
   queue (``max_pending``).  A full queue answers 503 immediately -- the
   open-loop overload answer: the queue cannot grow without bound, clients
   learn to back off, and the shed rate is the saturation signal the SLO
   suite gates on;
4. **dispatch** -- one dispatcher task drains arrival windows of up to
   ``max_batch`` admitted requests and runs each window as one
   :meth:`~repro.service.MaxRSService.serve` call on a dedicated serving
   thread (``run_in_executor``), so the event loop never blocks on a solve
   and the service's micro-batching / coalescing / caching pipeline is hit
   exactly as in-process callers hit it;
5. **respond** -- per-request responses travel back on the waiting
   connection tasks (:func:`repro.net.protocol.response_to_dict`).

Every stage is traced (``net.accept``, ``net.request`` with
``net.decode`` / ``net.dispatch`` / ``net.respond`` children, and a
``net.flush`` trace per dispatched window that grafts the serving flush's
worker-side spans), and counters/histograms land in a per-server
:class:`~repro.obs.MetricsRegistry` exposed at ``GET /v1/stats``.

Routes::

    POST /v1/request   serve one request (200; 400 undecodable; 503 shed)
    GET  /v1/stats     server counters + service snapshot
    GET  /v1/healthz   liveness probe

The server runs embedded (:meth:`start_in_thread` / :meth:`stop`, used by
tests and the SLO bench suite) or in the foreground (:meth:`run`, used by
``repro serve --listen``).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..obs import tracing as obs
from ..obs.metrics import MetricsRegistry
from ..service.requests import ServiceRequest
from ..service.server import MaxRSService
from .protocol import decode_request, response_to_dict

__all__ = ["MaxRSServer"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: Header-section size cap: a request line or header block larger than this
#: is a protocol error, not traffic.
_MAX_HEADER_BYTES = 16384
#: Body size cap (one request record; generated update batches are ~KBs).
_MAX_BODY_BYTES = 4 * 1024 * 1024


class MaxRSServer:
    """Serve a :class:`~repro.service.MaxRSService` over HTTP/1.1.

    Parameters
    ----------
    service:
        The serving core; the server never closes it (the caller owns its
        lifecycle, matching how the CLI builds service and server apart).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address` once started).
    max_pending:
        Admission-queue bound: requests beyond this many admitted-but-not-
        yet-dispatched entries are shed with a 503.
    max_batch:
        Dispatch window size (default: the service's ``max_batch``).
    """

    def __init__(
        self,
        service: MaxRSService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = 256,
        max_batch: Optional[int] = None,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._service = service
        self._host = host
        self._port = port
        self.max_pending = max_pending
        self.max_batch = max_batch if max_batch is not None else service.max_batch
        self.metrics = MetricsRegistry()
        self.address: Optional[Tuple[str, int]] = None
        self.max_queue_depth = 0
        self._admission: Optional[asyncio.Queue] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._closing = False
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._executor = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="maxrs-net-serve")

    @property
    def host(self) -> str:
        """The bound host (falls back to the requested host before bind)."""
        return self.address[0] if self.address is not None else self._host

    @property
    def port(self) -> int:
        """The bound port (the real one once bound, even when 0 was asked)."""
        return self.address[1] if self.address is not None else self._port

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start_in_thread(self) -> "MaxRSServer":
        """Run the server on a background thread; returns once bound.

        The embedded mode tests, the SLO suite and ``repro loadgen``'s
        self-hosted checks use: the caller keeps its thread, reads
        :attr:`address`, and calls :meth:`stop` when done.
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="maxrs-net-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start_in_thread
            self._startup_error = exc
        finally:
            self._ready.set()

    def stop(self) -> None:
        """Stop accepting, drain admitted requests, and shut down.

        Idempotent; safe from any thread.  Requests already admitted are
        served before the dispatcher exits (mirroring
        :meth:`MaxRSService.close` serving its queued work).
        """
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and loop.is_running():
            loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._executor.shutdown(wait=False)

    def run(self, duration: Optional[float] = None) -> None:
        """Run the server in the foreground (``repro serve --listen``).

        Blocks until ``duration`` seconds elapse (when given) or the
        process is interrupted; drains admitted requests before returning.
        """
        try:
            asyncio.run(self._main(duration=duration))
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            self._executor.shutdown(wait=False)

    async def _main(self, duration: Optional[float] = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._admission = asyncio.Queue(maxsize=self.max_pending)
        self._stop_event = asyncio.Event()
        dispatcher = asyncio.ensure_future(self._dispatch_loop())
        server = await asyncio.start_server(self._handle_connection,
                                            self._host, self._port)
        self.address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        try:
            if duration is None:
                await self._stop_event.wait()
            else:
                try:
                    await asyncio.wait_for(self._stop_event.wait(), duration)
                except asyncio.TimeoutError:
                    pass
        finally:
            # Stop accepting, shed new requests on live connections, serve
            # what was already admitted, then retire the dispatcher.
            self._closing = True
            server.close()
            await server.wait_closed()
            await self._admission.join()
            dispatcher.cancel()
            try:
                await dispatcher
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------ #
    # dispatch: bounded queue -> serving thread
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None and self._admission is not None
        while True:
            first = await self._admission.get()
            window = [first]
            while len(window) < self.max_batch:
                try:
                    window.append(self._admission.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._dispatch_window(window)

    async def _dispatch_window(self, window) -> None:
        requests = [request for request, _ in window]
        with obs.trace("net.flush", requests=len(requests)) as flush_span:
            traced = obs.tracing_active()

            def serve():
                # The serving thread cannot see this task's live trace;
                # capture there, graft here (the engine's worker idiom).
                if traced:
                    with obs.capture("net.serve") as captured:
                        responses = self._service.serve(requests)
                    return responses, captured.records
                return self._service.serve(requests), None

            try:
                responses, records = await self._loop.run_in_executor(
                    self._executor, serve)
            except Exception as exc:
                # serve() attaches errors per response; reaching here means
                # the service itself is unusable (e.g. closed underneath
                # us).  Fail the window's waiters, not the server.
                for _, future in window:
                    if not future.done():
                        future.set_exception(exc)
                    self._admission.task_done()
                return
            if records:
                flush_span.graft(records)
            self.metrics.counter("net.flushes").inc()
            self.metrics.histogram("net.flush_window").observe(float(len(window)))
        for (_, future), response in zip(window, responses):
            if not future.done():
                future.set_result(response)
            self._admission.task_done()

    # ------------------------------------------------------------------ #
    # accept / decode / respond
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        self.metrics.counter("net.connections").inc()
        with obs.trace("net.accept", peer=str(peer)):
            pass
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                started = self._loop.time()
                with obs.trace("net.request", method=method,
                               path=path) as request_span:
                    status, payload = await self._route(method, path, body)
                    with obs.span("net.respond"):
                        self._write_response(writer, status, payload,
                                             keep_alive=keep_alive)
                        await writer.drain()
                    request_span.tag(status=status)
                self.metrics.counter("net.requests").inc()
                self.metrics.histogram("net.handle_latency").observe(
                    self._loop.time() - started)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            # A torn or misframed connection fails only itself.
            self.metrics.counter("net.connection_errors").inc()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request head + body, or ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ValueError("malformed request line %r" % line[:80])
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            header = await reader.readline()
            total += len(header)
            if total > _MAX_HEADER_BYTES:
                raise ValueError("header section too large")
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise ValueError("unacceptable content length %d" % length)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        payload: dict, *, keep_alive: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n\r\n"
                % (status, _REASONS.get(status, "Unknown"), len(body),
                   "keep-alive" if keep_alive else "close"))
        writer.write(head.encode("latin-1") + body)

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/v1/request":
            if method != "POST":
                return 405, {"ok": False, "error": {
                    "type": "MethodNotAllowed",
                    "message": "use POST for /v1/request"}}
            return await self._serve_request(body)
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"ok": False, "error": {
                    "type": "MethodNotAllowed",
                    "message": "use GET for /v1/stats"}}
            return 200, self.snapshot()
        if path == "/v1/healthz":
            return 200, {"ok": True}
        return 404, {"ok": False, "error": {
            "type": "NotFound", "message": "unknown path %s" % path}}

    async def _serve_request(self, body: bytes):
        with obs.span("net.decode", bytes=len(body)):
            try:
                event = decode_request(body)
            except ValueError as exc:
                self.metrics.counter("net.decode_errors").inc()
                return 400, {"ok": False, "served_from": "error",
                             "error": {"type": "ValueError",
                                       "message": str(exc)}}
        if self._closing:
            return self._shed("server is shutting down")
        request = ServiceRequest.from_trace(event)
        future = self._loop.create_future()
        try:
            self._admission.put_nowait((request, future))
        except asyncio.QueueFull:
            # The backpressure answer: the queue is the only buffer, and it
            # is full -- shed now rather than queue without bound.
            return self._shed("admission queue full (%d pending)"
                              % self.max_pending)
        depth = self._admission.qsize()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.metrics.counter("net.admitted").inc()
        with obs.span("net.dispatch", depth=depth):
            try:
                response = await future
            except Exception as exc:
                return 500, {"ok": False, "served_from": "error",
                             "error": {"type": type(exc).__name__,
                                       "message": str(exc)}}
        return 200, response_to_dict(response)

    def _shed(self, reason: str):
        self.metrics.counter("net.shed").inc()
        return 503, {"ok": False, "served_from": "shed", "shed": True,
                     "error": {"type": "Overloaded", "message": reason}}

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Server counters (requests, admissions, sheds, queue depths) plus
        the underlying service's snapshot -- the ``GET /v1/stats`` payload."""
        return {
            "server": {
                "address": list(self.address) if self.address else None,
                "max_pending": self.max_pending,
                "max_batch": self.max_batch,
                "max_queue_depth": self.max_queue_depth,
                "metrics": self.metrics.snapshot(),
            },
            "service": self._service.snapshot(),
        }
