"""The network front end: a socket on the serving layer.

Everything below :mod:`repro.net` serves requests that already live in the
process.  This package puts the serving stack on the wire:

* :mod:`repro.net.protocol` -- the JSON request/response codec.  Request
  bodies are exactly the JSONL records of :mod:`repro.datasets.requests`
  (one :func:`~repro.datasets.requests.request_to_dict` object per
  request), so a saved trace line and a wire request are the same bytes;
  responses carry the answer, the routing provenance (``served_from``) and
  the per-response error, mirroring
  :class:`~repro.service.requests.ServiceResponse`.
* :mod:`repro.net.server` -- :class:`MaxRSServer`, an asyncio HTTP/1.1
  front end bridging the event loop to a :class:`~repro.service.MaxRSService`:
  a **bounded admission queue** feeds a dispatcher task that drains arrival
  windows and runs each micro-batch on a serving executor thread; when the
  queue is full the request is **shed** with a 503 instead of queueing
  unboundedly (open-loop overload stays bounded by construction).
* :mod:`repro.net.loadgen` -- :func:`run_loadgen`, an **open-loop**
  multi-client load generator: it honours each
  :class:`~repro.datasets.requests.RequestEvent`'s ``arrival`` timestamp at
  a configurable rate multiplier (requests fire on schedule whether or not
  earlier ones completed), so queueing collapse shows up as growing latency
  and shed responses instead of being hidden by closed-loop replay.

The serving guarantees survive the wire: a served wire answer is the
:func:`~repro.net.protocol.result_to_dict` encoding of exactly the
:class:`~repro.core.result.MaxRSResult` an in-process
:meth:`~repro.service.MaxRSService.serve_trace` replay of the same trace
produces (``repro.bench.suites.ServingSloSuite`` gates this differentially
on every benchmark run).
"""

from .loadgen import LoadgenRecord, LoadgenReport, run_loadgen
from .protocol import (
    RemoteResponse,
    decode_request,
    encode_request,
    response_from_dict,
    response_to_dict,
    result_from_dict,
    result_to_dict,
)
from .server import MaxRSServer

__all__ = [
    "MaxRSServer",
    "run_loadgen",
    "LoadgenRecord",
    "LoadgenReport",
    "RemoteResponse",
    "encode_request",
    "decode_request",
    "response_to_dict",
    "response_from_dict",
    "result_to_dict",
    "result_from_dict",
]
