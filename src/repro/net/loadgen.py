"""The open-loop load generator: replay a trace against a live server.

:meth:`~repro.service.MaxRSService.serve_trace` replays traces
*closed-loop*: each window waits for the previous one, so the
``RequestEvent.arrival`` timestamps the generator emits are discarded and
queueing collapse is invisible -- an overloaded server just makes the
replay take longer.  This module replays them **open-loop**: request ``i``
is sent at ``arrival_i / speedup`` seconds after the run starts *whether or
not earlier requests have completed*.  Under overload the server's bounded
admission queue fills, requests shed (503), and client-observed latency
grows -- the signals the SLO suite gates on.

Mechanics:

* every request gets its own asyncio task, started at its scheduled time --
  in-flight requests never gate the next send, so offered load really is
  the trace's arrival process (this is what makes the replay open-loop; a
  fixed worker pool would cap in-flight requests at the pool size and an
  overloaded server would silently throttle the generator);
* connections come from a keep-alive pool of up to ``clients`` persistent
  HTTP/1.1 connections; when the pool is momentarily empty a task opens an
  ephemeral connection rather than wait (waiting would reintroduce the
  closed-loop cap), and returns it to the pool afterwards if there is room;
* latency is measured from the request's *scheduled* send time, not the
  actual send -- if the generator falls behind schedule the backlog counts
  (no coordinated omission);
* per-request outcomes are kept (:class:`LoadgenRecord`) and aggregated
  into a :class:`LoadgenReport` whose percentiles come from a
  :class:`repro.obs.Histogram` reservoir.

Traces carrying update requests are replayable, but concurrent delivery can
reorder them relative to reads; for differential comparisons against an
in-process replay use query-only traces (the SLO suite does).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..datasets.requests import RequestEvent, RequestTrace
from ..obs.metrics import Histogram
from .protocol import RemoteResponse, encode_request, response_from_dict

__all__ = ["LoadgenRecord", "LoadgenReport", "run_loadgen"]


@dataclass
class LoadgenRecord:
    """One replayed request's outcome.

    ``scheduled`` is the open-loop send time (seconds from run start, the
    event's arrival divided by the speedup); ``latency`` runs from that
    scheduled time to the response -- it includes any client-side backlog,
    so falling behind schedule is measured, not hidden.
    """

    index: int
    kind: str
    scheduled: float
    sent: float = 0.0
    completed: float = 0.0
    latency: float = 0.0
    status: int = 0
    response: Optional[RemoteResponse] = None

    @property
    def ok(self) -> bool:
        """Served without transport or per-response error."""
        return self.response is not None and self.response.ok

    @property
    def shed(self) -> bool:
        """Rejected by the server's admission queue (503)."""
        return self.status == 503


@dataclass
class LoadgenReport:
    """The aggregate outcome of one open-loop replay."""

    records: List[LoadgenRecord]
    elapsed: float
    speedup: float
    clients: int
    offered_rate: float      #: requests scheduled per second of replay
    latencies: Histogram = field(repr=False, default=None)

    @property
    def requests(self) -> int:
        """Requests replayed."""
        return len(self.records)

    @property
    def served(self) -> int:
        """Requests served without error."""
        return sum(1 for record in self.records if record.ok)

    @property
    def shed(self) -> int:
        """Requests the server shed (503)."""
        return sum(1 for record in self.records if record.shed)

    @property
    def errors(self) -> int:
        """Requests that failed for any non-shed reason."""
        return len(self.records) - self.served - self.shed

    @property
    def shed_rate(self) -> float:
        """Fraction of requests shed."""
        return self.shed / len(self.records) if self.records else 0.0

    @property
    def achieved_rate(self) -> float:
        """Requests completed (any outcome) per second of wall clock."""
        return len(self.records) / self.elapsed if self.elapsed > 0 else float("inf")

    def percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 (plus count/mean/min/max) of served-request latency,
        in seconds, from the obs histogram reservoir."""
        return self.latencies.snapshot()

    def summary(self) -> dict:
        """A JSON-ready digest (what ``repro loadgen`` prints/saves)."""
        latency = self.percentiles()
        return {
            "requests": self.requests,
            "served": self.served,
            "shed": self.shed,
            "errors": self.errors,
            "shed_rate": self.shed_rate,
            "elapsed": self.elapsed,
            "speedup": self.speedup,
            "clients": self.clients,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "latency": latency,
        }


def run_loadgen(
    host: str,
    port: int,
    trace: Union[RequestTrace, Sequence[RequestEvent]],
    *,
    speedup: float = 1.0,
    clients: int = 8,
    timeout: float = 30.0,
) -> LoadgenReport:
    """Replay ``trace`` open-loop against a live :class:`MaxRSServer`.

    Parameters
    ----------
    host, port:
        The server's bound address.
    speedup:
        Rate multiplier over the trace's recorded arrivals: request ``i``
        is scheduled at ``arrival_i / speedup`` seconds into the run, so
        ``speedup=2`` offers the trace at twice its recorded rate.
    clients:
        Size of the keep-alive connection pool.  In-flight requests are
        *not* capped at this number -- a request whose turn comes while the
        pool is empty opens an ephemeral connection (open-loop offered load
        never throttles on connection availability).
    timeout:
        Per-request response deadline (a request that exceeds it is
        recorded as a transport error, status 0).
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    events = list(trace)
    if not events:
        raise ValueError("the trace must carry at least one request")
    return asyncio.run(_replay(host, port, events, speedup=speedup,
                               clients=clients, timeout=timeout))


async def _replay(host: str, port: int, events: List[RequestEvent], *,
                  speedup: float, clients: int,
                  timeout: float) -> LoadgenReport:
    loop = asyncio.get_running_loop()
    records: List[LoadgenRecord] = []
    # Keep-alive pool: tasks borrow a (reader, writer) pair, or open an
    # ephemeral connection when the pool is momentarily dry.
    pool: "asyncio.Queue" = asyncio.Queue(maxsize=clients)
    started = loop.time()
    tasks = []
    for index, event in enumerate(events):
        record = LoadgenRecord(index=index, kind=event.kind,
                               scheduled=event.arrival / speedup)
        records.append(record)
        tasks.append(asyncio.ensure_future(
            _fire(host, port, event, record, pool,
                  started=started, timeout=timeout)))
    await asyncio.gather(*tasks)
    elapsed = loop.time() - started
    while True:
        try:
            _, writer = pool.get_nowait()
        except asyncio.QueueEmpty:
            break
        await _close_connection(writer)
    latencies = Histogram("loadgen.latency")
    for record in records:
        if record.ok:
            latencies.observe(record.latency)
    horizon = max(event.arrival for event in events) / speedup
    offered = len(records) / horizon if horizon > 0 else float("inf")
    return LoadgenReport(records=records, elapsed=elapsed, speedup=speedup,
                         clients=clients, offered_rate=offered,
                         latencies=latencies)


async def _fire(host: str, port: int, event: RequestEvent,
                record: LoadgenRecord, pool: "asyncio.Queue", *,
                started: float, timeout: float) -> None:
    """Send one request at its scheduled time, whatever else is in flight."""
    loop = asyncio.get_running_loop()
    delay = (started + record.scheduled) - loop.time()
    if delay > 0:
        await asyncio.sleep(delay)
    record.sent = loop.time() - started
    reader = writer = None
    try:
        try:
            reader, writer = pool.get_nowait()
        except asyncio.QueueEmpty:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout)
        status, payload = await asyncio.wait_for(
            _exchange(reader, writer, host, event), timeout)
        record.status = status
        record.response = response_from_dict(payload, status=status)
        try:
            pool.put_nowait((reader, writer))
        except asyncio.QueueFull:
            await _close_connection(writer)
    except (ConnectionError, OSError, ValueError,
            asyncio.TimeoutError, asyncio.IncompleteReadError):
        record.status = 0
        if writer is not None:
            await _close_connection(writer)
    record.completed = loop.time() - started
    # Open-loop latency: from the *scheduled* send, so client-side backlog
    # counts against the server that caused it.
    record.latency = max(0.0, record.completed - record.scheduled)


async def _close_connection(writer: asyncio.StreamWriter) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):  # pragma: no cover
        pass


async def _exchange(reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                    host: str, event: RequestEvent):
    body = encode_request(event)
    head = ("POST /v1/request HTTP/1.1\r\n"
            "Host: %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n\r\n" % (host, len(body)))
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    parts = status_line.decode("latin-1").split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError("malformed status line %r" % status_line[:80])
    status = int(parts[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = json.loads(await reader.readexactly(length)) if length else {}
    return status, payload
