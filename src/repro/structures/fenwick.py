"""Fenwick (binary indexed) tree for prefix sums.

Used by the batched smallest-k-enclosing-interval experiments and by a few
workload statistics helpers; kept small and dependency-free.
"""

from __future__ import annotations

from typing import List

__all__ = ["FenwickTree"]


class FenwickTree:
    """Prefix-sum tree over ``size`` positions (0-indexed externally)."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("Fenwick tree size must be positive")
        self._n = size
        self._tree: List[float] = [0.0] * (size + 1)

    @property
    def size(self) -> int:
        return self._n

    def add(self, index: int, delta: float) -> None:
        """Add ``delta`` at position ``index``."""
        if not 0 <= index < self._n:
            raise IndexError("index %d out of bounds for size %d" % (index, self._n))
        i = index + 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> float:
        """Sum of positions ``0..index`` inclusive; ``index = -1`` gives 0."""
        if index >= self._n:
            index = self._n - 1
        total = 0.0
        i = index + 1
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of positions ``lo..hi`` inclusive."""
        if lo > hi:
            return 0.0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)
