"""Uniform grid index over weighted points in R^d.

Technique 1 repeatedly needs to know which grid cells a unit ball intersects
and which points fall where; the dynamic structure keeps that bookkeeping
inline for performance, but several consumers outside the core (the streaming
examples, workload inspection, and the ablation experiments) want the same
ability as a reusable structure.  :class:`GridIndex` hashes points into cells
of a fixed side length and answers ball and box coverage queries by visiting
only the cells that can contribute.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.geometry import point_in_ball, point_in_box

__all__ = ["GridIndex"]

Coords = Tuple[float, ...]
CellKey = Tuple[int, ...]


class GridIndex:
    """A uniform hash grid over weighted points.

    Parameters
    ----------
    dim:
        Dimension of the indexed points.
    cell_side:
        Side length of the (cubical) grid cells; typically set to the query
        radius so a ball query touches ``3^d`` cells.
    """

    def __init__(self, dim: int, cell_side: float):
        if dim < 1:
            raise ValueError("dimension must be >= 1")
        if cell_side <= 0:
            raise ValueError("cell_side must be positive")
        self.dim = int(dim)
        self.cell_side = float(cell_side)
        self._cells: Dict[CellKey, Dict[int, Tuple[Coords, float]]] = defaultdict(dict)
        self._points: Dict[int, Tuple[Coords, float, CellKey]] = {}
        self._next_id = 0
        self._total_weight = 0.0

    # ------------------------------------------------------------------ #
    # basic bookkeeping
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._points)

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def occupied_cells(self) -> int:
        return sum(1 for members in self._cells.values() if members)

    def cell_of(self, point: Sequence[float]) -> CellKey:
        """The cell key containing ``point``."""
        if len(point) != self.dim:
            raise ValueError("expected a %d-dimensional point, got %r" % (self.dim, point))
        return tuple(int(math.floor(float(x) / self.cell_side)) for x in point)

    def insert(self, point: Sequence[float], weight: float = 1.0) -> int:
        """Insert a weighted point; returns an id usable with :meth:`delete`."""
        coords = tuple(float(x) for x in point)
        key = self.cell_of(coords)
        point_id = self._next_id
        self._next_id += 1
        self._cells[key][point_id] = (coords, float(weight))
        self._points[point_id] = (coords, float(weight), key)
        self._total_weight += float(weight)
        return point_id

    def delete(self, point_id: int) -> None:
        """Remove a point by the id returned from :meth:`insert`."""
        entry = self._points.pop(point_id, None)
        if entry is None:
            raise KeyError("unknown point id %r" % point_id)
        coords, weight, key = entry
        self._cells[key].pop(point_id, None)
        if not self._cells[key]:
            del self._cells[key]
        self._total_weight -= weight

    def bulk_load(self, points: Sequence[Sequence[float]],
                  weights: Optional[Sequence[float]] = None) -> List[int]:
        """Insert many points at once; returns their ids in input order."""
        weight_list = list(weights) if weights is not None else [1.0] * len(points)
        if len(weight_list) != len(points):
            raise ValueError("got %d weights for %d points" % (len(weight_list), len(points)))
        return [self.insert(p, w) for p, w in zip(points, weight_list)]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _cells_overlapping(self, lower: Coords, upper: Coords) -> Iterator[CellKey]:
        ranges = [
            range(int(math.floor(lo / self.cell_side)), int(math.floor(hi / self.cell_side)) + 1)
            for lo, hi in zip(lower, upper)
        ]

        def recurse(prefix: Tuple[int, ...], depth: int) -> Iterator[CellKey]:
            if depth == self.dim:
                yield prefix
                return
            for index in ranges[depth]:
                yield from recurse(prefix + (index,), depth + 1)

        yield from recurse((), 0)

    def points_in_ball(self, center: Sequence[float], radius: float) -> List[Tuple[Coords, float]]:
        """All (point, weight) pairs inside the closed ball."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        center = tuple(float(x) for x in center)
        if len(center) != self.dim:
            raise ValueError("expected a %d-dimensional center" % self.dim)
        lower = tuple(c - radius for c in center)
        upper = tuple(c + radius for c in center)
        found: List[Tuple[Coords, float]] = []
        for key in self._cells_overlapping(lower, upper):
            members = self._cells.get(key)
            if not members:
                continue
            for coords, weight in members.values():
                if point_in_ball(coords, center, radius):
                    found.append((coords, weight))
        return found

    def weight_in_ball(self, center: Sequence[float], radius: float) -> float:
        """Total weight inside the closed ball."""
        return sum(weight for _, weight in self.points_in_ball(center, radius))

    def count_in_ball(self, center: Sequence[float], radius: float) -> int:
        """Number of points inside the closed ball."""
        return len(self.points_in_ball(center, radius))

    def points_in_box(self, lower: Sequence[float], upper: Sequence[float]) -> List[Tuple[Coords, float]]:
        """All (point, weight) pairs inside the closed axis-aligned box."""
        lower = tuple(float(x) for x in lower)
        upper = tuple(float(x) for x in upper)
        if len(lower) != self.dim or len(upper) != self.dim:
            raise ValueError("box corners must be %d-dimensional" % self.dim)
        if any(lo > hi for lo, hi in zip(lower, upper)):
            raise ValueError("box lower corner must not exceed upper corner")
        found: List[Tuple[Coords, float]] = []
        for key in self._cells_overlapping(lower, upper):
            members = self._cells.get(key)
            if not members:
                continue
            for coords, weight in members.values():
                if point_in_box(coords, lower, upper):
                    found.append((coords, weight))
        return found

    def weight_in_box(self, lower: Sequence[float], upper: Sequence[float]) -> float:
        """Total weight inside the closed axis-aligned box."""
        return sum(weight for _, weight in self.points_in_box(lower, upper))

    def heaviest_cell(self) -> Optional[Tuple[CellKey, float]]:
        """The occupied cell of largest total weight (a crude hotspot indicator)."""
        best: Optional[Tuple[CellKey, float]] = None
        for key, members in self._cells.items():
            if not members:
                continue
            weight = sum(w for _, w in members.values())
            if best is None or weight > best[1]:
                best = (key, weight)
        return best
