"""Segment tree with range-add and global-max queries.

This is the classical substrate behind the Imai--Asano / Nandy--Bhattacharya
``O(n log n)`` exact MaxRS algorithm for axis-aligned rectangles: sweeping the
x-axis turns the problem into maintaining a set of weighted y-intervals under
insertions and deletions while repeatedly asking for the point of maximum
total weight.

The tree is built over ``m`` elementary positions (after coordinate
compression).  ``add(lo, hi, delta)`` adds ``delta`` to every position in the
closed index range ``[lo, hi]``; ``max_value()`` and ``argmax()`` report the
current maximum and one position attaining it.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["MaxAddSegmentTree"]


class MaxAddSegmentTree:
    """Array-backed segment tree supporting range add and global max with argmax."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("segment tree size must be positive")
        self._n = size
        self._max: List[float] = [0.0] * (4 * size)
        self._arg: List[int] = [0] * (4 * size)
        self._lazy: List[float] = [0.0] * (4 * size)
        self._build(1, 0, size - 1)

    @property
    def size(self) -> int:
        return self._n

    def _build(self, node: int, lo: int, hi: int) -> None:
        self._arg[node] = lo
        if lo == hi:
            return
        mid = (lo + hi) // 2
        self._build(2 * node, lo, mid)
        self._build(2 * node + 1, mid + 1, hi)

    def add(self, lo: int, hi: int, delta: float) -> None:
        """Add ``delta`` to every position in the closed range ``[lo, hi]``."""
        if lo > hi:
            return
        if lo < 0 or hi >= self._n:
            raise IndexError("range [%d, %d] out of bounds for size %d" % (lo, hi, self._n))
        self._add(1, 0, self._n - 1, lo, hi, float(delta))

    def _add(self, node: int, node_lo: int, node_hi: int, lo: int, hi: int, delta: float) -> None:
        if hi < node_lo or node_hi < lo:
            return
        if lo <= node_lo and node_hi <= hi:
            self._max[node] += delta
            self._lazy[node] += delta
            return
        mid = (node_lo + node_hi) // 2
        self._add(2 * node, node_lo, mid, lo, hi, delta)
        self._add(2 * node + 1, mid + 1, node_hi, lo, hi, delta)
        self._pull(node)

    def _pull(self, node: int) -> None:
        left, right = 2 * node, 2 * node + 1
        if self._max[left] >= self._max[right]:
            best, arg = self._max[left], self._arg[left]
        else:
            best, arg = self._max[right], self._arg[right]
        self._max[node] = best + self._lazy[node]
        self._arg[node] = arg

    def max_value(self) -> float:
        """Current maximum over all positions."""
        return self._max[1]

    def argmax(self) -> int:
        """One position attaining the current maximum."""
        return self._arg[1]

    def max_with_argmax(self) -> Tuple[float, int]:
        return self._max[1], self._arg[1]

    def values(self) -> List[float]:
        """Materialise all position values (testing / debugging helper)."""
        out = [0.0] * self._n
        self._collect(1, 0, self._n - 1, 0.0, out)
        return out

    def _collect(self, node: int, lo: int, hi: int, acc: float, out: List[float]) -> None:
        if lo == hi:
            out[lo] = acc + self._max[node]
            return
        acc += self._lazy[node]
        mid = (lo + hi) // 2
        self._collect(2 * node, lo, mid, acc, out)
        self._collect(2 * node + 1, mid + 1, hi, acc, out)
