"""Lazy max-heap over mutable keys.

The dynamic MaxRS structure (Theorem 1.1) maintains the weighted depth of a
large pool of sample points and must answer "which sample point currently has
maximum depth" after every update.  Depths move up *and* down (deletions), so
a plain heap would go stale; this heap keeps the authoritative value in a
dictionary and lazily discards outdated heap entries at query time, giving
amortised ``O(log N)`` per update/query.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["LazyMaxHeap"]


class LazyMaxHeap:
    """Max-priority queue keyed by hashable ids with updatable priorities."""

    def __init__(self):
        self._heap = []  # entries are (-value, key)
        self._values: Dict[Hashable, float] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def set(self, key: Hashable, value: float) -> None:
        """Insert ``key`` or update its priority to ``value``."""
        self._values[key] = value
        heapq.heappush(self._heap, (-value, key))

    def adjust(self, key: Hashable, delta: float) -> float:
        """Add ``delta`` to the priority of ``key`` (which must exist); return the new value."""
        new_value = self._values[key] + delta
        self.set(key, new_value)
        return new_value

    def get(self, key: Hashable, default: float = 0.0) -> float:
        return self._values.get(key, default)

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` entirely; stale heap entries are dropped lazily."""
        self._values.pop(key, None)

    def peek(self) -> Optional[Tuple[Hashable, float]]:
        """Return ``(key, value)`` of the current maximum, or ``None`` if empty."""
        while self._heap:
            neg_value, key = self._heap[0]
            current = self._values.get(key)
            if current is not None and current == -neg_value:
                return key, current
            heapq.heappop(self._heap)
        return None

    def clear(self) -> None:
        self._heap.clear()
        self._values.clear()
