"""Supporting data structures (substrates) used by the MaxRS algorithms."""

from .segment_tree import MaxAddSegmentTree
from .lazy_heap import LazyMaxHeap
from .fenwick import FenwickTree
from .grid_index import GridIndex

__all__ = ["MaxAddSegmentTree", "LazyMaxHeap", "FenwickTree", "GridIndex"]
