"""The hardness-reduction chains of Sections 5 and 6, executable end-to-end.

Theorem 1.3 (batched MaxRS) is proved by the chain of Figure 6::

    (min,+)-convolution
        -> (min,+,M)-convolution          (Section 5.1: partition the indices)
        -> (max,+,M)-convolution          (Section 5.2: negate)
        -> positive (max,+,M)-convolution (Section 5.3: shift to non-negative)
        -> batched MaxRS in R^1           (Section 5.4: guard-point construction)

Theorem 1.4 (batched smallest k-enclosing interval) uses::

    (min,+)-convolution
        -> monotone (min,+)-convolution   (Section 6.1: subtract i * Delta)
        -> batched SEI                    (Section 6.2: mirrored point construction)

Every step below is an honest, linear-time (plus oracle calls) reduction; the
composed functions :func:`min_plus_via_batched_maxrs` and
:func:`min_plus_via_bsei` therefore compute a (min,+)-convolution *through*
the geometric oracles.  Experiments E6/E7 verify the outputs against the
naive quadratic convolution and measure the oracle cost, which is how the
conditional lower bounds are validated empirically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..batched.maxrs import batched_maxrs_1d
from ..batched.sei import batched_smallest_enclosing_intervals

__all__ = [
    "min_plus_via_indexed_oracle",
    "min_plus_indexed_via_max_plus_oracle",
    "max_plus_indexed_via_positive_oracle",
    "batched_maxrs_instance_from_sequences",
    "positive_max_plus_indexed_via_batched_maxrs",
    "min_plus_via_batched_maxrs",
    "monotone_sequences_from_arbitrary",
    "min_plus_via_monotone_oracle",
    "bsei_instance_from_monotone_sequences",
    "monotone_min_plus_via_bsei",
    "min_plus_via_bsei",
]

IndexedOracle = Callable[[Sequence[float], Sequence[float], Sequence[int]], List[float]]


# --------------------------------------------------------------------------- #
# Section 5.1: (min,+) -> (min,+,M)
# --------------------------------------------------------------------------- #

def min_plus_via_indexed_oracle(
    a: Sequence[float],
    b: Sequence[float],
    indexed_oracle: IndexedOracle,
    batch_size: Optional[int] = None,
) -> List[float]:
    """Compute a full (min,+)-convolution through a (min,+,M)-oracle.

    The index set ``{0, ..., n-1}`` is split into ``ceil(n / m)`` batches of at
    most ``m = batch_size`` indices and the oracle is called once per batch.
    """
    n = len(a)
    if len(b) != n or n == 0:
        raise ValueError("sequences must be non-empty and of equal length")
    m = n if batch_size is None else max(1, int(batch_size))
    result: List[float] = []
    for start in range(0, n, m):
        batch = list(range(start, min(start + m, n)))
        result.extend(indexed_oracle(a, b, batch))
    return result


# --------------------------------------------------------------------------- #
# Section 5.2: (min,+,M) -> (max,+,M)
# --------------------------------------------------------------------------- #

def min_plus_indexed_via_max_plus_oracle(
    d: Sequence[float],
    e: Sequence[float],
    indices: Sequence[int],
    max_plus_oracle: IndexedOracle,
) -> List[float]:
    """Answer a (min,+,M)-convolution with a (max,+,M)-oracle by negating the inputs."""
    negated_a = [-value for value in d]
    negated_b = [-value for value in e]
    oracle_values = max_plus_oracle(negated_a, negated_b, indices)
    return [-value for value in oracle_values]


# --------------------------------------------------------------------------- #
# Section 5.3: (max,+,M) -> positive (max,+,M)
# --------------------------------------------------------------------------- #

def max_plus_indexed_via_positive_oracle(
    a: Sequence[float],
    b: Sequence[float],
    indices: Sequence[int],
    positive_oracle: IndexedOracle,
) -> List[float]:
    """Answer a (max,+,M)-convolution with an oracle that requires non-negative inputs."""
    delta = min(min(a), min(b))
    if delta >= 0:
        return list(positive_oracle(a, b, indices))
    shifted_a = [value - delta for value in a]
    shifted_b = [value - delta for value in b]
    oracle_values = positive_oracle(shifted_a, shifted_b, indices)
    return [value + 2 * delta for value in oracle_values]


# --------------------------------------------------------------------------- #
# Section 5.4: positive (max,+,M) -> batched MaxRS in R^1
# --------------------------------------------------------------------------- #

def batched_maxrs_instance_from_sequences(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[List[float], List[float]]:
    """The guard-point construction of Section 5.4 (plus two sentinel blockers).

    Returns ``(positions, weights)`` of the ``4n + 2`` points: for every
    ``A_i`` a point of weight ``A_i`` at coordinate ``i`` and a guard of
    weight ``-A_i`` at ``i - 0.5``; for every ``B_j`` a point of weight
    ``B_j`` at ``2n - 1 - j`` and a guard of weight ``-B_j`` at
    ``2n - 1 - j + 0.5``.

    Deviation from the paper (documented in DESIGN.md): the construction as
    written admits one family of stray placements.  An interval whose left
    endpoint lies at or below ``-0.5`` covers *every* A-point together with
    its guard (net weight zero) and can still end inside ``[2n-1-b, 2n-1-b+0.5)``
    for some ``b > k``, picking up ``B_b`` unguarded; when ``B_b > C_k`` the
    oracle would overshoot (symmetrically on the right with ``A_a``).  Two
    sentinel points of strongly negative weight at ``-0.5`` and ``2n - 0.5``
    eliminate exactly those placements: every legitimate interval
    ``[i, 2n-1-j]`` with ``0 <= i, j <= n-1`` avoids both sentinels, so
    Claim 5.2 and Lemma 5.1 are unaffected.
    """
    n = len(a)
    if len(b) != n or n == 0:
        raise ValueError("sequences must be non-empty and of equal length")
    x_offset = 2 * n - 1
    positions: List[float] = []
    weights: List[float] = []
    for i, value in enumerate(a):
        positions.append(float(i))
        weights.append(float(value))
        positions.append(i - 0.5)
        weights.append(-float(value))
    for j, value in enumerate(b):
        positions.append(float(x_offset - j))
        weights.append(float(value))
        positions.append(x_offset - j + 0.5)
        weights.append(-float(value))
    blocker = 1.0 + max(a) + max(b)
    positions.append(-0.5)
    weights.append(-blocker)
    positions.append(x_offset + 0.5)
    weights.append(-blocker)
    return positions, weights


def positive_max_plus_indexed_via_batched_maxrs(
    a: Sequence[float],
    b: Sequence[float],
    indices: Sequence[int],
    batched_maxrs_oracle=None,
) -> List[float]:
    """Answer a positive (max,+,M)-convolution with a batched-MaxRS oracle.

    ``batched_maxrs_oracle(positions, lengths, weights=...)`` must return, for
    every query length, an object with a ``value`` attribute (the library's
    :func:`repro.batched.maxrs.batched_maxrs_1d` is the default).  For target
    index ``k`` the query interval length is ``2n - 1 - k`` and the returned
    maximum weight equals ``C_k`` (Lemma 5.1).
    """
    if any(value < 0 for value in a) or any(value < 0 for value in b):
        raise ValueError("positive (max,+,M)-convolution requires non-negative inputs")
    n = len(a)
    positions, weights = batched_maxrs_instance_from_sequences(a, b)
    lengths = [2 * n - 1 - int(k) for k in indices]
    oracle = batched_maxrs_oracle if batched_maxrs_oracle is not None else batched_maxrs_1d
    results = oracle(positions, lengths, weights=weights)
    return [float(result.value) for result in results]


def min_plus_via_batched_maxrs(
    a: Sequence[float],
    b: Sequence[float],
    batch_size: Optional[int] = None,
    batched_maxrs_oracle=None,
) -> List[float]:
    """Full Theorem 1.3 chain: (min,+)-convolution computed through batched MaxRS."""

    def positive_oracle(pa, pb, idx):
        return positive_max_plus_indexed_via_batched_maxrs(
            pa, pb, idx, batched_maxrs_oracle=batched_maxrs_oracle
        )

    def max_plus_oracle(ma, mb, idx):
        return max_plus_indexed_via_positive_oracle(ma, mb, idx, positive_oracle)

    def indexed_oracle(da, db, idx):
        return min_plus_indexed_via_max_plus_oracle(da, db, idx, max_plus_oracle)

    return min_plus_via_indexed_oracle(a, b, indexed_oracle, batch_size=batch_size)


# --------------------------------------------------------------------------- #
# Section 6.1: (min,+) -> monotone (min,+)
# --------------------------------------------------------------------------- #

def monotone_sequences_from_arbitrary(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[List[float], List[float], float]:
    """Strictly decreasing sequences ``D, E`` plus the offset ``Delta`` of Section 6.1."""
    n = len(a)
    if len(b) != n or n == 0:
        raise ValueError("sequences must be non-empty and of equal length")
    if n == 1:
        delta = 1.0
    else:
        max_increase = max(
            max(a[i] - a[i - 1] for i in range(1, n)),
            max(b[i] - b[i - 1] for i in range(1, n)),
        )
        delta = 1.0 + max(0.0, max_increase)
    d = [a[i] - i * delta for i in range(n)]
    e = [b[i] - i * delta for i in range(n)]
    return d, e, delta


def min_plus_via_monotone_oracle(
    a: Sequence[float],
    b: Sequence[float],
    monotone_oracle: Callable[[Sequence[float], Sequence[float]], Sequence[float]],
) -> List[float]:
    """Compute a (min,+)-convolution through a monotone (min,+)-oracle (Section 6.1)."""
    d, e, delta = monotone_sequences_from_arbitrary(a, b)
    f = monotone_oracle(d, e)
    return [f[k] + k * delta for k in range(len(d))]


# --------------------------------------------------------------------------- #
# Section 6.2: monotone (min,+) -> batched smallest k-enclosing interval
# --------------------------------------------------------------------------- #

def bsei_instance_from_monotone_sequences(
    d: Sequence[float], e: Sequence[float]
) -> List[float]:
    """The ``2n``-point construction of Section 6.2.

    ``P_i = -D_i + (D_{n-1} - 1)`` for ``i < n`` (all negative) and
    ``P_{n+i} = E_{(n-1)-i} + (1 - E_{n-1})`` (all positive).
    """
    n = len(d)
    if len(e) != n or n == 0:
        raise ValueError("sequences must be non-empty and of equal length")
    d_last = d[n - 1]
    e_last = e[n - 1]
    first_half = [-d[i] + (d_last - 1.0) for i in range(n)]
    second_half = [e[(n - 1) - i] + (1.0 - e_last) for i in range(n)]
    return first_half + second_half


def monotone_min_plus_via_bsei(
    d: Sequence[float],
    e: Sequence[float],
    bsei_oracle: Callable[[Sequence[float]], Sequence[float]] = None,
) -> List[float]:
    """Answer a monotone (min,+)-convolution with a batched-SEI oracle (Section 6.2).

    ``bsei_oracle(points)`` must return, for every ``k`` in ``1..2n``, the
    length of the smallest interval containing ``k`` of the points (the
    library's :func:`repro.batched.sei.batched_smallest_enclosing_intervals`
    is the default).  The answer is recovered as
    ``F_k = G_{2n-k} + D_{n-1} + E_{n-1} - 2``.
    """
    n = len(d)
    if len(e) != n or n == 0:
        raise ValueError("sequences must be non-empty and of equal length")
    points = bsei_instance_from_monotone_sequences(d, e)
    oracle = bsei_oracle if bsei_oracle is not None else batched_smallest_enclosing_intervals
    lengths = list(oracle(points))
    if len(lengths) != 2 * n:
        raise ValueError("BSEI oracle must return one length per k in 1..2n")
    d_last, e_last = d[n - 1], e[n - 1]
    return [lengths[2 * n - k - 1] + d_last + e_last - 2.0 for k in range(n)]


def min_plus_via_bsei(
    a: Sequence[float],
    b: Sequence[float],
    bsei_oracle: Callable[[Sequence[float]], Sequence[float]] = None,
) -> List[float]:
    """Full Theorem 1.4 chain: (min,+)-convolution computed through batched SEI."""

    def monotone_oracle(d, e):
        return monotone_min_plus_via_bsei(d, e, bsei_oracle=bsei_oracle)

    return min_plus_via_monotone_oracle(a, b, monotone_oracle)
