"""Naive (quadratic) implementations of the convolution problems of Sections 5-6.

The paper's lower bounds are *conditional* on the conjecture that
(min,+)-convolution has no truly sub-quadratic algorithm [CMWW19].  The
functions here are the straightforward quadratic references; the reduction
chains in :mod:`repro.convolution.reductions` are checked against them.

Conventions follow the paper: for length-``n`` inputs the output is indexed by
``k in {0, ..., n - 1}`` and ``C_k = min (or max) over i + j = k with
0 <= i, j <= n - 1`` of ``A_i + B_j``.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "min_plus_convolution",
    "max_plus_convolution",
    "min_plus_convolution_at_indices",
    "max_plus_convolution_at_indices",
    "monotone_min_plus_convolution",
    "is_strictly_decreasing",
]


def _validate_pair(a: Sequence[float], b: Sequence[float]) -> int:
    if len(a) != len(b):
        raise ValueError("sequences must have equal length, got %d and %d" % (len(a), len(b)))
    if not a:
        raise ValueError("sequences must be non-empty")
    return len(a)


def min_plus_convolution(a: Sequence[float], b: Sequence[float]) -> List[float]:
    """``C_k = min_{i + j = k} (A_i + B_j)`` for ``k = 0 .. n - 1``."""
    n = _validate_pair(a, b)
    return [
        min(a[i] + b[k - i] for i in range(max(0, k - n + 1), min(k, n - 1) + 1))
        for k in range(n)
    ]


def max_plus_convolution(a: Sequence[float], b: Sequence[float]) -> List[float]:
    """``C_k = max_{i + j = k} (A_i + B_j)`` for ``k = 0 .. n - 1``."""
    n = _validate_pair(a, b)
    return [
        max(a[i] + b[k - i] for i in range(max(0, k - n + 1), min(k, n - 1) + 1))
        for k in range(n)
    ]


def _validate_indices(indices: Sequence[int], n: int) -> List[int]:
    index_list = [int(k) for k in indices]
    if len(set(index_list)) != len(index_list):
        raise ValueError("target indices must be distinct")
    for k in index_list:
        if not 0 <= k < n:
            raise ValueError("target index %d out of range [0, %d)" % (k, n))
    return index_list


def min_plus_convolution_at_indices(
    a: Sequence[float], b: Sequence[float], indices: Sequence[int]
) -> List[float]:
    """The (min,+,M)-convolution: ``C_k`` only for the requested indices ``M``."""
    n = _validate_pair(a, b)
    index_list = _validate_indices(indices, n)
    return [
        min(a[i] + b[k - i] for i in range(max(0, k - n + 1), min(k, n - 1) + 1))
        for k in index_list
    ]


def max_plus_convolution_at_indices(
    a: Sequence[float], b: Sequence[float], indices: Sequence[int]
) -> List[float]:
    """The (max,+,M)-convolution: ``C_k`` only for the requested indices ``M``."""
    n = _validate_pair(a, b)
    index_list = _validate_indices(indices, n)
    return [
        max(a[i] + b[k - i] for i in range(max(0, k - n + 1), min(k, n - 1) + 1))
        for k in index_list
    ]


def is_strictly_decreasing(values: Sequence[float]) -> bool:
    """Whether a sequence is strictly decreasing (monotone convolution precondition)."""
    return all(earlier > later for earlier, later in zip(values, values[1:]))


def monotone_min_plus_convolution(d: Sequence[float], e: Sequence[float]) -> List[float]:
    """(min,+)-convolution restricted to strictly decreasing inputs (Definition 6.1)."""
    if not is_strictly_decreasing(d) or not is_strictly_decreasing(e):
        raise ValueError("monotone (min,+)-convolution requires strictly decreasing inputs")
    return min_plus_convolution(d, e)
