"""(min,+)-style convolutions and the hardness-reduction chains (Sections 5 and 6).

:mod:`repro.convolution.naive` implements every convolution variant the paper
uses as a quadratic-time reference; :mod:`repro.convolution.reductions`
implements the two reduction chains of Figure 6 and Section 6, so that a
(min,+)-convolution can be computed *through* the batched-MaxRS oracle or the
batched smallest-k-enclosing-interval oracle.  Executing those chains
end-to-end and comparing against the naive reference is how the conditional
lower bounds (Theorems 1.3 and 1.4) are validated empirically.
"""

from .naive import (
    max_plus_convolution,
    max_plus_convolution_at_indices,
    min_plus_convolution,
    min_plus_convolution_at_indices,
    monotone_min_plus_convolution,
)
from .reductions import (
    batched_maxrs_instance_from_sequences,
    bsei_instance_from_monotone_sequences,
    max_plus_indexed_via_positive_oracle,
    min_plus_indexed_via_max_plus_oracle,
    min_plus_via_batched_maxrs,
    min_plus_via_bsei,
    min_plus_via_indexed_oracle,
    monotone_min_plus_via_bsei,
    positive_max_plus_indexed_via_batched_maxrs,
)

__all__ = [
    "min_plus_convolution",
    "max_plus_convolution",
    "min_plus_convolution_at_indices",
    "max_plus_convolution_at_indices",
    "monotone_min_plus_convolution",
    "min_plus_via_indexed_oracle",
    "min_plus_indexed_via_max_plus_oracle",
    "max_plus_indexed_via_positive_oracle",
    "positive_max_plus_indexed_via_batched_maxrs",
    "batched_maxrs_instance_from_sequences",
    "min_plus_via_batched_maxrs",
    "monotone_min_plus_via_bsei",
    "bsei_instance_from_monotone_sequences",
    "min_plus_via_bsei",
]
