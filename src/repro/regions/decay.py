"""Time-decaying MaxRS: hotspots of exponentially discounted recent activity.

[TT22] studies MaxRS for dynamically occurring objects whose weights decay
over time -- newer observations matter more, older ones fade out instead of
disappearing at a hard window boundary.  The key implementation observation
is that *uniform* exponential decay never changes which placement is optimal:
if every weight is multiplied by the same factor ``gamma`` per tick, every
candidate placement's value scales by the same factor, so the argmax of the
paper's dynamic structure (Theorem 1.1) is unaffected.

:class:`DecayingMaxRSMonitor` therefore keeps a single global scale factor.
A tick multiplies the scale by ``gamma`` in O(1); a new observation is
inserted into the dynamic structure with weight ``w / scale`` so that its
*effective* weight (structure weight times scale) is ``w`` at insertion time
and decays thereafter.  Observations whose effective weight drops below
``prune_below`` are physically deleted, which keeps the structure small and
the internal weights bounded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dynamic import DynamicMaxRS
from ..core.result import MaxRSResult

__all__ = ["DecayingMaxRSMonitor"]

Coords = Tuple[float, ...]


class DecayingMaxRSMonitor:
    """MaxRS over exponentially decaying weights (the [TT22] setting).

    Parameters
    ----------
    decay:
        Per-tick multiplicative decay factor ``gamma`` in ``(0, 1)``.
    dim, radius, epsilon, seed:
        Forwarded to the underlying :class:`repro.core.dynamic.DynamicMaxRS`.
    prune_below:
        Observations whose effective weight falls below this threshold are
        deleted from the structure (set to 0 to keep everything forever).
    """

    def __init__(
        self,
        decay: float,
        dim: int = 2,
        radius: float = 1.0,
        epsilon: float = 0.25,
        *,
        seed=None,
        prune_below: float = 1e-3,
    ):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie strictly between 0 and 1, got %r" % decay)
        if prune_below < 0:
            raise ValueError("prune_below must be non-negative")
        self.decay = float(decay)
        self.prune_below = float(prune_below)
        self._structure = DynamicMaxRS(dim=dim, radius=radius, epsilon=epsilon, seed=seed)
        self._scale = 1.0
        self._ticks = 0
        # id -> (raw weight at insertion, insertion tick)
        self._observations: Dict[int, Tuple[float, int]] = {}

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._observations)

    @property
    def ticks(self) -> int:
        """Number of decay ticks applied so far."""
        return self._ticks

    def effective_weight(self, observation_id: int) -> float:
        """Current (decayed) weight of a live observation."""
        if observation_id not in self._observations:
            raise KeyError("unknown observation id %r" % observation_id)
        raw, inserted_at = self._observations[observation_id]
        return raw * (self.decay ** (self._ticks - inserted_at))

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def observe(self, point: Sequence[float], weight: float = 1.0) -> int:
        """Insert an observation with its full (undecayed) weight."""
        if weight <= 0:
            raise ValueError("observation weights must be positive")
        # Stored weight is chosen so that stored * scale == weight right now.
        stored = float(weight) / self._scale
        observation_id = self._structure.insert(point, stored)
        self._observations[observation_id] = (float(weight), self._ticks)
        return observation_id

    def forget(self, observation_id: int) -> None:
        """Explicitly delete an observation before it decays away."""
        if observation_id not in self._observations:
            raise KeyError("unknown observation id %r" % observation_id)
        del self._observations[observation_id]
        self._structure.delete(observation_id)

    def tick(self, steps: int = 1) -> None:
        """Advance time: every live observation's weight decays by ``decay`` per step."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self._ticks += steps
        self._scale *= self.decay ** steps
        if self.prune_below > 0:
            self._prune()
        if self._scale < 1e-9:
            self._renormalize()

    def _renormalize(self) -> None:
        """Rebuild the structure with the current effective weights and reset the scale.

        Keeps the internal (stored) weights bounded on very long runs, where
        ``1 / scale`` would otherwise grow without limit.
        """
        snapshot = self._structure.points()
        live = [
            (observation_id, snapshot[observation_id][0],
             raw * (self.decay ** (self._ticks - inserted_at)))
            for observation_id, (raw, inserted_at) in self._observations.items()
        ]
        for observation_id, _, _ in live:
            self._structure.delete(observation_id)
        self._observations = {}
        self._scale = 1.0
        for _, point, effective in live:
            if effective <= 0.0:
                # Fully faded (numerically underflowed) observations carry no
                # information; dropping them keeps the structure's weights valid.
                continue
            new_id = self._structure.insert(point, effective)
            self._observations[new_id] = (effective, self._ticks)

    def _prune(self) -> None:
        stale: List[int] = [
            observation_id
            for observation_id, (raw, inserted_at) in self._observations.items()
            if raw * (self.decay ** (self._ticks - inserted_at)) < self.prune_below
        ]
        for observation_id in stale:
            del self._observations[observation_id]
            self._structure.delete(observation_id)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def current(self) -> MaxRSResult:
        """The hotspot of the decayed weights (same guarantee as Theorem 1.1).

        The underlying structure reports values in its internal (undecayed)
        scale; multiplying by the global scale converts them back to the
        decayed weights the caller reasons about.
        """
        internal = self._structure.query()
        if internal.center is None:
            return internal
        meta = dict(internal.meta)
        meta.update({"scale": self._scale, "ticks": self._ticks, "decay": self.decay})
        return MaxRSResult(
            value=internal.value * self._scale,
            center=internal.center,
            shape=internal.shape,
            exact=False,
            meta=meta,
        )

    def total_effective_weight(self) -> float:
        """Sum of the decayed weights of all live observations."""
        return sum(
            raw * (self.decay ** (self._ticks - inserted_at))
            for raw, inserted_at in self._observations.values()
        )
