"""Time-decaying MaxRS: hotspots of exponentially discounted recent activity.

[TT22] studies MaxRS for dynamically occurring objects whose weights decay
over time -- newer observations matter more, older ones fade out instead of
disappearing at a hard window boundary.  The key implementation observation
is that *uniform* exponential decay never changes which placement is optimal:
if every weight is multiplied by the same factor ``gamma`` per tick, every
candidate placement's value scales by the same factor, so the argmax of the
paper's dynamic structure (Theorem 1.1) is unaffected.

:class:`DecayingMaxRSMonitor` therefore keeps a single global scale factor.
A tick multiplies the scale by ``gamma`` in O(1); a new observation is
inserted into the dynamic structure with weight ``w / scale`` so that its
*effective* weight (structure weight times scale) is ``w`` at insertion time
and decays thereafter.  Observations whose effective weight drops below
``prune_below`` are physically deleted, which keeps the structure small and
the internal weights bounded.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core._inputs import normalize_weighted
from ..core.dynamic import DynamicMaxRS
from ..core.result import MaxRSResult
from ..exact.disk2d import maxrs_disk_exact
from ..exact.interval1d import maxrs_interval_exact
from ..exact.rectangle2d import maxrs_rectangle_exact

__all__ = ["DecayingMaxRSMonitor", "decayed_maxrs"]

Coords = Tuple[float, ...]


def decayed_maxrs(
    points: Sequence,
    *,
    decay: float,
    radius: Optional[float] = None,
    width: Optional[float] = None,
    height: Optional[float] = None,
    length: Optional[float] = None,
    as_of: Optional[int] = None,
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """Exact MaxRS under arrival-order exponential decay (the [TT22] weights).

    Point ``i`` of the dataset is treated as having arrived at tick ``i``; at
    the query horizon ``as_of`` (default: the last arrival, ``n - 1``) it
    contributes ``weights[i] * decay ** (as_of - i)``.  Points with
    ``i > as_of`` have not arrived yet and are excluded.  The decayed weights
    are then handed to the exact sweep selected by the geometry arguments
    (exactly one of ``radius``, ``width``+``height``, or ``length``).

    Because the decayed weight of a point depends on its *global* arrival
    index, this query is answered directly on the full dataset: a halo shard
    only knows its local point order, so a sharded merge cannot reconstruct
    the decay profile and is not sound.  The engine therefore routes
    ``family="decayed"`` queries through this function without sharding.
    """
    if not 0.0 < decay < 1.0:
        raise ValueError("decay must lie strictly between 0 and 1, got %r" % decay)
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if any(w < 0 for w in weight_list):
        raise ValueError("decayed MaxRS requires non-negative weights")
    horizon = len(coords) - 1 if as_of is None else int(as_of)
    if as_of is not None and as_of < 0:
        raise ValueError("as_of must be a non-negative tick, got %r" % as_of)
    live_coords: List[Coords] = []
    effective: List[float] = []
    for index, (coord, weight) in enumerate(zip(coords, weight_list)):
        if index > horizon:
            break  # arrives after the query horizon
        live_coords.append(coord)
        effective.append(weight * (decay ** (horizon - index)))
    if radius is not None:
        result = maxrs_disk_exact(live_coords, radius=radius, weights=effective,
                                  backend=backend)
    elif width is not None and height is not None:
        result = maxrs_rectangle_exact(live_coords, width=width, height=height,
                                       weights=effective, backend=backend)
    elif length is not None:
        result = maxrs_interval_exact(live_coords, length, weights=effective,
                                      backend=backend)
    else:
        raise ValueError(
            "decayed_maxrs needs a geometry: radius, width+height, or length")
    meta = dict(result.meta)
    meta.update({"family": "decayed", "decay": float(decay), "as_of": horizon,
                 "n": len(coords)})
    return MaxRSResult(value=result.value, center=result.center,
                       shape=result.shape, exact=result.exact, meta=meta)


class DecayingMaxRSMonitor:
    """MaxRS over exponentially decaying weights (the [TT22] setting).

    Parameters
    ----------
    decay:
        Per-tick multiplicative decay factor ``gamma`` in ``(0, 1)``.
    dim, radius, epsilon, seed:
        Forwarded to the underlying :class:`repro.core.dynamic.DynamicMaxRS`.
    prune_below:
        Observations whose effective weight falls below this threshold are
        deleted from the structure (set to 0 to keep everything forever).
    """

    def __init__(
        self,
        decay: float,
        dim: int = 2,
        radius: float = 1.0,
        epsilon: float = 0.25,
        *,
        seed=None,
        prune_below: float = 1e-3,
    ):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie strictly between 0 and 1, got %r" % decay)
        if prune_below < 0:
            raise ValueError("prune_below must be non-negative")
        self.decay = float(decay)
        self.prune_below = float(prune_below)
        self._structure = DynamicMaxRS(dim=dim, radius=radius, epsilon=epsilon, seed=seed)
        self._scale = 1.0
        self._ticks = 0
        # id -> (raw weight at insertion, insertion tick)
        self._observations: Dict[int, Tuple[float, int]] = {}
        # stream position -> observation id, for UpdateEvent deletes
        self._stream_ids: Dict[int, int] = {}
        self._generation = 0

    #: Renormalize once the global scale drops below this.  The threshold
    #: bounds the stored (internal) weights by ``w / _RENORM_THRESHOLD``; the
    #: pre-audit value of 1e-9 let them grow a thousand times larger before a
    #: rebuild, amplifying float error in the dynamic structure's sums.
    _RENORM_THRESHOLD = 1e-6

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._observations)

    @property
    def ticks(self) -> int:
        """Number of decay ticks applied so far."""
        return self._ticks

    @property
    def generation(self) -> Hashable:
        """Cache-invalidation token (the :class:`StreamMonitor` contract).

        Bumped by every mutation -- ``observe``, ``forget``, *and* ``tick``.
        Ticks change every cached answer's value even though no point moved,
        so the serving layer must treat a tick exactly like an update batch:
        keying its TTL cache on this token makes a ``tick`` invalidate cached
        monitor reads the same way updates already do.
        """
        return (self._generation, self._ticks, len(self._observations))

    def effective_weight(self, observation_id: int) -> float:
        """Current (decayed) weight of a live observation."""
        if observation_id not in self._observations:
            raise KeyError("unknown observation id %r" % observation_id)
        raw, inserted_at = self._observations[observation_id]
        return raw * (self.decay ** (self._ticks - inserted_at))

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def observe(self, point: Sequence[float], weight: float = 1.0) -> int:
        """Insert an observation with its full (undecayed) weight."""
        if weight <= 0:
            raise ValueError("observation weights must be positive")
        # Stored weight is chosen so that stored * scale == weight right now.
        stored = float(weight) / self._scale
        observation_id = self._structure.insert(point, stored)
        self._observations[observation_id] = (float(weight), self._ticks)
        self._generation += 1
        return observation_id

    def forget(self, observation_id: int) -> None:
        """Explicitly delete an observation before it decays away."""
        if observation_id not in self._observations:
            raise KeyError("unknown observation id %r" % observation_id)
        del self._observations[observation_id]
        self._structure.delete(observation_id)
        self._generation += 1

    def apply_batch(self, events: Sequence, start_index: int = 0) -> None:
        """Ingest a chunk of :class:`~repro.datasets.streams.UpdateEvent`\\ s.

        Implements enough of the :class:`~repro.streaming.base.StreamMonitor`
        contract for the serving layer: inserts become observations at the
        current tick, deletes undo the insertion at stream position
        ``event.target`` (ignored when that observation already decayed or
        was pruned away).
        """
        for offset, event in enumerate(events):
            if event.kind == "insert":
                observation_id = self.observe(event.point, weight=event.weight)
                self._stream_ids[start_index + offset] = observation_id
            else:
                observation_id = self._stream_ids.pop(event.target, None)
                if observation_id is not None and observation_id in self._observations:
                    self.forget(observation_id)

    def tick(self, steps: int = 1) -> None:
        """Advance time: every live observation's weight decays by ``decay`` per step."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        # Advance in bounded chunks: a single ``decay ** steps`` can underflow
        # to exactly 0.0 for large ``steps`` (zeroing the scale and with it
        # every stored weight), and an unbounded stretch between
        # renormalizations lets the stored weights ``w / scale`` grow without
        # limit.  Each chunk moves the scale by at most ~1e-200, then prunes
        # and renormalizes before continuing.
        max_chunk = max(1, int(-200.0 / math.log10(self.decay)))
        remaining = int(steps)
        while remaining > 0:
            chunk = min(remaining, max_chunk)
            remaining -= chunk
            self._ticks += chunk
            self._scale *= self.decay ** chunk
            if self.prune_below > 0:
                self._prune()
            if self._scale < self._RENORM_THRESHOLD:
                self._renormalize()
        self._generation += 1

    def _renormalize(self) -> None:
        """Rebuild the structure with the current effective weights and reset the scale.

        Keeps the internal (stored) weights bounded on very long runs, where
        ``1 / scale`` would otherwise grow without limit.
        """
        snapshot = self._structure.points()
        live = [
            (observation_id, snapshot[observation_id][0],
             raw * (self.decay ** (self._ticks - inserted_at)))
            for observation_id, (raw, inserted_at) in self._observations.items()
        ]
        for observation_id, _, _ in live:
            self._structure.delete(observation_id)
        self._observations = {}
        self._scale = 1.0
        remap: Dict[int, int] = {}
        for old_id, point, effective in live:
            if effective <= 0.0:
                # Fully faded (numerically underflowed) observations carry no
                # information; dropping them keeps the structure's weights valid.
                continue
            new_id = self._structure.insert(point, effective)
            self._observations[new_id] = (effective, self._ticks)
            remap[old_id] = new_id
        # Rebuilding reassigns observation ids; keep stream-position deletes
        # pointing at the surviving observations.
        self._stream_ids = {
            position: remap[old_id]
            for position, old_id in self._stream_ids.items()
            if old_id in remap
        }

    def _prune(self) -> None:
        stale: List[int] = [
            observation_id
            for observation_id, (raw, inserted_at) in self._observations.items()
            if raw * (self.decay ** (self._ticks - inserted_at)) < self.prune_below
        ]
        for observation_id in stale:
            del self._observations[observation_id]
            self._structure.delete(observation_id)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def current(self) -> MaxRSResult:
        """The hotspot of the decayed weights (same guarantee as Theorem 1.1).

        The underlying structure reports values in its internal (undecayed)
        scale; multiplying by the global scale converts them back to the
        decayed weights the caller reasons about.
        """
        internal = self._structure.query()
        if internal.center is None:
            return internal
        meta = dict(internal.meta)
        meta.update({"scale": self._scale, "ticks": self._ticks, "decay": self.decay})
        return MaxRSResult(
            value=internal.value * self._scale,
            center=internal.center,
            shape=internal.shape,
            exact=False,
            meta=meta,
        )

    def total_effective_weight(self) -> float:
        """Sum of the decayed weights of all live observations."""
        return sum(
            raw * (self.decay ** (self._ticks - inserted_at))
            for raw, inserted_at in self._observations.values()
        )
