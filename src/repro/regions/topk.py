"""Top-k disjoint MaxRS placements (the best-region-search flavour).

Best region search [FCB+16] and its top-k extensions [SSP18, SOP+20] ask for
several high-value placements rather than one, with the natural diversity
requirement that the reported ranges do not overlap (otherwise the top-k
answers are k copies of the same hotspot shifted by epsilon).

The implementation is the standard greedy peeling scheme:

1. solve MaxRS exactly on the remaining points;
2. report the placement, remove every point it covers;
3. repeat until ``k`` placements are found or no points remain.

Greedy peeling is the usual practical algorithm for this objective (choosing
k disjoint ranges maximising total covered weight is NP-hard in general); for
the disjoint-coverage objective it enjoys the familiar greedy guarantee of
covering at least half of what any k disjoint placements can cover, because
each greedy pick covers at least as much remaining weight as any single
placement of the optimal solution would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core._inputs import normalize_weighted
from ..core.geometry import point_in_ball, point_in_box
from ..exact.disk2d import maxrs_disk_exact
from ..exact.rectangle2d import maxrs_rectangle_exact

__all__ = ["PlacementScore", "top_k_maxrs_rectangle", "top_k_maxrs_disk"]

Coords = Tuple[float, ...]


@dataclass(frozen=True)
class PlacementScore:
    """One placement in a top-k answer.

    Attributes
    ----------
    rank:
        1-based rank of the placement (1 is the globally best).
    value:
        Weight covered by this placement *among the points not already
        claimed by higher-ranked placements*.
    center:
        Disk center, or lower-left corner for rectangles.
    covered_points:
        How many points this placement claimed.
    """

    rank: int
    value: float
    center: Coords
    covered_points: int


def _validate_k(k: int) -> None:
    if k < 1:
        raise ValueError("k must be at least 1, got %d" % k)


def top_k_maxrs_rectangle(
    points: Sequence,
    width: float,
    height: float,
    k: int,
    *,
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
) -> List[PlacementScore]:
    """Greedy top-k disjoint placements of a ``width x height`` rectangle.

    Returns at most ``k`` placements ordered by rank; fewer are returned when
    the points run out first.  Placements are disjoint in the sense that no
    input point is claimed by two of them (the rectangles themselves may
    abut).  ``backend`` is forwarded to every per-round exact sweep, so the
    peeling loop can use the NumPy kernel tier (and honour the planner's
    per-shard backend resolution).
    """
    _validate_k(k)
    if width <= 0 or height <= 0:
        raise ValueError("rectangle side lengths must be positive")
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if any(w < 0 for w in weight_list):
        raise ValueError("top-k MaxRS requires non-negative weights")
    if coords and dim != 2:
        raise ValueError("top_k_maxrs_rectangle expects points in the plane")

    remaining = list(range(len(coords)))
    placements: List[PlacementScore] = []
    for rank in range(1, k + 1):
        if not remaining:
            break
        sub_points = [coords[i] for i in remaining]
        sub_weights = [weight_list[i] for i in remaining]
        best = maxrs_rectangle_exact(sub_points, width=width, height=height,
                                     weights=sub_weights, backend=backend)
        if best.center is None or best.value <= 0:
            break
        lower = best.center
        upper = (lower[0] + width, lower[1] + height)
        claimed = [i for i in remaining if point_in_box(coords[i], lower, upper)]
        if not claimed:
            break
        placements.append(PlacementScore(rank=rank, value=best.value, center=lower,
                                         covered_points=len(claimed)))
        claimed_set = set(claimed)
        remaining = [i for i in remaining if i not in claimed_set]
    return placements


def top_k_maxrs_disk(
    points: Sequence,
    radius: float,
    k: int,
    *,
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
) -> List[PlacementScore]:
    """Greedy top-k disjoint placements of a disk of the given radius.

    Mirrors :func:`top_k_maxrs_rectangle` with the exact Chazelle--Lee sweep
    as the per-round solver; ``backend`` is forwarded to each sweep.
    """
    _validate_k(k)
    if radius <= 0:
        raise ValueError("radius must be positive")
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if any(w < 0 for w in weight_list):
        raise ValueError("top-k MaxRS requires non-negative weights")
    if coords and dim != 2:
        raise ValueError("top_k_maxrs_disk expects points in the plane")

    remaining = list(range(len(coords)))
    placements: List[PlacementScore] = []
    for rank in range(1, k + 1):
        if not remaining:
            break
        sub_points = [coords[i] for i in remaining]
        sub_weights = [weight_list[i] for i in remaining]
        best = maxrs_disk_exact(sub_points, radius=radius, weights=sub_weights,
                                backend=backend)
        if best.center is None or best.value <= 0:
            break
        center = best.center
        claimed = [i for i in remaining if point_in_ball(coords[i], center, radius)]
        if not claimed:
            break
        placements.append(PlacementScore(rank=rank, value=best.value, center=center,
                                         covered_points=len(claimed)))
        claimed_set = set(claimed)
        remaining = [i for i in remaining if i not in claimed_set]
    return placements
