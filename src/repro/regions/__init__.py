"""Region-search extensions built on the MaxRS solvers.

The related-work section of the paper (Section 1.6) surveys two families of
follow-on problems that spatial-database systems expose on top of a MaxRS
kernel, and which downstream users of this library ask for almost
immediately:

* **top-k region search** [FCB+16, SSP18, SOP+20] -- instead of a single best
  placement, report ``k`` high-value placements whose ranges do not overlap
  (so they describe ``k`` genuinely different hotspots);
* **time-decaying MaxRS** [TT22] -- observations lose importance over time,
  so the hotspot should track recent activity without a hard sliding window.

Both are implemented here as thin, well-specified layers over the exact and
dynamic solvers of the core library:

* :func:`top_k_maxrs_rectangle` / :func:`top_k_maxrs_disk` -- greedy disjoint
  top-k placements with the standard (1 - 1/e)-style "peeling" heuristic
  (find the best placement, remove the points it covers, repeat);
* :class:`DecayingMaxRSMonitor` -- exponential weight decay on top of the
  paper's dynamic structure, using the observation that a *uniform* rescaling
  of all weights never changes the argmax, so decay costs O(1) per tick.
"""

from .topk import PlacementScore, top_k_maxrs_disk, top_k_maxrs_rectangle
from .decay import DecayingMaxRSMonitor, decayed_maxrs

__all__ = [
    "PlacementScore",
    "top_k_maxrs_rectangle",
    "top_k_maxrs_disk",
    "DecayingMaxRSMonitor",
    "decayed_maxrs",
]
