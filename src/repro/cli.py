"""Command-line interface: ``python -m repro <command>``.

Three command groups cover the day-to-day uses of the library without
writing Python:

* ``experiments`` -- list the reproduction experiments (E1-E15) and run any
  subset of them, optionally archiving the tables as CSV/JSON;
* ``generate`` -- synthesise the workloads the experiments use (uniform,
  clustered, hotspot, trajectory) and write them to CSV;
* ``solve`` -- run a MaxRS solver over a CSV point file: exact interval,
  rectangle and disk placement, the paper's approximate d-ball solver, and
  the colored disk / box solvers.  ``--engine sharded`` routes the query
  through the sharded parallel execution engine (:mod:`repro.engine`) with
  ``--workers N`` workers on the ``--executor`` backend; ``--backend``
  selects the kernel backend for the sweep inner loops
  (:mod:`repro.kernels`: pure-Python reference or vectorised NumPy).

Every command prints a short human-readable summary to stdout and exits with
status 0 on success, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .bench import experiments as _experiments
from .bench import experiments_extended as _experiments_extended
from .bench.harness import ExperimentReport
from .bench.recorder import write_reports_csv_dir, write_reports_json
from .boxes import colored_maxrs_box
from .core import colored_maxrs_disk, max_range_sum_ball
from .datasets import (
    clustered_points,
    trajectory_colored_points,
    uniform_weighted_points,
    weighted_hotspot_points,
)
from .datasets.io import read_points_csv, write_points_csv
from .engine import Query, QueryEngine
from .exact import (
    colored_maxrs_disk_sweep,
    maxrs_disk_exact,
    maxrs_interval_exact,
    maxrs_rectangle_exact,
)

__all__ = ["build_parser", "main", "experiment_registry"]


# --------------------------------------------------------------------------- #
# experiment registry
# --------------------------------------------------------------------------- #

def experiment_registry() -> Dict[str, Callable[[], ExperimentReport]]:
    """Map experiment ids (``"E1"``..``"E15"``) to their zero-argument drivers."""
    registry: Dict[str, Callable[[], ExperimentReport]] = {}
    for module in (_experiments, _experiments_extended):
        for name in dir(module):
            if not name.startswith("experiment_e"):
                continue
            driver = getattr(module, name)
            if not callable(driver):
                continue
            experiment_id = name.split("_")[1].upper()  # "experiment_e11_..." -> "E11"
            registry[experiment_id] = driver
    return dict(sorted(registry.items(), key=lambda item: int(item[0][1:])))


# --------------------------------------------------------------------------- #
# command implementations
# --------------------------------------------------------------------------- #

def _cmd_experiments(args: argparse.Namespace) -> int:
    registry = experiment_registry()
    if args.action == "list":
        for experiment_id, driver in registry.items():
            summary = (driver.__doc__ or "").strip().splitlines()
            print("%-4s %s" % (experiment_id, summary[0] if summary else ""))
        return 0

    wanted = list(registry) if args.all or not args.ids else [i.upper() for i in args.ids]
    unknown = [i for i in wanted if i not in registry]
    if unknown:
        print("unknown experiment ids: %s" % ", ".join(unknown), file=sys.stderr)
        print("known ids: %s" % ", ".join(registry), file=sys.stderr)
        return 2

    reports: List[ExperimentReport] = []
    for experiment_id in wanted:
        report = registry[experiment_id]()
        reports.append(report)
        print(report.render())
        print()
    if args.json:
        write_reports_json(reports, args.json)
        print("wrote %s" % args.json)
    if args.csv_dir:
        for path in write_reports_csv_dir(reports, args.csv_dir):
            print("wrote %s" % path)
    failed = [r.experiment_id for r in reports if not r.all_claims_hold]
    if failed:
        print("claims FAILED for: %s" % ", ".join(failed), file=sys.stderr)
        return 1
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    colors = None
    weights = None
    if args.kind == "uniform":
        points, weights = uniform_weighted_points(args.n, dim=args.dim, extent=args.extent,
                                                  seed=args.seed)
    elif args.kind == "clustered":
        points = clustered_points(args.n, dim=args.dim, extent=args.extent,
                                  clusters=args.clusters, seed=args.seed)
    elif args.kind == "hotspot":
        points, weights = weighted_hotspot_points(args.n, dim=args.dim, extent=args.extent,
                                                  seed=args.seed)
    elif args.kind == "trajectory":
        samples = max(1, args.n // max(1, args.entities))
        points, colors = trajectory_colored_points(args.entities, samples_per_entity=samples,
                                                   dim=args.dim, extent=args.extent,
                                                   seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        print("unknown workload kind %r" % args.kind, file=sys.stderr)
        return 2
    write_points_csv(args.output, points, weights=weights, colors=colors)
    print("wrote %d points (dim=%d) to %s" % (len(points), args.dim, args.output))
    return 0


def _query_from_args(args: argparse.Namespace, has_colors: bool) -> Optional[Query]:
    """Translate ``solve`` arguments into an engine :class:`Query` (or ``None``
    when the shape needs a color column that is missing)."""
    backend = args.backend
    if args.shape == "interval":
        return Query.interval(args.length, backend=backend)
    if args.shape == "rectangle":
        return Query.rectangle(args.width, args.height, backend=backend)
    if args.shape == "disk":
        return Query.disk(args.radius, backend=backend)
    if args.shape == "ball-approx":
        return Query.disk_approx(args.radius, epsilon=args.epsilon, seed=args.seed,
                                 backend=backend)
    if not has_colors:
        return None
    if args.shape == "colored-disk":
        if args.exact:
            return Query.colored_disk(args.radius, backend=backend)
        return Query.colored_disk_approx(args.radius, epsilon=args.epsilon, seed=args.seed,
                                         backend=backend)
    return Query.colored_rectangle_approx(args.width, args.height, epsilon=args.epsilon,
                                          seed=args.seed)


def _solve_with_engine(args: argparse.Namespace, table) -> int:
    query = _query_from_args(args, table.colors is not None)
    if query is None:
        print("colored solvers need a 'color' column in the input CSV", file=sys.stderr)
        return 2
    executor = args.executor or ("thread" if args.workers > 1 else "serial")
    try:
        with QueryEngine(table.points, weights=table.weights, colors=table.colors,
                         executor=executor, workers=args.workers) as engine:
            result = engine.solve(query)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    shards = result.meta.get("shards", 1)
    _print_result(result)
    print("engine:    sharded (%s, workers=%d, shards=%s)"
          % (executor, args.workers, shards))
    return 0


def _print_result(result) -> None:
    placement = "none" if result.center is None else ", ".join("%.4f" % c for c in result.center)
    print("shape:     %s" % result.shape)
    print("value:     %g" % result.value)
    print("placement: (%s)" % placement)
    print("exact:     %s" % result.exact)
    if result.meta:
        interesting = {k: v for k, v in result.meta.items() if k not in ("io",)}
        print("meta:      %s" % interesting)


def _cmd_solve(args: argparse.Namespace) -> int:
    table = read_points_csv(args.input)
    if not table.points:
        print("input file %s contains no points" % args.input, file=sys.stderr)
        return 2
    if args.engine == "sharded":
        return _solve_with_engine(args, table)
    points = table.points
    weights = table.weights
    colors = table.colors

    if args.shape == "interval":
        result = maxrs_interval_exact(points, length=args.length, weights=weights,
                                      backend=args.backend)
    elif args.shape == "rectangle":
        result = maxrs_rectangle_exact(points, width=args.width, height=args.height,
                                       weights=weights, backend=args.backend)
    elif args.shape == "disk":
        result = maxrs_disk_exact(points, radius=args.radius, weights=weights,
                                  backend=args.backend)
    elif args.shape == "ball-approx":
        result = max_range_sum_ball(points, radius=args.radius, epsilon=args.epsilon,
                                    weights=weights, seed=args.seed, backend=args.backend)
    elif args.shape == "colored-disk":
        if colors is None:
            print("colored solvers need a 'color' column in the input CSV", file=sys.stderr)
            return 2
        if args.exact:
            result = colored_maxrs_disk_sweep(points, radius=args.radius, colors=colors,
                                              backend=args.backend)
        else:
            result = colored_maxrs_disk(points, radius=args.radius, epsilon=args.epsilon,
                                        colors=colors, seed=args.seed, backend=args.backend)
    elif args.shape == "colored-box":
        if colors is None:
            print("colored solvers need a 'color' column in the input CSV", file=sys.stderr)
            return 2
        result = colored_maxrs_box(points, width=args.width, height=args.height,
                                   epsilon=args.epsilon, colors=colors, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        print("unknown shape %r" % args.shape, file=sys.stderr)
        return 2

    _print_result(result)
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maximum range sum (MaxRS) reproduction toolkit (PODS 2025).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="list or run the reproduction experiments E1-E15")
    experiments.add_argument("action", choices=["list", "run"])
    experiments.add_argument("ids", nargs="*", help="experiment ids to run, e.g. E1 E11")
    experiments.add_argument("--all", action="store_true", help="run every experiment")
    experiments.add_argument("--json", help="archive all reports into one JSON file")
    experiments.add_argument("--csv-dir", help="archive one CSV table per experiment")
    experiments.set_defaults(func=_cmd_experiments)

    generate = subparsers.add_parser("generate", help="synthesise a workload and write it to CSV")
    generate.add_argument("kind", choices=["uniform", "clustered", "hotspot", "trajectory"])
    generate.add_argument("--output", required=True, help="destination CSV path")
    generate.add_argument("--n", type=int, default=200, help="number of points")
    generate.add_argument("--dim", type=int, default=2, help="dimension")
    generate.add_argument("--extent", type=float, default=10.0, help="side of the bounding cube")
    generate.add_argument("--clusters", type=int, default=3, help="clusters (clustered only)")
    generate.add_argument("--entities", type=int, default=10, help="entities (trajectory only)")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    solve = subparsers.add_parser("solve", help="run a MaxRS solver over a CSV point file")
    solve.add_argument("shape", choices=["interval", "rectangle", "disk", "ball-approx",
                                         "colored-disk", "colored-box"])
    solve.add_argument("--input", required=True, help="CSV file of points")
    solve.add_argument("--radius", type=float, default=1.0)
    solve.add_argument("--width", type=float, default=1.0)
    solve.add_argument("--height", type=float, default=1.0)
    solve.add_argument("--length", type=float, default=1.0)
    solve.add_argument("--epsilon", type=float, default=0.25)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--exact", action="store_true",
                       help="use the exact solver where both exist (colored-disk)")
    solve.add_argument("--backend", choices=["auto", "python", "numpy"], default="auto",
                       help="kernel backend for the sweep inner loops (repro.kernels): "
                            "'python' is the reference loop, 'numpy' the vectorised "
                            "kernels, 'auto' picks by input size (and honours the "
                            "REPRO_BACKEND environment variable)")
    solve.add_argument("--engine", choices=["direct", "sharded"], default="direct",
                       help="'direct' calls the solver once; 'sharded' routes through "
                            "the parallel execution engine (repro.engine)")
    solve.add_argument("--workers", type=int, default=1,
                       help="worker count for the sharded engine's executor")
    solve.add_argument("--executor", choices=["serial", "thread", "process"], default=None,
                       help="sharded engine backend (default: thread when --workers > 1)")
    solve.set_defaults(func=_cmd_solve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
