"""Command-line interface: ``python -m repro <command>``.

Three command groups cover the day-to-day uses of the library without
writing Python:

* ``experiments`` -- list the reproduction experiments (E1-E15) and run any
  subset of them, optionally archiving the tables as CSV/JSON;
* ``generate`` -- synthesise the workloads the experiments use (uniform,
  clustered, hotspot, trajectory) and write them to CSV;
* ``solve`` -- run a MaxRS solver over a CSV point file: exact interval,
  rectangle and disk placement, the paper's approximate d-ball solver, and
  the colored disk / box solvers.  ``--engine sharded`` routes the query
  through the sharded parallel execution engine (:mod:`repro.engine`) with
  ``--workers N`` workers on the ``--executor`` backend; ``--backend``
  selects the kernel backend for the sweep inner loops
  (:mod:`repro.kernels`: pure-Python reference or vectorised NumPy);
* ``monitor`` -- replay a synthetic update stream through one of the
  streaming hotspot monitors (:mod:`repro.streaming`), ingesting in batches
  of ``--batch-size`` events, with ``--backend`` / ``--executor`` control
  over the dirty-shard re-solves and optional ``--window`` /
  ``--time-window`` sliding windows; reports the final hotspot and the
  sustained events/sec;
* ``serve`` -- replay a mixed request trace (static queries, live-monitor
  hotspot reads, update batches) through the concurrent serving front end
  (:mod:`repro.service`) with up to ``--concurrency`` requests in flight
  together, a ``--cache-ttl``-second result cache, and ``--replay`` to
  re-run a recorded JSONL trace; reports throughput, coalescing / cache-hit
  rates and latency percentiles;
* ``stats`` -- render a span-trace JSONL file recorded with ``--trace-out``
  (available on ``solve``, ``monitor`` and ``serve``) as a per-span-name
  summary table, the full span tree, or Prometheus-style text exposition
  (:mod:`repro.obs`; ``docs/observability.md``);
* ``bench`` -- the unified performance-grid harness (``docs/benchmarks.md``):
  ``bench list`` names the declarative workload x size x backend x executor
  suites, ``bench grid`` runs them (``--suite``, ``--quick``, ``--set
  key=value`` overrides, ``--output`` artifact, ``--history`` trajectory
  append, ``--no-spans``) and writes one versioned ``repro-bench-grid/1``
  JSON artifact, ``bench compare`` regresses a ``--current`` artifact
  against the committed ``PERF_HISTORY.jsonl`` within a relative ``--noise``
  band (``--self-test`` proves the comparator catches an injected
  regression).

``repro --version`` prints the installed package version.  Every command
prints a short human-readable summary to stdout and exits with status 0 on
success, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from . import obs

from .bench import experiments as _experiments
from .bench import experiments_extended as _experiments_extended
from .bench.harness import ExperimentReport
from .bench.recorder import write_reports_csv_dir, write_reports_json
from .boxes import colored_maxrs_box
from .core import colored_maxrs_disk, max_range_sum_ball
from .datasets import (
    UpdateStream,
    adversarial_churn_stream,
    burst_stream,
    clustered_points,
    drift_stream,
    hotspot_monitoring_stream,
    sliding_window_stream,
    trajectory_colored_points,
    uniform_weighted_points,
    weighted_hotspot_points,
)
from .datasets.io import read_points_csv, write_points_csv
from .engine import Query, QueryEngine, solve_query
from .exact import (
    colored_maxrs_disk_sweep,
    maxrs_disk_exact,
    maxrs_interval_exact,
    maxrs_rectangle_exact,
)

__all__ = ["build_parser", "main", "experiment_registry"]


# --------------------------------------------------------------------------- #
# experiment registry
# --------------------------------------------------------------------------- #

def experiment_registry() -> Dict[str, Callable[[], ExperimentReport]]:
    """Map experiment ids (``"E1"``..``"E15"``) to their zero-argument drivers."""
    registry: Dict[str, Callable[[], ExperimentReport]] = {}
    for module in (_experiments, _experiments_extended):
        for name in dir(module):
            if not name.startswith("experiment_e"):
                continue
            driver = getattr(module, name)
            if not callable(driver):
                continue
            experiment_id = name.split("_")[1].upper()  # "experiment_e11_..." -> "E11"
            registry[experiment_id] = driver
    return dict(sorted(registry.items(), key=lambda item: int(item[0][1:])))


# --------------------------------------------------------------------------- #
# command implementations
# --------------------------------------------------------------------------- #

@contextlib.contextmanager
def _trace_sink(path: Optional[str]) -> Iterator[None]:
    """Force-enable tracing and stream every finished trace to a JSONL file
    for the duration of one command (``--trace-out``); no-op when ``path``
    is ``None``."""
    if path is None:
        yield
        return
    sink = obs.JsonlSink(path)
    obs.add_sink(sink)
    previous = obs.set_enabled(True)
    try:
        yield
    finally:
        obs.set_enabled(previous)
        obs.remove_sink(sink)
        sink.close()
        print("trace:     wrote %d spans to %s" % (sink.spans_written, path))


def _cmd_experiments(args: argparse.Namespace) -> int:
    registry = experiment_registry()
    if args.action == "list":
        for experiment_id, driver in registry.items():
            summary = (driver.__doc__ or "").strip().splitlines()
            print("%-4s %s" % (experiment_id, summary[0] if summary else ""))
        return 0

    wanted = list(registry) if args.all or not args.ids else [i.upper() for i in args.ids]
    unknown = [i for i in wanted if i not in registry]
    if unknown:
        print("unknown experiment ids: %s" % ", ".join(unknown), file=sys.stderr)
        print("known ids: %s" % ", ".join(registry), file=sys.stderr)
        return 2

    reports: List[ExperimentReport] = []
    for experiment_id in wanted:
        report = registry[experiment_id]()
        reports.append(report)
        print(report.render())
        print()
    if args.json:
        write_reports_json(reports, args.json)
        print("wrote %s" % args.json)
    if args.csv_dir:
        for path in write_reports_csv_dir(reports, args.csv_dir):
            print("wrote %s" % path)
    failed = [r.experiment_id for r in reports if not r.all_claims_hold]
    if failed:
        print("claims FAILED for: %s" % ", ".join(failed), file=sys.stderr)
        return 1
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    colors = None
    weights = None
    if args.kind == "uniform":
        points, weights = uniform_weighted_points(args.n, dim=args.dim, extent=args.extent,
                                                  seed=args.seed)
    elif args.kind == "clustered":
        points = clustered_points(args.n, dim=args.dim, extent=args.extent,
                                  clusters=args.clusters, seed=args.seed)
    elif args.kind == "hotspot":
        points, weights = weighted_hotspot_points(args.n, dim=args.dim, extent=args.extent,
                                                  seed=args.seed)
    elif args.kind == "trajectory":
        samples = max(1, args.n // max(1, args.entities))
        points, colors = trajectory_colored_points(args.entities, samples_per_entity=samples,
                                                   dim=args.dim, extent=args.extent,
                                                   seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        print("unknown workload kind %r" % args.kind, file=sys.stderr)
        return 2
    write_points_csv(args.output, points, weights=weights, colors=colors)
    print("wrote %d points (dim=%d) to %s" % (len(points), args.dim, args.output))
    return 0


def _parse_lengths(raw: Optional[str]) -> Optional[List[float]]:
    """Parse ``--lengths 0.5,1.0,2.0`` into a list of floats."""
    if raw is None:
        return None
    try:
        return [float(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise ValueError("--lengths expects comma-separated numbers, got %r" % raw)


def _parse_sizes(raw: Optional[str]) -> Optional[List]:
    """Parse ``--sizes 1x1,2x1.5`` into a list of ``(width, height)`` pairs."""
    if raw is None:
        return None
    sizes = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        width, separator, height = part.partition("x")
        if not separator:
            raise ValueError("--sizes expects comma-separated WxH pairs, got %r" % raw)
        try:
            sizes.append((float(width), float(height)))
        except ValueError:
            raise ValueError("--sizes expects comma-separated WxH pairs, got %r" % raw)
    return sizes


def _zoo_query_from_args(args: argparse.Namespace, has_colors: bool) -> Optional[Query]:
    """Build the long-tail family queries (``solve --family``); raises
    :class:`ValueError` on family/shape combinations with no solver."""
    backend = args.backend
    if args.family == "topk":
        if args.shape == "disk":
            return Query.topk_disk(args.radius, args.k, backend=backend)
        if args.shape == "rectangle":
            return Query.topk_rectangle(args.width, args.height, args.k, backend=backend)
        raise ValueError("--family topk supports shapes 'rectangle' and 'disk'")
    if args.family == "batched":
        if args.shape == "interval":
            lengths = _parse_lengths(args.lengths) or [args.length]
            return Query.batched_intervals(lengths, backend=backend)
        if args.shape == "rectangle":
            sizes = _parse_sizes(args.sizes) or [(args.width, args.height)]
            return Query.batched_rectangles(sizes, backend=backend)
        raise ValueError("--family batched supports shapes 'interval' and 'rectangle'")
    if args.family == "decayed":
        if args.shape == "disk":
            return Query.decayed_disk(args.radius, args.gamma, as_of=args.as_of,
                                      backend=backend)
        if args.shape == "rectangle":
            return Query.decayed_rectangle(args.width, args.height, args.gamma,
                                           as_of=args.as_of, backend=backend)
        if args.shape == "interval":
            return Query.decayed_interval(args.length, args.gamma, as_of=args.as_of,
                                          backend=backend)
        raise ValueError("--family decayed supports shapes 'interval', 'rectangle' "
                         "and 'disk'")
    # colored-box3d: the box is --width x --height x --depth; the positional
    # shape is ignored (there is exactly one box-family solver).
    if not has_colors:
        return None
    return Query.colored_box3d(args.width, args.height, args.depth)


def _query_from_args(args: argparse.Namespace, has_colors: bool) -> Optional[Query]:
    """Translate ``solve`` arguments into an engine :class:`Query` (or ``None``
    when the shape needs a color column that is missing)."""
    backend = args.backend
    if args.family != "single":
        return _zoo_query_from_args(args, has_colors)
    if args.shape == "interval":
        return Query.interval(args.length, backend=backend)
    if args.shape == "rectangle":
        return Query.rectangle(args.width, args.height, backend=backend)
    if args.shape == "disk":
        return Query.disk(args.radius, backend=backend)
    if args.shape == "ball-approx":
        return Query.disk_approx(args.radius, epsilon=args.epsilon, seed=args.seed,
                                 backend=backend)
    if not has_colors:
        return None
    if args.shape == "colored-disk":
        if args.exact:
            return Query.colored_disk(args.radius, backend=backend)
        return Query.colored_disk_approx(args.radius, epsilon=args.epsilon, seed=args.seed,
                                         backend=backend)
    return Query.colored_rectangle_approx(args.width, args.height, epsilon=args.epsilon,
                                          seed=args.seed)


def _solve_with_engine(args: argparse.Namespace, table) -> int:
    # No --executor: --workers > 1 implies the thread pool, otherwise the
    # default executor (REPRO_EXECUTOR if set, serial below that).
    executor = args.executor or ("thread" if args.workers > 1 else None)
    try:
        query = _query_from_args(args, table.colors is not None)
        if query is None:
            print("colored solvers need a 'color' column in the input CSV",
                  file=sys.stderr)
            return 2
        with QueryEngine(table.points, weights=table.weights, colors=table.colors,
                         executor=executor, workers=args.workers) as engine:
            result = engine.solve(query)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    shards = result.meta.get("shards", 1)
    _print_result(result)
    print("engine:    sharded (%s, workers=%d, shards=%s)"
          % (result.meta.get("executor", "serial"), args.workers, shards))
    return 0


def _print_result(result) -> None:
    placement = "none" if result.center is None else ", ".join("%.4f" % c for c in result.center)
    print("shape:     %s" % result.shape)
    print("value:     %g" % result.value)
    print("placement: (%s)" % placement)
    print("exact:     %s" % result.exact)
    if result.meta:
        interesting = {k: v for k, v in result.meta.items() if k not in ("io",)}
        print("meta:      %s" % interesting)


def _cmd_solve(args: argparse.Namespace) -> int:
    table = read_points_csv(args.input)
    if not table.points:
        print("input file %s contains no points" % args.input, file=sys.stderr)
        return 2
    with _trace_sink(args.trace_out):
        with obs.trace("cli.solve", shape=args.shape, engine=args.engine,
                       points=len(table.points)):
            return _solve_table(args, table)


def _solve_table(args: argparse.Namespace, table) -> int:
    """Route one ``solve`` invocation (direct or engine-backed) over a
    parsed point table."""
    if args.engine == "sharded":
        return _solve_with_engine(args, table)
    points = table.points
    weights = table.weights
    colors = table.colors

    if args.family != "single":
        # The zoo families share one direct dispatch point with the engine
        # and service (engine.solve_query), so `solve --family` answers are
        # bit-identical to what routing="direct" serves.
        try:
            query = _query_from_args(args, colors is not None)
            if query is None:
                print("colored solvers need a 'color' column in the input CSV",
                      file=sys.stderr)
                return 2
            result = solve_query(query, points, weights, colors)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        _print_result(result)
        return 0

    if args.shape == "interval":
        result = maxrs_interval_exact(points, length=args.length, weights=weights,
                                      backend=args.backend)
    elif args.shape == "rectangle":
        result = maxrs_rectangle_exact(points, width=args.width, height=args.height,
                                       weights=weights, backend=args.backend)
    elif args.shape == "disk":
        result = maxrs_disk_exact(points, radius=args.radius, weights=weights,
                                  backend=args.backend)
    elif args.shape == "ball-approx":
        result = max_range_sum_ball(points, radius=args.radius, epsilon=args.epsilon,
                                    weights=weights, seed=args.seed, backend=args.backend)
    elif args.shape == "colored-disk":
        if colors is None:
            print("colored solvers need a 'color' column in the input CSV", file=sys.stderr)
            return 2
        if args.exact:
            result = colored_maxrs_disk_sweep(points, radius=args.radius, colors=colors,
                                              backend=args.backend)
        else:
            result = colored_maxrs_disk(points, radius=args.radius, epsilon=args.epsilon,
                                        colors=colors, seed=args.seed, backend=args.backend)
    elif args.shape == "colored-box":
        if colors is None:
            print("colored solvers need a 'color' column in the input CSV", file=sys.stderr)
            return 2
        result = colored_maxrs_box(points, width=args.width, height=args.height,
                                   epsilon=args.epsilon, colors=colors, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        print("unknown shape %r" % args.shape, file=sys.stderr)
        return 2

    _print_result(result)
    return 0


def _build_stream(args: argparse.Namespace):
    """Synthesise the update stream the ``monitor`` command replays."""
    if args.stream == "hotspot":
        return hotspot_monitoring_stream(args.events, extent=args.extent, seed=args.seed)
    if args.stream == "sliding":
        window = args.window or max(1, args.events // 4)
        stream = sliding_window_stream(args.events, window=window, extent=args.extent,
                                       seed=args.seed)
        # sliding_window_stream counts *insertions*; cut at --events total
        # events (prefixes stay replayable) so every --stream value replays
        # the same number of events.
        return UpdateStream(list(stream)[:args.events])
    if args.stream == "drift":
        return drift_stream(args.events, extent=args.extent, seed=args.seed)
    if args.stream == "burst":
        return burst_stream(args.events, extent=args.extent, seed=args.seed)
    return adversarial_churn_stream(args.events, radius=args.radius, seed=args.seed)


def _build_monitor(args: argparse.Namespace):
    """Construct the monitor the ``monitor`` command drives.

    Returns ``(monitor, executor_label)`` so the summary line reports the
    executor that was actually constructed.
    """
    from .engine import Query
    from .streaming import (
        ApproximateMaxRSMonitor,
        ExactRecomputeMonitor,
        MultiQueryMonitor,
        ShardedMaxRSMonitor,
    )

    if args.monitor == "exact":
        return ExactRecomputeMonitor(radius=args.radius, backend=args.backend), "inline"
    if args.monitor == "approx":
        epsilon = 0.25 if args.epsilon is None else args.epsilon
        return ApproximateMaxRSMonitor(dim=2, radius=args.radius, epsilon=epsilon,
                                       seed=args.seed), "inline"
    # --workers alone means "parallelise": default to the thread executor,
    # matching `solve --workers` (otherwise workers would be silently dropped).
    executor = args.executor
    if executor is None and args.workers is not None:
        executor = "thread"
    label = executor or "inline"
    if args.monitor == "multi":
        radii = [float(r) for r in (args.radii or "0.5,1.0").split(",") if r]
        width = 1.0 if args.width is None else args.width
        height = 1.0 if args.height is None else args.height
        queries = {"disk-r%g" % r: Query.disk(r, backend=args.backend) for r in radii}
        queries["rect-%gx%g" % (width, height)] = Query.rectangle(
            width, height, backend=args.backend)
        return MultiQueryMonitor(queries, executor=executor,
                                 workers=args.workers), label
    return ShardedMaxRSMonitor(radius=args.radius, backend=args.backend,
                               executor=executor, workers=args.workers,
                               window=args.window,
                               time_window=args.time_window), label


def _monitor_args_error(args: argparse.Namespace) -> Optional[str]:
    """Reject flag combinations the chosen monitor would silently ignore."""
    if args.monitor != "sharded" and args.time_window is not None:
        return ("--time-window applies to --monitor sharded only "
                "(got --monitor %s)" % args.monitor)
    if (args.monitor != "sharded" and args.stream != "sliding"
            and args.window is not None):
        # --window parameterizes the 'sliding' stream itself; otherwise it is
        # the sharded monitor's count window.
        return ("--window applies to --monitor sharded (count window) or "
                "--stream sliding (stream expiry) only")
    if args.monitor in ("exact", "approx") and (args.executor is not None
                                                or args.workers is not None):
        return ("--executor/--workers apply to the sharded monitors only "
                "(got --monitor %s)" % args.monitor)
    if args.monitor == "approx" and args.backend != "auto":
        return "--backend does not affect --monitor approx (the dynamic structure)"
    if args.monitor != "multi" and (args.radii is not None or args.width is not None
                                    or args.height is not None):
        return ("--radii/--width/--height configure the standing queries of "
                "--monitor multi only (got --monitor %s)" % args.monitor)
    if args.monitor != "approx" and args.epsilon is not None:
        return ("--epsilon applies to --monitor approx only "
                "(got --monitor %s)" % args.monitor)
    if args.query_every is not None and args.query_every < 1:
        return "--query-every must be >= 1"
    if args.batch_size < 1:
        return "--batch-size must be >= 1"
    if args.events < 1:
        return "--events must be >= 1"
    return None


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .streaming import MultiQuerySnapshot

    usage_error = _monitor_args_error(args)
    if usage_error is not None:
        print(usage_error, file=sys.stderr)
        return 2
    try:
        stream = _build_stream(args)
        monitor, executor_label = _build_monitor(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    query_every = (args.query_every if args.query_every is not None
                   else max(1, len(stream) // 10))
    started = time.perf_counter()
    try:
        with _trace_sink(args.trace_out):
            with obs.trace("cli.monitor", monitor=args.monitor,
                           stream=args.stream, events=len(stream)):
                snapshots = monitor.apply_stream(stream, chunk_size=args.batch_size,
                                                 query_every=query_every)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    finally:
        if hasattr(monitor, "close"):
            monitor.close()
    elapsed = time.perf_counter() - started

    print("stream:     %s (%d events, seed=%d)" % (args.stream, len(stream), args.seed))
    print("monitor:    %s (batch=%d, backend=%s, executor=%s)"
          % (args.monitor, args.batch_size, args.backend, executor_label))
    print("queries:    every %d events -> %d snapshots" % (query_every, len(snapshots)))
    print("throughput: %.0f events/sec (%.3fs total)"
          % (len(stream) / elapsed if elapsed > 0 else float("inf"), elapsed))
    if not snapshots:
        return 0
    last = snapshots[-1]
    if isinstance(last, MultiQuerySnapshot):
        print("final live set: %d points" % last.live_points)
        for name, result in sorted(last.results.items()):
            placement = ("none" if result.center is None
                         else ", ".join("%.4f" % c for c in result.center))
            print("  %-16s value=%-8g placement=(%s)" % (name, result.value, placement))
    else:
        placement = ("none" if last.center is None
                     else ", ".join("%.4f" % c for c in last.center))
        print("final hotspot:  value=%g placement=(%s) live=%d"
              % (last.value, placement, last.live_points))
    if hasattr(monitor, "total_recomputes"):
        print("shard recomputes: %d over %d queries"
              % (monitor.total_recomputes, len(snapshots)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .datasets.requests import (
        default_query_catalog,
        load_trace,
        request_trace,
        save_trace,
    )
    from .service import MaxRSService
    from .streaming import ShardedMaxRSMonitor

    if args.concurrency < 1:
        print("--concurrency must be >= 1", file=sys.stderr)
        return 2
    if args.input:
        table = read_points_csv(args.input)
        if not table.points:
            print("input file %s contains no points" % args.input, file=sys.stderr)
            return 2
        points, weights, colors = table.points, table.weights, table.colors
    else:
        points = clustered_points(args.n, dim=2, extent=args.extent, seed=args.seed)
        weights = colors = None

    if args.replay:
        try:
            trace = load_trace(args.replay)
        except (OSError, ValueError, KeyError) as error:
            print("cannot load trace %s: %s" % (args.replay, error), file=sys.stderr)
            return 2
    else:
        families = ([part.strip() for part in args.families.split(",") if part.strip()]
                    if args.families else None)
        catalog = default_query_catalog(colored=colors is not None,
                                        backend=args.backend)
        try:
            trace = request_trace(args.requests, catalog=catalog, seed=args.seed,
                                  extent=args.extent, families=families,
                                  families_backend=args.backend)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    if args.save_trace:
        save_trace(args.save_trace, trace)
        print("wrote %d requests to %s" % (len(trace), args.save_trace))

    if args.listen:
        return _serve_listen(args, points, weights, colors)

    monitor = ShardedMaxRSMonitor(radius=args.radius, backend=args.backend)
    try:
        # Each serving flush roots its own service.flush trace, so the
        # JSONL file carries one span tree per flush rather than one
        # replay-sized blob.
        with _trace_sink(args.trace_out):
            with MaxRSService(points, weights=weights, colors=colors, monitor=monitor,
                              routing=args.routing, cache_ttl=args.cache_ttl,
                              cache_size=args.cache_size, max_batch=args.concurrency,
                              executor=args.executor, workers=args.workers) as service:
                report = service.serve_trace(trace, window=args.concurrency)
                snapshot = service.snapshot()
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    counts = trace.counts
    errors = [r for r in report.responses if not r.ok]
    print("trace:       %d requests (%d query / %d monitor / %d update, %d stream events)"
          % (len(trace), counts["query"], counts["monitor"], counts["update"],
             counts["stream_events"]))
    print("service:     routing=%s, concurrency=%d, cache_ttl=%gs"
          % (args.routing, args.concurrency, args.cache_ttl))
    print("throughput:  %.0f requests/sec (%.3fs total)"
          % (report.throughput, report.elapsed))
    print("batching:    %d flushes, mean batch %.1f"
          % (snapshot["flushes"], snapshot["mean_batch_size"]))
    print("coalescing:  %d coalesced, %d cache hits, %d solver calls, %d monitor passes"
          % (snapshot["coalesced"], snapshot["cache_hits"],
             snapshot["solver_calls"], snapshot["monitor_passes"]))
    print("latency:     p50=%.2gms p95=%.2gms (queue wait p95=%.2gms)"
          % (1e3 * snapshot["latency_p50"], 1e3 * snapshot["latency_p95"],
             1e3 * snapshot["queue_wait_p95"]))
    if errors:
        print("errors:      %d requests failed (first: %s)"
              % (len(errors), errors[0].error), file=sys.stderr)
        return 1
    return 0


def _parse_hostport(value: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI address; raises ``ValueError`` on junk."""
    host, separator, raw_port = value.rpartition(":")
    if not separator or not host or not raw_port.isdigit():
        raise ValueError("expected HOST:PORT, got %r" % value)
    port = int(raw_port)
    if port > 65535:
        raise ValueError("port %d out of range" % port)
    return host, port


def _serve_listen(args: argparse.Namespace, points, weights, colors) -> int:
    """The ``repro serve --listen`` path: socket front end over the service."""
    import time as _time

    from .net import MaxRSServer
    from .service import MaxRSService
    from .streaming import ShardedMaxRSMonitor

    try:
        host, port = _parse_hostport(args.listen)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.max_pending < 1:
        print("--max-pending must be >= 1", file=sys.stderr)
        return 2
    monitor = ShardedMaxRSMonitor(radius=args.radius, backend=args.backend)
    try:
        with _trace_sink(args.trace_out):
            with MaxRSService(points, weights=weights, colors=colors,
                              monitor=monitor, routing=args.routing,
                              cache_ttl=args.cache_ttl, cache_size=args.cache_size,
                              max_batch=args.concurrency, executor=args.executor,
                              workers=args.workers) as service:
                server = MaxRSServer(service, host, port,
                                     max_pending=args.max_pending,
                                     max_batch=args.concurrency)
                server.start_in_thread()
                print("listening on http://%s:%d/ (POST /v1/request, "
                      "GET /v1/stats, GET /v1/healthz)" % server.address)
                print("serving %d points, routing=%s, max_pending=%d, "
                      "window=%d" % (len(points), args.routing,
                                     args.max_pending, args.concurrency))
                try:
                    if args.duration is not None:
                        _time.sleep(args.duration)
                    else:
                        while True:
                            _time.sleep(3600.0)
                except KeyboardInterrupt:
                    pass
                finally:
                    server.stop()
                stats = server.snapshot()["server"]
                counters = stats["metrics"]

                def count(name: str) -> int:
                    return int((counters.get(name) or {}).get("value", 0))

                print("served:      %d requests (%d shed, %d decode errors, "
                      "max queue depth %d)"
                      % (count("net.requests"), count("net.shed"),
                         count("net.decode_errors"),
                         stats["max_queue_depth"]))
    except (OSError, RuntimeError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .datasets.requests import default_query_catalog, load_trace, request_trace
    from .net import run_loadgen

    try:
        host, port = _parse_hostport(args.connect)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.replay:
        try:
            trace = list(load_trace(args.replay))
        except (OSError, ValueError, KeyError) as error:
            print("cannot load trace %s: %s" % (args.replay, error),
                  file=sys.stderr)
            return 2
    else:
        catalog = default_query_catalog(backend=args.backend)
        trace = list(request_trace(args.requests, catalog=catalog,
                                   monitor_fraction=0.0, update_every=0,
                                   rate=args.rate, seed=args.seed,
                                   extent=args.extent))
    try:
        report = run_loadgen(host, port, trace, speedup=args.speedup,
                             clients=args.clients, timeout=args.timeout)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    summary = report.summary()
    latency = summary["latency"]
    print("replayed:    %d requests in %.3fs against %s:%d (speedup x%g, "
          "%d-connection pool)" % (report.requests, report.elapsed, host,
                                   port, report.speedup, report.clients))
    print("rates:       offered %.1f/s, achieved %.1f/s"
          % (report.offered_rate, report.achieved_rate))
    print("outcomes:    %d served, %d shed (%.1f%%), %d errors"
          % (report.served, report.shed, 100.0 * report.shed_rate,
             report.errors))
    if report.served:
        print("latency:     p50=%.2fms p95=%.2fms p99=%.2fms (from the "
              "scheduled send)" % (1e3 * latency["p50"], 1e3 * latency["p95"],
                                   1e3 * latency["p99"]))
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote summary to %s" % args.output)
    if report.errors:
        first = next(record for record in report.records
                     if not record.ok and not record.shed)
        print("errors:      first failure: request %d (status %d)"
              % (first.index, first.status), file=sys.stderr)
        return 1
    return 0


def _parse_overrides(pairs: Optional[Sequence[str]]) -> Optional[Dict[str, object]]:
    """Parse ``--set key=value`` pairs; values are JSON when they parse as
    JSON (numbers, booleans, lists), strings otherwise."""
    import json

    if not pairs:
        return None
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ValueError("--set expects key=value, got %r" % pair)
        try:
            overrides[key] = json.loads(raw)
        except ValueError:
            overrides[key] = raw
    return overrides


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.compare import run_compare
    from .bench.grid import run_grid
    from .bench.suites import SUITES

    if args.action == "list":
        for name in sorted(SUITES):
            suite = SUITES[name]()
            print("%-10s %s" % (name, suite.description))
        return 0
    if args.action == "compare":
        try:
            return run_compare(args.current, args.history, noise=args.noise,
                               run_self_test=args.self_test)
        except (OSError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
    # grid
    unknown = [name for name in (args.suite or []) if name not in SUITES]
    if unknown:
        print("unknown bench suites: %s" % ", ".join(unknown), file=sys.stderr)
        print("known suites: %s" % ", ".join(sorted(SUITES)), file=sys.stderr)
        return 2
    try:
        overrides = _parse_overrides(args.set)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    return run_grid(names=args.suite or None, quick=args.quick,
                    output=args.output, history=args.history,
                    overrides=overrides, spans=not args.no_spans)


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        records = obs.load_trace_jsonl(args.trace)
    except OSError as error:
        print("cannot read trace %s: %s" % (args.trace, error), file=sys.stderr)
        return 2
    except (ValueError, KeyError) as error:
        print("malformed trace %s: %s" % (args.trace, error), file=sys.stderr)
        return 2
    if not records:
        print("trace %s contains no spans" % args.trace, file=sys.stderr)
        return 1
    if args.format == "tree":
        print(obs.render_tree(records))
    elif args.format == "prometheus":
        print(obs.render_prometheus(obs.registry_from_spans(records)), end="")
    else:
        traces = len({record.trace_id for record in records})
        print("trace file: %s (%d spans, %d traces)"
              % (args.trace, len(records), traces))
        print(obs.render_summary(records, top=args.top))
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maximum range sum (MaxRS) reproduction toolkit (PODS 2025).",
    )
    parser.add_argument("--version", action="version",
                        version="%(prog)s " + __version__,
                        help="print the package version and exit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="list or run the reproduction experiments E1-E15")
    experiments.add_argument("action", choices=["list", "run"])
    experiments.add_argument("ids", nargs="*", help="experiment ids to run, e.g. E1 E11")
    experiments.add_argument("--all", action="store_true", help="run every experiment")
    experiments.add_argument("--json", help="archive all reports into one JSON file")
    experiments.add_argument("--csv-dir", help="archive one CSV table per experiment")
    experiments.set_defaults(func=_cmd_experiments)

    generate = subparsers.add_parser("generate", help="synthesise a workload and write it to CSV")
    generate.add_argument("kind", choices=["uniform", "clustered", "hotspot", "trajectory"])
    generate.add_argument("--output", required=True, help="destination CSV path")
    generate.add_argument("--n", type=int, default=200, help="number of points")
    generate.add_argument("--dim", type=int, default=2, help="dimension")
    generate.add_argument("--extent", type=float, default=10.0, help="side of the bounding cube")
    generate.add_argument("--clusters", type=int, default=3, help="clusters (clustered only)")
    generate.add_argument("--entities", type=int, default=10, help="entities (trajectory only)")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    solve = subparsers.add_parser("solve", help="run a MaxRS solver over a CSV point file")
    solve.add_argument("shape", choices=["interval", "rectangle", "disk", "ball-approx",
                                         "colored-disk", "colored-box"])
    solve.add_argument("--input", required=True, help="CSV file of points")
    solve.add_argument("--radius", type=float, default=1.0)
    solve.add_argument("--width", type=float, default=1.0)
    solve.add_argument("--height", type=float, default=1.0)
    solve.add_argument("--length", type=float, default=1.0)
    solve.add_argument("--epsilon", type=float, default=0.25)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--exact", action="store_true",
                       help="use the exact solver where both exist (colored-disk)")
    solve.add_argument("--family",
                       choices=["single", "topk", "batched", "decayed", "colored-box3d"],
                       default="single",
                       help="query family: 'single' is the plain one-placement "
                            "solver for the positional shape; 'topk' peels --k "
                            "disjoint placements (shapes rectangle/disk); "
                            "'batched' answers every --lengths / --sizes member "
                            "in one query (shapes interval/rectangle); 'decayed' "
                            "weights point i by gamma^(horizon - i) (shapes "
                            "interval/rectangle/disk; always routed direct -- "
                            "weights depend on global arrival order); "
                            "'colored-box3d' places a --width x --height x "
                            "--depth box maximising distinct colors (the "
                            "positional shape is ignored)")
    solve.add_argument("--k", type=int, default=3,
                       help="placements to peel for --family topk")
    solve.add_argument("--gamma", type=float, default=0.9,
                       help="decay factor in (0, 1) for --family decayed")
    solve.add_argument("--as-of", type=int, default=None, dest="as_of",
                       help="evaluate --family decayed as of this arrival index "
                            "(default: the last point)")
    solve.add_argument("--depth", type=float, default=1.0,
                       help="z-side length for --family colored-box3d")
    solve.add_argument("--lengths", default=None,
                       help="comma-separated interval lengths for --family "
                            "batched with shape interval, e.g. 0.5,1.0,2.0 "
                            "(default: one member of --length)")
    solve.add_argument("--sizes", default=None,
                       help="comma-separated WxH rectangle sizes for --family "
                            "batched with shape rectangle, e.g. 1x1,2x1.5 "
                            "(default: one member of --width x --height)")
    solve.add_argument("--backend", choices=["auto", "python", "numpy"], default="auto",
                       help="kernel backend for the sweep inner loops (repro.kernels): "
                            "'python' is the reference loop, 'numpy' the vectorised "
                            "kernels, 'auto' picks by input size (and honours the "
                            "REPRO_BACKEND environment variable)")
    solve.add_argument("--engine", choices=["direct", "sharded"], default="direct",
                       help="'direct' calls the solver once; 'sharded' routes through "
                            "the parallel execution engine (repro.engine)")
    solve.add_argument("--workers", type=int, default=1,
                       help="worker count for the sharded engine's executor")
    solve.add_argument("--executor",
                       choices=["serial", "thread", "process", "shared-process"],
                       default=None,
                       help="sharded engine backend (default: thread when "
                            "--workers > 1, else REPRO_EXECUTOR or serial); "
                            "'shared-process' publishes the dataset to OS "
                            "shared memory and sends workers only shard "
                            "index descriptors (repro.parallel)")
    solve.add_argument("--trace-out", default=None,
                       help="record the solve's span trace (repro.obs) to this "
                            "JSONL file; inspect it with 'repro stats'")
    solve.set_defaults(func=_cmd_solve)

    monitor = subparsers.add_parser(
        "monitor", help="replay an update stream through a streaming hotspot monitor")
    monitor.add_argument("--stream", choices=["hotspot", "sliding", "drift", "burst", "churn"],
                         default="hotspot", help="synthetic stream scenario to replay")
    monitor.add_argument("--events", type=int, default=2000, help="stream length")
    monitor.add_argument("--monitor", choices=["sharded", "exact", "approx", "multi"],
                         default="sharded",
                         help="'sharded' = dirty-shard exact monitor, 'exact' = "
                              "from-scratch recompute baseline, 'approx' = the paper's "
                              "dynamic (1/2 - eps) structure, 'multi' = several standing "
                              "queries over one shared shard pass")
    monitor.add_argument("--batch-size", type=int, default=256,
                         help="events ingested per batch (chunked apply_stream)")
    monitor.add_argument("--backend", choices=["auto", "python", "numpy"], default="auto",
                         help="kernel backend for the per-shard sweeps; 'auto' resolves "
                              "per shard like the batch engine")
    monitor.add_argument("--executor",
                         choices=["serial", "thread", "process", "shared-process"],
                         default=None,
                         help="engine executor for dirty-shard re-solves "
                              "(default: inline; 'shared-process' keeps a "
                              "persistent crash-recovering worker pool)")
    monitor.add_argument("--workers", type=int, default=None,
                         help="worker count for the executor")
    monitor.add_argument("--radius", type=float, default=1.0,
                         help="query disk radius (also the churn stream's tile scale)")
    monitor.add_argument("--radii", default=None,
                         help="comma-separated disk radii for --monitor multi "
                              "(default: 0.5,1.0)")
    monitor.add_argument("--width", type=float, default=None,
                         help="standing rectangle width for --monitor multi "
                              "(default: 1.0)")
    monitor.add_argument("--height", type=float, default=None,
                         help="standing rectangle height for --monitor multi "
                              "(default: 1.0)")
    monitor.add_argument("--epsilon", type=float, default=None,
                         help="epsilon for --monitor approx (default: 0.25)")
    monitor.add_argument("--window", type=int, default=None,
                         help="count-based sliding window of the sharded monitor "
                              "(also sets the expiry window of --stream sliding)")
    monitor.add_argument("--time-window", type=float, default=None,
                         help="time-based sliding window of the sharded monitor "
                              "(every stream this command generates carries "
                              "unit-spaced timestamps)")
    monitor.add_argument("--query-every", type=int, default=None,
                         help="events between hotspot queries (default: stream/10)")
    monitor.add_argument("--extent", type=float, default=10.0,
                         help="side of the stream's bounding square")
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument("--trace-out", default=None,
                         help="record the replay's span traces (repro.obs) to "
                              "this JSONL file; inspect with 'repro stats'")
    monitor.set_defaults(func=_cmd_monitor)

    serve = subparsers.add_parser(
        "serve", help="replay a mixed request trace through the serving front end")
    serve.add_argument("--input", default=None,
                       help="CSV file of static-dataset points (default: generate "
                            "a clustered workload of --n points)")
    serve.add_argument("--n", type=int, default=1500,
                       help="generated dataset size when --input is not given")
    serve.add_argument("--requests", type=int, default=2000,
                       help="synthetic trace length when --replay is not given")
    serve.add_argument("--replay", default=None,
                       help="replay a JSONL request trace recorded with --save-trace "
                            "(see repro.datasets.requests.save_trace)")
    serve.add_argument("--save-trace", default=None,
                       help="write the replayed trace to this JSONL path")
    serve.add_argument("--families", default=None,
                       help="comma-separated long-tail query families to mix "
                            "into the generated trace (topk, decayed, batched, "
                            "batched_interval, colored_box3d); replayed traces "
                            "carry their own families")
    serve.add_argument("--concurrency", type=int, default=64,
                       help="maximum requests in flight together (the flush window "
                            "micro-batches and coalescing operate over)")
    serve.add_argument("--cache-ttl", type=float, default=60.0,
                       help="seconds a cached answer may be served before expiring")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="entries the TTL'd result cache holds")
    serve.add_argument("--routing", choices=["direct", "sharded", "auto"],
                       default="direct",
                       help="'direct' = bit-identical direct solver calls on cache "
                            "misses; 'sharded' = flush misses through the sharded "
                            "engine (same values, possibly different placements); "
                            "'auto' = plan-aware: shard only the quadratic-cost "
                            "queries (engine batch_plan)")
    serve.add_argument("--radius", type=float, default=1.0,
                       help="disk radius of the live hotspot monitor")
    serve.add_argument("--backend", choices=["auto", "python", "numpy"], default="auto",
                       help="kernel backend for the generated trace's queries and "
                            "the monitor's per-shard sweeps")
    serve.add_argument("--executor",
                       choices=["serial", "thread", "process", "shared-process"],
                       default=None,
                       help="engine executor for sharded routing (default: "
                            "REPRO_EXECUTOR or serial; 'shared-process' = "
                            "zero-copy shared-memory workers)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker count for the engine executor")
    serve.add_argument("--extent", type=float, default=10.0,
                       help="side of the generated workload's bounding square")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--trace-out", default=None,
                       help="record one span trace per serving flush "
                            "(repro.obs) to this JSONL file; inspect with "
                            "'repro stats'")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve over a socket instead of replaying: bind "
                            "the asyncio HTTP front end (repro.net) here "
                            "(e.g. 127.0.0.1:8750; port 0 picks a free port) "
                            "and answer POST /v1/request until --duration "
                            "elapses or Ctrl-C")
    serve.add_argument("--duration", type=float, default=None,
                       help="seconds to keep a --listen server up "
                            "(default: until interrupted)")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="admission-queue bound of a --listen server; "
                            "requests arriving beyond it are shed with 503")
    serve.set_defaults(func=_cmd_serve)

    loadgen = subparsers.add_parser(
        "loadgen", help="replay a request trace open-loop against a live "
                        "'repro serve --listen' server")
    loadgen.add_argument("--connect", required=True, metavar="HOST:PORT",
                         help="address of the live server to load")
    loadgen.add_argument("--replay", default=None,
                         help="JSONL request trace to replay (see 'repro serve "
                              "--save-trace'); default: synthesise a query-only "
                              "trace of --requests requests")
    loadgen.add_argument("--requests", type=int, default=500,
                         help="synthetic trace length when --replay is not given")
    loadgen.add_argument("--rate", type=float, default=100.0,
                         help="arrival rate (requests/sec) of the synthetic trace")
    loadgen.add_argument("--backend", choices=["auto", "python", "numpy"],
                         default="auto",
                         help="kernel backend pinned on the synthetic trace's "
                              "queries")
    loadgen.add_argument("--speedup", type=float, default=1.0,
                         help="rate multiplier over the trace's recorded "
                              "arrivals (2.0 offers the trace at twice its "
                              "recorded rate)")
    loadgen.add_argument("--clients", type=int, default=8,
                         help="keep-alive connection-pool size (in-flight "
                              "requests are not capped: the replay is open-loop)")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         help="per-request response deadline in seconds")
    loadgen.add_argument("--extent", type=float, default=10.0,
                         help="bounding-square side of the synthetic trace's "
                              "query catalog")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--output", default=None,
                         help="write the JSON report summary to this path")
    loadgen.set_defaults(func=_cmd_loadgen)

    stats = subparsers.add_parser(
        "stats", help="render a span trace recorded with --trace-out")
    stats.add_argument("--trace", required=True,
                       help="JSONL span-trace file written by a --trace-out run")
    stats.add_argument("--format", choices=["summary", "tree", "prometheus"],
                       default="summary",
                       help="'summary' = per-span-name totals and percentiles, "
                            "'tree' = the full indented span hierarchy, "
                            "'prometheus' = text exposition of per-span count/"
                            "duration metrics")
    stats.add_argument("--top", type=int, default=0,
                       help="keep only the N heaviest span names in the "
                            "summary (0 = all)")
    stats.set_defaults(func=_cmd_stats)

    bench = subparsers.add_parser(
        "bench", help="run the unified performance grids or compare against "
                      "the committed perf history")
    bench.add_argument("action", choices=["list", "grid", "compare"],
                       help="'list' names the suites, 'grid' runs them and "
                            "writes one repro-bench-grid/1 artifact, "
                            "'compare' regresses an artifact against the "
                            "committed PERF_HISTORY.jsonl trajectory")
    bench.add_argument("--suite", action="append", default=None,
                       help="suite to run (repeatable; default: all of %s)"
                            % "engine/kernels/parallel/service/serving_slo/"
                              "streaming/zoo")
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized workloads (the committed baselines in "
                            "PERF_HISTORY.jsonl are quick-mode)")
    bench.add_argument("--output", default="BENCH_grid.json",
                       help="destination of the unified JSON artifact")
    bench.add_argument("--history", default=None,
                       help="append one JSON line per suite run to this "
                            "PERF_HISTORY.jsonl trajectory")
    bench.add_argument("--set", action="append", default=None, metavar="KEY=VALUE",
                       help="override a suite config key (repeatable; values "
                            "parse as JSON when possible, e.g. "
                            "--set n_sweep=500)")
    bench.add_argument("--no-spans", action="store_true",
                       help="skip the per-phase span probes (repro.obs)")
    bench.add_argument("--current", default="BENCH_grid.json",
                       help="artifact to compare (bench compare)")
    bench.add_argument("--noise", type=float, default=0.25,
                       help="relative noise band for gate regressions "
                            "(0.25 = a metric must move 25%% beyond the "
                            "baseline to fail)")
    bench.add_argument("--self-test", action="store_true",
                       help="first prove the comparator catches a synthetic "
                            "regression injected at twice the noise band")
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro stats ... | head`);
        # point it at devnull so interpreter shutdown does not re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
