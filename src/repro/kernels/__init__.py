"""Pluggable kernel backends for the hot inner loops.

Every sweep-style solver in the library bottoms out in a small number of
*kernels*: the weighted interval/rectangle sweep accumulations, the pairwise
disk-intersection candidate generation feeding the angular disk sweep, the
batched weighted-depth evaluation of Technique 1's probe points and the
batched colored-depth evaluation of Technique 2's arrangement vertices.  This
package provides two interchangeable implementations of each kernel:

``python``
    The faithful pure-Python reference -- the loops the reproduction shipped
    with, extracted verbatim.  Always available, easiest to audit against the
    paper's pseudocode, and the correctness oracle of the differential test
    harness (``tests/test_backend_conformance.py``).

``numpy``
    Batched/vectorised implementations of the same contracts.  These restate
    each sweep so that the inner loop runs inside NumPy (event arrays, prefix
    sums, chunked upper-bound pruning) instead of the Python interpreter; see
    :mod:`repro.kernels.numpy_backend` for the algorithmic notes.

Both backends implement the same module-level functions (the *kernel
contract*):

========================== ==================================================
``interval_sweep``          1-d fixed-length interval sweep -> (value, left)
``rectangle_sweep``         2-d Imai--Asano rectangle sweep -> (value, corner)
``disk_neighbor_candidates`` per-point indices within ``2r`` (grid-bucketed)
``disk_sweep``              exact disk MaxRS angular sweep -> (value, center)
``probe_depths``            weighted depth of many probes (Technique 1)
``colored_depth_batch``     colored depth of many probes (Technique 2)
========================== ==================================================

Backends must agree on the *objective value* of the optimum (bit-identical
whenever the weight arithmetic is exact, e.g. integer weights; within
floating-point reassociation noise otherwise) but may report different --
equally optimal -- argmax locations.  The differential harness asserts both
properties by re-scoring every reported placement with an independent oracle.

Selecting a backend
-------------------
Solvers take ``backend="auto" | "python" | "numpy"``.  ``"auto"`` resolves
per call: the ``REPRO_BACKEND`` environment variable wins if set (this is how
CI forces the whole tier-1 suite through the NumPy kernels), otherwise NumPy
is chosen once the input size reaches :data:`AUTO_THRESHOLD` points and the
pure-Python loops below it (small inputs are interpreter-bound either way and
the reference loops avoid NumPy's per-call overhead).  The sharded engine
resolves ``"auto"`` *per shard*, so fine shards stay on Python while big
shards vectorise (:meth:`repro.engine.QueryEngine.solve_batch`).

Adding a backend
----------------
Implement the contract functions in a module and register it::

    from repro import kernels
    kernels.register_backend("mylib", my_module)
    maxrs_rectangle_exact(points, 1.0, 1.0, backend="mylib")

A partial backend is allowed: any contract function the module does not
define falls back to the ``python`` reference via :func:`get_kernel`.
"""

from __future__ import annotations

import os
from types import ModuleType
from typing import Callable, Dict, Optional, Tuple

from . import python_backend
from . import numpy_backend

__all__ = [
    "AUTO_THRESHOLD",
    "KERNEL_NAMES",
    "available_backends",
    "get_backend",
    "get_kernel",
    "register_backend",
    "resolve_backend",
    "resolve_batch_backend",
]

#: Input size at which ``backend="auto"`` switches from the pure-Python
#: loops to the vectorised NumPy kernels.  Below this the sweeps are
#: dominated by fixed per-call costs where the interpreter loops win.
AUTO_THRESHOLD = 512

#: Per-kernel overrides of :data:`AUTO_THRESHOLD`.  The batched depth
#: evaluators vectorise profitably at any size (they replace what was always
#: an inline NumPy block, and a probe batch multiplies the work per point),
#: so ``auto`` sends them to NumPy immediately.
KERNEL_AUTO_THRESHOLDS: Dict[str, int] = {
    "probe_depths": 0,
    "colored_depth_batch": 0,
}

#: The functions a backend module may implement (the kernel contract).
KERNEL_NAMES: Tuple[str, ...] = (
    "interval_sweep",
    "rectangle_sweep",
    "disk_neighbor_candidates",
    "disk_sweep",
    "probe_depths",
    "colored_depth_batch",
)

_REGISTRY: Dict[str, ModuleType] = {}


def register_backend(name: str, module: ModuleType) -> None:
    """Register ``module`` as the kernel backend called ``name``.

    The module should implement (a subset of) the functions in
    :data:`KERNEL_NAMES`; missing kernels fall back to the ``python``
    reference implementation.
    """
    if not name or name == "auto":
        raise ValueError("backend name %r is reserved" % (name,))
    _REGISTRY[name] = module


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends (always includes ``python``)."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> ModuleType:
    """Return the backend module registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown kernel backend %r (available: %s)"
            % (name, ", ".join(available_backends()))
        ) from None


def resolve_backend(backend: str, n: int, kernel: Optional[str] = None) -> str:
    """Resolve a requested backend to a concrete registered name.

    ``"auto"`` (or ``None``) picks ``REPRO_BACKEND`` from the environment if
    set, otherwise ``numpy`` for inputs of at least :data:`AUTO_THRESHOLD`
    points (or the kernel's :data:`KERNEL_AUTO_THRESHOLDS` override) and
    ``python`` below.  Explicit names are validated and returned unchanged
    (an explicit request always beats the environment override).
    """
    if backend is None or backend == "auto":
        forced = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if forced:
            get_backend(forced)  # validate eagerly: a typo should not no-op
            return forced
        threshold = KERNEL_AUTO_THRESHOLDS.get(kernel, AUTO_THRESHOLD)
        if n >= threshold and "numpy" in _REGISTRY:
            return "numpy"
        return "python"
    get_backend(backend)
    return backend


def resolve_batch_backend(backend: str, n: int, batch_size: int = 1) -> str:
    """Resolve a backend for a *micro-batch* of ``batch_size`` sweeps over
    one ``n``-point dataset (the serving layer's per-batch resolution).

    A batch amortises NumPy's per-call setup over every sweep it contains,
    so ``"auto"`` switches to the vectorised kernels once the batch's total
    work ``n * batch_size`` crosses :data:`AUTO_THRESHOLD`, rather than
    requiring each individual call to cross it.  Explicit backend names are
    validated and returned unchanged, exactly like :func:`resolve_backend`.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if backend is None or backend == "auto":
        return resolve_backend(backend, n * batch_size)
    return resolve_backend(backend, n)


def get_kernel(backend: str, kernel: str, n: int = 0) -> Callable:
    """Resolve ``backend`` for an ``n``-point input and fetch one kernel.

    Falls back to the ``python`` reference when the resolved backend does not
    implement ``kernel`` (partial third-party backends).
    """
    if kernel not in KERNEL_NAMES:
        raise ValueError("unknown kernel %r (known: %s)" % (kernel, ", ".join(KERNEL_NAMES)))
    module = get_backend(resolve_backend(backend, n, kernel))
    function = getattr(module, kernel, None)
    if function is None:
        function = getattr(python_backend, kernel)
    return function


register_backend("python", python_backend)
register_backend("numpy", numpy_backend)
