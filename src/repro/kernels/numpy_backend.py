"""Vectorised NumPy kernels.

Each kernel restates the corresponding reference sweep of
:mod:`repro.kernels.python_backend` so the inner loop runs inside NumPy:

``interval_sweep``
    The event sweep becomes one interleaved prefix sum.  Additions and
    removals are bucketed per unique breakpoint with ``np.bincount`` (which
    accumulates duplicates in input order, like the reference dicts) and the
    alternating add/subtract order of the reference loop is reproduced by
    interleaving the per-coordinate sums into a single ``cumsum`` -- the
    running values are therefore *bit-identical* to the pure-Python sweep.

``rectangle_sweep``
    A chunked prefix-bound sweep.  The classical segment-tree sweep is
    irreducibly sequential, so instead events (sorted by ``a``) are processed
    in chunks: for each chunk a vectorised diff-array/cumsum computes, per
    candidate ``b``, an upper bound on the value reachable inside the chunk
    (current value plus *all* chunk insertions, ignoring removals -- valid
    because weights are non-negative).  Only the few positions whose bound
    beats the incumbent are re-simulated exactly (a ``cumsum`` over the
    chunk's event-coverage matrix); everything else is skipped wholesale.
    The incumbent is warm-started from the historic maxima of the highest
    insertion-mass columns, which keeps the suspect sets tiny from the first
    chunk on.  Observed ~10x over the segment-tree sweep at ``n = 100k``.

``disk_sweep`` / ``disk_neighbor_candidates``
    A vectorised cell join generates every interacting pair at once (only
    the 3x3 cell neighbourhood of a uniform ``2r`` grid can interact), all
    arc geometry is computed in one flat pass over the pairs, and each
    circle's angular sweep is restated as two prefix sums over its sorted
    arc starts/ends.  Pivots are visited in decreasing upper-bound order so
    the sweep stops once no remaining circle can win.

``probe_depths`` / ``colored_depth_batch``
    Dense pairwise distance blocks; colored depth reduces per-color coverage
    with ``np.logical_or.reduceat`` over color-sorted columns.

All kernels preserve the reference semantics exactly: the same candidate
sets, the same epsilon conventions, the same optimal objective value (up to
floating-point reassociation; bit-identical when the weight arithmetic is
exact, e.g. integer weights).  Reported argmax locations may be different,
equally optimal placements -- the differential harness re-scores them.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "interval_sweep",
    "rectangle_sweep",
    "disk_neighbor_candidates",
    "disk_sweep",
    "probe_depths",
    "colored_depth_batch",
]

TWO_PI = 2.0 * math.pi

Coords = Tuple[float, ...]

#: Maximum events per chunk of the rectangle sweep.  The effective chunk
#: scales with the event count (see :func:`_rectangle_chunk`): a chunk must
#: span a small fraction of the sweep or the insertions-only upper bound goes
#: loose and every column becomes a suspect.
_RECT_CHUNK = 1024

#: Columns simulated per batch in the suspect refinement (bounds memory:
#: the coverage matrix is ``_RECT_CHUNK x _RECT_BATCH``).
_RECT_BATCH = 2048

#: Number of warm-start columns whose exact historic maximum seeds the
#: incumbent before the chunked sweep begins.
_RECT_WARM = 32


def _rectangle_chunk(n_events: int) -> int:
    """Chunk size keeping the per-chunk insertion mass a small, constant
    fraction (~1/128) of the sweep, capped so suspect matrices stay small."""
    return max(64, min(_RECT_CHUNK, n_events // 128))


# --------------------------------------------------------------------------- #
# interval sweep (1-d)
# --------------------------------------------------------------------------- #

def interval_sweep(
    xs: Sequence[float],
    weights: Sequence[float],
    length: float,
    allow_empty: bool = True,
) -> Tuple[float, Optional[float]]:
    """Vectorised 1-d sweep; see :func:`repro.kernels.python_backend.interval_sweep`."""
    x = np.asarray(xs, dtype=float)
    w = np.asarray(weights, dtype=float)
    n = x.size
    if n == 0:
        return (0.0 if allow_empty else float("-inf")), None

    all_coords = np.concatenate([x - length, x])
    uniq, inverse = np.unique(all_coords, return_inverse=True)
    m = uniq.size
    additions = np.bincount(inverse[:n], weights=w, minlength=m)
    removals = np.bincount(inverse[n:], weights=w, minlength=m)
    has_removal = np.bincount(inverse[n:], minlength=m) > 0

    # Reproduce the reference loop's alternating add/subtract order so the
    # running sums are bit-identical: cumsum over [A_0, -R_0, A_1, -R_1, ...].
    interleaved = np.empty(2 * m, dtype=float)
    interleaved[0::2] = additions
    interleaved[1::2] = -removals
    running = np.cumsum(interleaved)
    after_add = running[0::2]     # value of placing the left endpoint at uniq[k]
    after_remove = running[1::2]  # value on the open piece just after uniq[k]

    best_value = 0.0 if allow_empty else float("-inf")
    best_left: Optional[float] = None

    k1 = int(np.argmax(after_add))
    v1 = float(after_add[k1])
    v2 = -math.inf
    if has_removal.any():
        masked = np.where(has_removal, after_remove, -np.inf)
        k2 = int(np.argmax(masked))
        v2 = float(masked[k2])

    if v1 > best_value and v1 >= v2:
        best_value = v1
        best_left = float(uniq[k1])
    elif v2 > best_value:
        best_value = v2
        best_left = float((uniq[k2] + uniq[k2 + 1]) / 2.0) if k2 + 1 < m else float(uniq[k2] + 1.0)
    return best_value, best_left


# --------------------------------------------------------------------------- #
# rectangle sweep (2-d): chunked prefix-bound sweep with suspect refinement
# --------------------------------------------------------------------------- #

def rectangle_sweep(
    coords: Sequence[Coords],
    weights: Sequence[float],
    width: float,
    height: float,
) -> Tuple[float, Optional[Tuple[float, float]]]:
    """Vectorised 2-d sweep; see the module docstring for the algorithm.

    Correctness rests on two facts.  (1) With non-negative weights the value
    of a candidate column ``b`` over sweep time attains its maximum right
    after a full insertion group, so the per-column *historic* maximum over
    all event prefixes equals the maximum over the reference sweep's query
    points.  (2) Within a chunk, current value plus the chunk's insertions
    (ignoring removals) bounds every intermediate value from above, so
    columns whose bound does not beat the incumbent need no exact replay.
    """
    pts = np.asarray(coords, dtype=float)
    w = np.asarray(weights, dtype=float)
    n = len(pts)
    if n == 0:
        return 0.0, None
    xs = pts[:, 0]
    ys = pts[:, 1]

    # Candidate b columns and each point's covered column range, with the
    # same epsilon conventions as the reference bisects.
    b_cands = np.unique(ys - height)
    m = b_cands.size
    lo = np.searchsorted(b_cands, ys - height - 1e-9, side="left")
    hi = np.searchsorted(b_cands, ys + 1e-9, side="right") - 1

    # Events sorted by (a, kind, point): insertions (kind 0) before removals
    # at equal a, exactly like the reference sweep.
    idx = np.arange(n)
    ev_x = np.concatenate([xs - width, xs])
    ev_kind = np.concatenate([np.zeros(n, dtype=np.int8), np.ones(n, dtype=np.int8)])
    ev_pt = np.concatenate([idx, idx])
    order = np.lexsort((ev_pt, ev_kind, ev_x))
    ex = ev_x[order]
    is_ins = ev_kind[order] == 0
    ev_pt = ev_pt[order]
    elo = lo[ev_pt]
    ehi = hi[ev_pt]
    esw = np.where(is_ins, 1.0, -1.0) * w[ev_pt]
    n_events = 2 * n

    best = -np.inf
    best_col = -1

    def consider_column(j: int) -> None:
        """Exact historic maximum of column ``j`` over the full event list."""
        nonlocal best, best_col
        cover = (elo <= j) & (ehi >= j)
        prefix = np.cumsum(esw[cover])
        ins_prefix = prefix[is_ins[cover]]
        if ins_prefix.size:
            value = float(ins_prefix.max())
            if value > best:
                best = value
                best_col = j

    # Warm start: the columns with the largest total insertion mass are the
    # likeliest optima; seeding the incumbent with their exact maxima keeps
    # the first chunks' suspect sets small.
    diff = np.zeros(m + 1)
    np.add.at(diff, lo, w)
    np.add.at(diff, hi + 1, -w)
    insertion_mass = np.cumsum(diff[:m])
    k = min(_RECT_WARM, m)
    for j in np.argpartition(insertion_mass, m - k)[m - k:]:
        consider_column(int(j))
    consider_column(int(lo[0]))  # guarantees a valid placement even with all-zero weights

    chunk = _rectangle_chunk(n_events)
    value_now = np.zeros(m)  # exact column values at the current chunk boundary
    for c0 in range(0, n_events, chunk):
        c1 = min(n_events, c0 + chunk)
        l = elo[c0:c1]
        h = ehi[c0:c1]
        sw = esw[c0:c1]
        ins = is_ins[c0:c1]

        if ins.any():
            # Upper bound per column: current value + all chunk insertions.
            diff = np.zeros(m + 1)
            np.add.at(diff, l[ins], sw[ins])
            np.add.at(diff, h[ins] + 1, -sw[ins])
            bound = value_now + np.cumsum(diff[:m])
            # The margin absorbs reassociation noise between the bound (chunked
            # sums) and the incumbent (sequential sums): suspects may only be
            # over-included, never missed.
            margin = 1e-9 * (1.0 + abs(best))
            suspects = np.flatnonzero(bound > best - margin)
            for s0 in range(0, suspects.size, _RECT_BATCH):
                batch = suspects[s0:s0 + _RECT_BATCH]
                cover = (l[:, None] <= batch[None, :]) & (h[:, None] >= batch[None, :])
                prefix = np.cumsum(np.where(cover, sw[:, None], 0.0), axis=0)
                prefix += value_now[batch][None, :]
                ins_prefix = prefix[ins]
                flat = int(np.argmax(ins_prefix))
                value = float(ins_prefix.reshape(-1)[flat])
                if value > best:
                    best = value
                    best_col = int(batch[flat % batch.size])

        # Advance the chunk boundary exactly (insertions and removals).
        diff = np.zeros(m + 1)
        np.add.at(diff, l, sw)
        np.add.at(diff, h + 1, -sw)
        value_now += np.cumsum(diff[:m])

    # Recover the winning insertion coordinate and report the column's value
    # as one sequential in-order sum (deterministic across chunk sizes).
    cover = (elo <= best_col) & (ehi >= best_col)
    prefix = np.cumsum(esw[cover])
    ins_sel = is_ins[cover]
    ins_prefix = prefix[ins_sel]
    p = int(np.argmax(ins_prefix))
    best_value = float(ins_prefix[p])
    a = float(ex[cover][ins_sel][p])
    if best_value < 0.0:
        # All-negative is impossible (weights >= 0); guard for -0.0 artifacts.
        best_value = 0.0
    return best_value, (a, float(b_cands[best_col]))


# --------------------------------------------------------------------------- #
# disk kernels (2-d angular sweep)
# --------------------------------------------------------------------------- #

def _disk_interaction_pairs(
    pts: np.ndarray,
    radius: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """All ordered pairs ``(i, j)``, ``j != i``, with ``dist <= 2r + 1e-12``.

    Vectorised cell join: points are bucketed into a uniform grid of side
    ``2r + 1e-9`` (so interacting pairs always sit in adjacent cells), and
    for each of the nine cell offsets one ``searchsorted`` against the
    cell-sorted point order finds every pivot's candidate run at once; the
    runs are expanded to pairs with a ``repeat``/``arange`` trick and
    distance-filtered.  Returns ``(pivot, other)`` index arrays sorted by
    pivot (ties in unspecified order).
    """
    n = len(pts)
    side = 2.0 * radius + 1e-9
    cutoff = 2.0 * radius + 1e-12
    cells = np.floor(pts / side).astype(np.int64)
    cx = cells[:, 0] - cells[:, 0].min()
    cy = cells[:, 1] - cells[:, 1].min()
    stride = cy.max() + 2  # +2: neighbor offsets reach one row past the data
    key = cx * stride + cy
    by_cell = np.argsort(key, kind="stable")
    sorted_keys = key[by_cell]

    pivot_chunks: List[np.ndarray] = []
    other_chunks: List[np.ndarray] = []
    for dx_cell in (-1, 0, 1):
        for dy_cell in (-1, 0, 1):
            probe = key + dx_cell * stride + dy_cell
            left = np.searchsorted(sorted_keys, probe, side="left")
            right = np.searchsorted(sorted_keys, probe, side="right")
            lengths = right - left
            total = int(lengths.sum())
            if total == 0:
                continue
            pivots = np.repeat(np.arange(n), lengths)
            # position within each run: global arange minus each run's offset
            run_offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
            within = np.arange(total) - np.repeat(run_offsets, lengths)
            others = by_cell[np.repeat(left, lengths) + within]
            pivot_chunks.append(pivots)
            other_chunks.append(others)

    pivot_of = np.concatenate(pivot_chunks)
    other = np.concatenate(other_chunks)
    keep = (
        (pivot_of != other)
        & (np.hypot(pts[other, 0] - pts[pivot_of, 0],
                    pts[other, 1] - pts[pivot_of, 1]) <= cutoff)
    )
    pivot_of = pivot_of[keep]
    other = other[keep]
    by_pivot = np.argsort(pivot_of, kind="stable")
    return pivot_of[by_pivot], other[by_pivot]


def disk_neighbor_candidates(
    coords: Sequence[Coords],
    radius: float,
) -> List[np.ndarray]:
    """Grid-bucketed candidate generation; same contract as the reference.

    ``result[i]`` holds the indices ``j != i`` (sorted ascending) with
    ``dist(p_i, p_j) <= 2 * radius + 1e-12``.
    """
    pts = np.asarray(coords, dtype=float)
    n = len(pts)
    if n == 0:
        return []
    pivot_of, other = _disk_interaction_pairs(pts, radius)
    order = np.lexsort((other, pivot_of))
    counts = np.bincount(pivot_of, minlength=n)
    return np.split(other[order], np.cumsum(counts)[:-1])


def disk_sweep(
    coords: Sequence[Coords],
    weights: Sequence[float],
    radius: float,
) -> Tuple[float, Optional[Tuple[float, float]]]:
    """Vectorised angular sweep; see :func:`repro.kernels.python_backend.disk_sweep`.

    Per pivot circle the arc geometry, the event ordering and the running
    weight are computed on whole candidate arrays.  A wrapping arc
    ``(start, end)`` with ``end < start`` covers angle ``0``, so its weight
    joins the base value at angle ``0`` and its two events (+w at ``start``,
    -w at ``end``) reproduce the reference's split pieces.

    Pivots are visited in decreasing order of their trivial upper bound (own
    weight plus every candidate's weight); once the bound drops to the best
    value found no remaining circle can improve the answer and the sweep
    stops -- the same bound-and-prune the Technique 1 cell loop uses.  The
    optimum value is unaffected; only which of several equally optimal
    centers gets reported can differ from the reference backend.

    Two restatements keep the per-pivot work off the interpreter.  All pair
    geometry (distances, arc centers, half-widths, wrap-around) is computed
    in one flat pass over every candidate pair.  Each circle's sweep then
    avoids an event sort: with closed arcs, the value right after all arcs
    opening at angle ``a`` is ``base + sum(w : start <= a) - sum(w : end <
    a)``, so two per-pivot ``argsort``/``cumsum`` passes over starts and ends
    plus one ``searchsorted`` evaluate every candidate angle at once.
    """
    pts = np.asarray(coords, dtype=float)
    w = np.asarray(weights, dtype=float)
    n = len(pts)
    if n == 0:
        return 0.0, None
    xs = pts[:, 0]
    ys = pts[:, 1]
    two_r = 2.0 * radius

    pivot_of, flat = _disk_interaction_pairs(pts, radius)
    if pivot_of.size == 0:
        # No interacting pairs at all: the best disk covers one point.
        heaviest = int(np.argmax(w))
        return float(w[heaviest]), (float(xs[heaviest] + radius), float(ys[heaviest]))
    counts = np.bincount(pivot_of, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)])

    # Flat pair geometry (one vectorised pass over all candidate pairs).
    dx = xs[flat] - xs[pivot_of]
    dy = ys[flat] - ys[pivot_of]
    dist = np.hypot(dx, dy)
    pair_w = w[flat].copy()
    full = dist <= 1e-12  # concentric: the whole circle is covered
    theta = np.mod(np.arctan2(dy, dx), TWO_PI)
    half = np.arccos(np.minimum(1.0, dist / two_r))
    start = np.mod(theta - half, TWO_PI)
    end = np.mod(theta + half, TWO_PI)
    wrap = (end < start) & ~full

    # Per-pivot constants: the trivial upper bound, and the value at angle 0
    # (own weight + concentric disks + wrapping arcs, which all cover it).
    bounds = w + np.bincount(pivot_of, weights=pair_w, minlength=n)
    base0 = (
        w
        + np.bincount(pivot_of[full], weights=pair_w[full], minlength=n)
        + np.bincount(pivot_of[wrap], weights=pair_w[wrap], minlength=n)
    )
    # Concentric pairs joined the base; zeroing their weight makes their
    # (degenerate) arc events no-ops without per-pivot masking.
    pair_w[full] = 0.0

    best_value = -math.inf
    best_center: Optional[Tuple[float, float]] = None
    bound_list = bounds.tolist()
    base0_list = base0.tolist()
    count_list = counts.tolist()
    offset_list = offsets.tolist()
    for i in np.argsort(-bounds, kind="stable").tolist():
        if bound_list[i] <= best_value:
            break
        k = count_list[i]
        value = base0_list[i]
        angle = 0.0
        if k:
            lo = offset_list[i]
            window = slice(lo, lo + k)
            s = start[window]
            e = end[window]
            cw = pair_w[window]
            by_start = np.argsort(s)
            by_end = np.argsort(e)
            s_sorted = s[by_start]
            opened = np.cumsum(cw[by_start])          # sum(w : start <= a)
            closed = np.empty(k + 1)                  # prefix sums over sorted ends
            closed[0] = 0.0
            np.cumsum(cw[by_end], out=closed[1:])
            before = np.searchsorted(e[by_end], s_sorted, side="left")
            candidates = opened - closed[before]
            p = int(np.argmax(candidates))
            open_best = value + float(candidates[p])
            if open_best > value:
                value = open_best
                angle = float(s_sorted[p])
        if value > best_value:
            best_value = value
            best_center = (
                float(xs[i] + radius * math.cos(angle)),
                float(ys[i] + radius * math.sin(angle)),
            )
    return best_value, best_center


# --------------------------------------------------------------------------- #
# batched depth evaluation (Techniques 1 and 2)
# --------------------------------------------------------------------------- #

def probe_depths(
    probes: Sequence[Coords],
    centers: Sequence[Coords],
    weights: Sequence[float],
    radius: float = 1.0,
) -> np.ndarray:
    """Weighted depth of every probe via one pairwise distance block."""
    probe_arr = np.asarray(probes, dtype=float)
    center_arr = np.asarray(centers, dtype=float)
    weight_arr = np.asarray(weights, dtype=float)
    if probe_arr.size == 0:
        return np.zeros(0)
    if center_arr.size == 0:
        return np.zeros(len(probe_arr))
    r2 = radius * radius + 1e-12
    diff = probe_arr[:, None, :] - center_arr[None, :, :]
    inside = (diff * diff).sum(axis=2) <= r2
    return inside @ weight_arr


def colored_depth_batch(
    probes: Sequence[Coords],
    centers: Sequence[Coords],
    colors: Sequence[Hashable],
    radius: float = 1.0,
) -> List[int]:
    """Colored depth of every probe: per-color coverage reduced with ``reduceat``.

    Colors (arbitrary hashables) are coded to dense integers; centers are
    sorted by code once so each probe's distinct-color count is an ``any``
    per contiguous color group of its coverage row.
    """
    probe_arr = np.asarray(probes, dtype=float)
    center_arr = np.asarray(centers, dtype=float)
    if probe_arr.size == 0:
        return []
    if center_arr.size == 0:
        return [0] * len(probe_arr)

    code_of: dict = {}
    codes = np.empty(len(colors), dtype=np.intp)
    for i, color in enumerate(colors):
        codes[i] = code_of.setdefault(color, len(code_of))
    by_color = np.argsort(codes, kind="stable")
    sorted_codes = codes[by_color]
    group_starts = np.flatnonzero(np.r_[True, sorted_codes[1:] != sorted_codes[:-1]])

    sorted_centers = center_arr[by_color]
    r2 = radius * radius + 1e-12
    depths: List[int] = []
    chunk = max(1, 1_000_000 // max(1, len(center_arr)))
    for p0 in range(0, len(probe_arr), chunk):
        block = probe_arr[p0:p0 + chunk]
        diff = block[:, None, :] - sorted_centers[None, :, :]
        inside = (diff * diff).sum(axis=2) <= r2
        per_color = np.logical_or.reduceat(inside, group_starts, axis=1)
        depths.extend(int(v) for v in per_color.sum(axis=1))
    return depths
