"""Pure-Python reference kernels.

These are the loops the solvers originally inlined, extracted behind the
kernel contract of :mod:`repro.kernels` so the NumPy backend can be validated
differentially against them.  They are the ground truth: every line mirrors
the sweep described in the corresponding solver's docstring, and the exact
solvers built on them return results bit-identical to the pre-refactor
implementations.

The module is dependency-free (``math`` only) apart from the shared
geometry helpers defined here, which :mod:`repro.exact.disk2d` re-exports
for backwards compatibility.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "TWO_PI",
    "circle_cover_events",
    "interval_sweep",
    "rectangle_sweep",
    "disk_neighbor_candidates",
    "disk_sweep",
    "probe_depths",
    "colored_depth_batch",
]

TWO_PI = 2.0 * math.pi

Coords = Tuple[float, ...]


# --------------------------------------------------------------------------- #
# interval sweep (1-d)
# --------------------------------------------------------------------------- #

def interval_sweep(
    xs: Sequence[float],
    weights: Sequence[float],
    length: float,
    allow_empty: bool = True,
) -> Tuple[float, Optional[float]]:
    """Best placement ``[a, a + length]`` over weighted points on the line.

    Returns ``(best value, left endpoint)``; the left endpoint is ``None``
    when no placement improves on the empty baseline (``0`` when
    ``allow_empty``, ``-inf`` otherwise).  Supports negative weights (guard
    points of the Section 5.4 reduction): the open piece just after a
    removal breakpoint is evaluated explicitly because dropping a
    negative-weight point can *increase* the value.
    """
    additions: Dict[float, float] = defaultdict(float)
    removals: Dict[float, float] = defaultdict(float)
    for x, w in zip(xs, weights):
        additions[x - length] += w
        removals[x] += w

    coordinates = sorted(set(additions) | set(removals))
    running = 0.0
    best_value = 0.0 if allow_empty else float("-inf")
    best_left: Optional[float] = None
    for position, coord in enumerate(coordinates):
        if coord in additions:
            running += additions[coord]
        # Candidate 1: place the left endpoint exactly at this breakpoint.
        if running > best_value:
            best_value = running
            best_left = coord
        if coord in removals:
            running -= removals[coord]
            # Candidate 2: the open piece just after this breakpoint.
            if running > best_value:
                if position + 1 < len(coordinates):
                    piece_left = (coord + coordinates[position + 1]) / 2.0
                else:
                    piece_left = coord + 1.0
                best_value = running
                best_left = piece_left
    return best_value, best_left


# --------------------------------------------------------------------------- #
# rectangle sweep (2-d, Imai--Asano / Nandy--Bhattacharya)
# --------------------------------------------------------------------------- #

def rectangle_sweep(
    coords: Sequence[Coords],
    weights: Sequence[float],
    width: float,
    height: float,
) -> Tuple[float, Optional[Tuple[float, float]]]:
    """Optimal lower-left corner of a ``width x height`` rectangle.

    The classical ``O(n log n)`` sweep: candidate corners are
    ``a = x_j - width`` and ``b = y_i - height``; sweeping ``a`` left to
    right while a segment tree maintains the weighted coverage over the
    candidate ``b`` values gives the optimum.  Weights must be non-negative.
    Returns ``(best value, (a, b))`` with the corner ``None`` only for empty
    input.
    """
    from bisect import bisect_left, bisect_right

    from ..structures.segment_tree import MaxAddSegmentTree

    if not coords:
        return 0.0, None
    ys = [c[1] for c in coords]
    b_candidates = sorted({y - height for y in ys})
    tree = MaxAddSegmentTree(len(b_candidates))

    def b_range(y: float) -> Tuple[int, int]:
        lo = bisect_left(b_candidates, y - height - 1e-9)
        hi = bisect_right(b_candidates, y + 1e-9) - 1
        return lo, hi

    insert_at: Dict[float, List[int]] = defaultdict(list)
    remove_at: Dict[float, List[int]] = defaultdict(list)
    for i, (x, _y) in enumerate(coords):
        insert_at[x - width].append(i)
        remove_at[x].append(i)

    coordinates = sorted(set(insert_at) | set(remove_at))
    best_value = 0.0
    best_corner: Optional[Tuple[float, float]] = None
    for a in coordinates:
        for i in insert_at.get(a, ()):  # insertions first: the interval is closed
            lo, hi = b_range(ys[i])
            tree.add(lo, hi, weights[i])
        if a in insert_at:
            value, arg = tree.max_with_argmax()
            if value > best_value or best_corner is None:
                best_value = value
                best_corner = (a, b_candidates[arg])
        for i in remove_at.get(a, ()):
            lo, hi = b_range(ys[i])
            tree.add(lo, hi, -weights[i])

    if best_corner is None:
        best_corner = (coords[0][0] - width, coords[0][1] - height)
        best_value = weights[0]
    return best_value, best_corner


# --------------------------------------------------------------------------- #
# disk kernels (2-d angular sweep)
# --------------------------------------------------------------------------- #

def circle_cover_events(
    center: Tuple[float, float],
    radius: float,
    other: Tuple[float, float],
) -> Optional[Tuple[float, float]]:
    """Angular interval of ``circle(center, radius)`` covered by ``disk(other, radius)``.

    Returns ``(start, end)`` angles in ``[0, 2*pi)`` (the interval may wrap
    around), ``(0, 2*pi)`` when the whole circle is covered, or ``None`` when
    the two disks are too far apart to interact.
    """
    dx = other[0] - center[0]
    dy = other[1] - center[1]
    dist = math.hypot(dx, dy)
    if dist > 2.0 * radius + 1e-12:
        return None
    if dist <= 1e-12:
        return 0.0, TWO_PI
    ratio = min(1.0, dist / (2.0 * radius))
    half_width = math.acos(ratio)
    theta = math.atan2(dy, dx) % TWO_PI
    return (theta - half_width) % TWO_PI, (theta + half_width) % TWO_PI


def _split_interval(start: float, end: float) -> List[Tuple[float, float]]:
    """Split a (possibly wrapping) angular interval into non-wrapping pieces."""
    if end >= start:
        return [(start, end)]
    return [(start, TWO_PI), (0.0, end)]


def _sweep_circle(
    base_weight: float,
    intervals: List[Tuple[float, float, float]],
) -> Tuple[float, float]:
    """Max of ``base_weight + sum of interval weights covering angle`` over the circle.

    ``intervals`` holds ``(start, end, weight)`` with ``start <= end`` (already
    split at the wrap-around).  Returns ``(best value, best angle)``.
    """
    if not intervals:
        return base_weight, 0.0
    events: List[Tuple[float, int, float]] = []
    for start, end, weight in intervals:
        events.append((start, 0, weight))   # type 0: arc opens (closed endpoint)
        events.append((end, 1, weight))     # type 1: arc closes
    events.sort(key=lambda e: (e[0], e[1]))
    running = base_weight
    best_value = base_weight
    best_angle = 0.0
    for angle, kind, weight in events:
        if kind == 0:
            running += weight
            if running > best_value:
                best_value = running
                best_angle = angle
        else:
            running -= weight
    return best_value, best_angle


def disk_neighbor_candidates(
    coords: Sequence[Coords],
    radius: float,
) -> List[List[int]]:
    """Per-point candidate lists for the pairwise disk-intersection tests.

    ``result[i]`` holds the indices ``j != i`` (sorted ascending, matching
    the reference all-pairs iteration order) with
    ``dist(p_i, p_j) <= 2 * radius + 1e-12`` -- exactly the pairs whose unit
    disks interact in the angular sweep.  A uniform grid of cell side
    ``2 * radius + 1e-9`` restricts the distance tests to the 3x3 cell
    neighbourhood, so generation costs ``O(n * k)`` for ``k`` candidates per
    point instead of ``O(n^2)``.
    """
    side = 2.0 * radius + 1e-9
    cutoff = 2.0 * radius + 1e-12
    buckets: Dict[Tuple[int, int], List[int]] = {}
    cells: List[Tuple[int, int]] = []
    for i, (x, y) in enumerate(coords):
        cell = (int(math.floor(x / side)), int(math.floor(y / side)))
        cells.append(cell)
        buckets.setdefault(cell, []).append(i)

    result: List[List[int]] = []
    for i, (x, y) in enumerate(coords):
        cx, cy = cells[i]
        candidates: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                candidates.extend(buckets.get((cx + dx, cy + dy), ()))
        candidates.sort()
        kept = [
            j for j in candidates
            if j != i and math.hypot(coords[j][0] - x, coords[j][1] - y) <= cutoff
        ]
        result.append(kept)
    return result


def disk_sweep(
    coords: Sequence[Coords],
    weights: Sequence[float],
    radius: float,
) -> Tuple[float, Optional[Tuple[float, float]]]:
    """Exact weighted disk MaxRS by per-circle angular sweep.

    For every input point the boundary circle of its radius-``radius`` disk
    is swept, maintaining the weight of the other disks covering the moving
    boundary point (Chazelle--Lee).  Weights must be non-negative.  Returns
    ``(best value, best center)``.
    """
    if not coords:
        return 0.0, None
    neighbors = disk_neighbor_candidates(coords, radius)
    best_value = -math.inf
    best_center: Optional[Tuple[float, float]] = None
    for i, pivot in enumerate(coords):
        base = weights[i]
        intervals: List[Tuple[float, float, float]] = []
        for j in neighbors[i]:
            cover = circle_cover_events(pivot, radius, coords[j])
            if cover is None:
                continue
            start, end = cover
            if (start, end) == (0.0, TWO_PI):
                base += weights[j]
                continue
            for lo, hi in _split_interval(start, end):
                intervals.append((lo, hi, weights[j]))
        value, angle = _sweep_circle(base, intervals)
        if value > best_value:
            best_value = value
            best_center = (
                pivot[0] + radius * math.cos(angle),
                pivot[1] + radius * math.sin(angle),
            )
    return best_value, best_center


# --------------------------------------------------------------------------- #
# batched depth evaluation (Techniques 1 and 2)
# --------------------------------------------------------------------------- #

def probe_depths(
    probes: Sequence[Coords],
    centers: Sequence[Coords],
    weights: Sequence[float],
    radius: float = 1.0,
) -> List[float]:
    """Weighted depth of every probe: total weight of the balls containing it.

    The reference double loop behind Technique 1's probe evaluation; the
    containment test matches :func:`repro.core.depth.weighted_depth`
    (``dist^2 <= radius^2 + 1e-12``).
    """
    r2 = radius * radius + 1e-12
    depths: List[float] = []
    for probe in probes:
        total = 0.0
        for center, weight in zip(centers, weights):
            d2 = 0.0
            for a, b in zip(probe, center):
                diff = a - b
                d2 += diff * diff
            if d2 <= r2:
                total += weight
        depths.append(total)
    return depths


def colored_depth_batch(
    probes: Sequence[Coords],
    centers: Sequence[Coords],
    colors: Sequence[Hashable],
    radius: float = 1.0,
) -> List[int]:
    """Colored depth of every probe: distinct colors among the balls containing it.

    Reference loop for Technique 2's arrangement-vertex evaluation; matches
    :func:`repro.core.depth.colored_depth`.
    """
    r2 = radius * radius + 1e-12
    depths: List[int] = []
    for probe in probes:
        found = set()
        for center, color in zip(centers, colors):
            if color in found:
                continue
            d2 = 0.0
            for a, b in zip(probe, center):
                diff = a - b
                d2 += diff * diff
            if d2 <= r2:
                found.add(color)
        depths.append(len(found))
    return depths
