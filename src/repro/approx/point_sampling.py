"""Point-sampling (1 - eps)-approximation baselines [AHR+02, THCC13, AH08].

The classical route to a near-linear (1 - eps)-approximate MaxRS algorithm,
summarised in Section 1.5 of the paper, is:

1. estimate ``opt`` up to a constant factor,
2. keep each input point independently with probability
   ``p = c * log(n) / (eps^2 * opt)``,
3. run an *exact* MaxRS algorithm on the sample and return its placement.

A Chernoff/union-bound argument over the (polynomially many) combinatorially
distinct placements shows that, with high probability, the sampled depth of
every placement is within a (1 +- eps) factor of ``p`` times its true depth,
so the placement that is optimal for the sample is (1 - Theta(eps))-optimal
for the full input.  The running time is dominated by the exact solve on the
sample, which is where the ``log^Theta(d) n`` factor of the prior approach
comes from for d-balls (exact d-ball MaxRS costs ``O(n^d)`` on ``n`` sample
points) -- the comparison Technique 1 is designed to win.

The functions here implement that scheme for unit disks in the plane (exact
solve: Chazelle--Lee sweep) and axis-aligned rectangles (exact solve:
Imai--Asano / Nandy--Bhattacharya sweep), plus the doubling-based ``opt``
estimation the scheme needs when no estimate is supplied.

Weighted inputs are supported by sampling points with the same probability
``p`` and keeping their weights; the returned ``value`` is always re-measured
against the *full* input at the reported placement, so it is a true coverage
value, never a scaled estimate.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core._inputs import normalize_weighted
from ..core.depth import weighted_depth
from ..core.geometry import point_in_box
from ..core.result import MaxRSResult
from ..core.sampling import default_rng
from ..exact.disk2d import maxrs_disk_exact
from ..exact.rectangle2d import maxrs_rectangle_exact

__all__ = [
    "sample_probability",
    "estimate_opt_disk_by_doubling",
    "maxrs_disk_sampled",
    "maxrs_rectangle_sampled",
]


def sample_probability(
    n: int,
    opt_estimate: float,
    epsilon: float,
    constant: float = 4.0,
) -> float:
    """The Bernoulli keep-probability ``min(1, c * log(n) / (eps^2 * opt))``.

    Parameters
    ----------
    n:
        Number of input points (used inside the logarithm; the union bound is
        over polynomially many candidate placements).
    opt_estimate:
        A lower bound on the optimal coverage, typically within a constant
        factor of ``opt``.  Smaller estimates give larger (safer) samples.
    epsilon:
        Target approximation slack, ``0 < epsilon < 1``.
    constant:
        The constant ``c`` of the scheme.  The default of 4 is deliberately
        conservative for the moderate ``n`` used in the experiments.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must lie strictly between 0 and 1, got %r" % epsilon)
    if n <= 0:
        return 1.0
    if opt_estimate <= 0:
        return 1.0
    numerator = constant * math.log(max(n, 2))
    return min(1.0, numerator / (epsilon * epsilon * opt_estimate))


def _resample_value(
    coords: Sequence[Tuple[float, ...]],
    weights: Sequence[float],
    center: Tuple[float, ...],
    radius: float,
) -> float:
    """True weighted coverage of the full input by the ball at ``center``."""
    return weighted_depth(center, coords, weights, radius)


def _rectangle_value(
    coords: Sequence[Tuple[float, ...]],
    weights: Sequence[float],
    lower: Tuple[float, float],
    width: float,
    height: float,
) -> float:
    upper = (lower[0] + width, lower[1] + height)
    total = 0.0
    for coord, weight in zip(coords, weights):
        if point_in_box(coord, lower, upper):
            total += weight
    return total


def estimate_opt_disk_by_doubling(
    points: Sequence,
    radius: float,
    *,
    weights: Optional[Sequence[float]] = None,
    epsilon: float = 0.5,
    seed=None,
    max_rounds: int = 32,
) -> float:
    """Estimate disk-MaxRS ``opt`` within a constant factor by doubling.

    Starting from the optimistic guess ``opt = total_weight`` the routine
    repeatedly halves the guess, draws a sample with the matching
    probability, solves the sample exactly and re-measures the reported
    placement against the full input.  The first measured value that certifies
    at least half of the current guess stops the loop.  Because the measured
    value is a *true* coverage it is always a valid lower bound on ``opt``.

    This is the estimation loop the prior (1 - eps) schemes rely on; the
    paper's Technique 1 replaces the whole machinery with
    :func:`repro.core.technique1.estimate_opt_ball`.
    """
    coords, weight_list, dim = normalize_weighted(points, weights)
    if not coords:
        return 0.0
    if dim != 2:
        raise ValueError("the doubling estimator uses the exact planar disk sweep; dim must be 2")
    rng = default_rng(seed)
    total = sum(weight_list)
    if total <= 0:
        return 0.0
    guess = total
    best_certified = max(weight_list)
    n = len(coords)
    for _ in range(max_rounds):
        probability = sample_probability(n, guess, epsilon)
        kept = rng.random(n) < probability
        sample_coords = [c for c, keep in zip(coords, kept) if keep]
        sample_weights = [w for w, keep in zip(weight_list, kept) if keep]
        if sample_coords:
            placement = maxrs_disk_exact(sample_coords, radius=radius, weights=sample_weights)
            if placement.center is not None:
                measured = _resample_value(coords, weight_list, placement.center, radius)
                best_certified = max(best_certified, measured)
        if best_certified >= guess / 2.0 or guess <= max(weight_list):
            break
        guess /= 2.0
    return best_certified


def maxrs_disk_sampled(
    points: Sequence,
    radius: float,
    epsilon: float,
    *,
    weights: Optional[Sequence[float]] = None,
    opt_estimate: Optional[float] = None,
    seed=None,
    constant: float = 4.0,
) -> MaxRSResult:
    """(1 - eps)-approximate disk MaxRS by point sampling + exact sweep.

    This is the prior-work baseline the paper compares Technique 1 against
    (Section 1.5): the approximation factor is the stronger ``1 - eps`` but
    the exact solve on the sample is quadratic in the sample size, so the
    epsilon- and log-factors are much heavier than Technique 1's.

    Parameters
    ----------
    points, weights:
        The weighted input point set (any form accepted by the public API).
    radius:
        Radius of the query ball; the problem is scaled so this is typically 1.
    epsilon:
        Approximation slack in ``(0, 1)``.
    opt_estimate:
        Optional lower bound on ``opt``; when omitted the doubling estimator
        is run first (adding its own sampling rounds to the cost).
    seed:
        Seed for the Bernoulli sampling.
    constant:
        Oversampling constant ``c`` of the scheme.

    Returns
    -------
    MaxRSResult
        ``exact=False``; ``meta`` records the sample size, keep probability
        and the opt estimate that was used.
    """
    coords, weight_list, dim = normalize_weighted(points, weights)
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="ball", exact=False,
                           meta={"epsilon": epsilon, "sample_size": 0})
    if dim != 2:
        raise ValueError(
            "the point-sampling baseline relies on the exact planar disk sweep; "
            "dim must be 2 (got %d)" % dim
        )
    rng = default_rng(seed)
    if opt_estimate is None:
        opt_estimate = estimate_opt_disk_by_doubling(
            coords, radius, weights=weight_list, epsilon=0.5, seed=rng
        )
    probability = sample_probability(len(coords), opt_estimate, epsilon, constant)
    kept = rng.random(len(coords)) < probability
    sample_coords = [c for c, keep in zip(coords, kept) if keep]
    sample_weights = [w for w, keep in zip(weight_list, kept) if keep]

    if not sample_coords:
        # Degenerate sample: fall back to the heaviest single point.
        best_index = max(range(len(coords)), key=lambda i: weight_list[i])
        center = coords[best_index]
        value = _resample_value(coords, weight_list, center, radius)
        return MaxRSResult(value=value, center=center, shape="ball", exact=False,
                           meta={"epsilon": epsilon, "sample_size": 0,
                                 "probability": probability, "opt_estimate": opt_estimate})

    placement = maxrs_disk_exact(sample_coords, radius=radius, weights=sample_weights)
    center = placement.center if placement.center is not None else sample_coords[0]
    value = _resample_value(coords, weight_list, center, radius)
    return MaxRSResult(
        value=value,
        center=center,
        shape="ball",
        exact=False,
        meta={
            "epsilon": epsilon,
            "sample_size": len(sample_coords),
            "probability": probability,
            "opt_estimate": opt_estimate,
            "method": "point-sampling",
        },
    )


def maxrs_rectangle_sampled(
    points: Sequence,
    width: float,
    height: float,
    epsilon: float,
    *,
    weights: Optional[Sequence[float]] = None,
    opt_estimate: Optional[float] = None,
    seed=None,
    constant: float = 4.0,
) -> MaxRSResult:
    """(1 - eps)-approximate rectangle MaxRS by point sampling + exact sweep.

    The exact rectangle sweep is already ``O(n log n)``, so this baseline is
    interesting mainly for very large inputs or for the batched setting where
    the same sample can serve many query sizes.  It mirrors
    :func:`maxrs_disk_sampled` and is used by experiment E11 to show that the
    sampling scheme's approximation behaviour is range-shape agnostic.
    """
    coords, weight_list, dim = normalize_weighted(points, weights)
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="rectangle", exact=False,
                           meta={"epsilon": epsilon, "sample_size": 0})
    if dim != 2:
        raise ValueError("rectangle sampling baseline requires planar points, got dim=%d" % dim)
    if width <= 0 or height <= 0:
        raise ValueError("rectangle width and height must be positive")
    rng = default_rng(seed)
    if opt_estimate is None:
        # The exact sweep is cheap; a coarse estimate from a half-rate sample
        # is enough to size the final sample.
        half = rng.random(len(coords)) < 0.5
        est_coords = [c for c, keep in zip(coords, half) if keep] or coords
        est_weights = [w for w, keep in zip(weight_list, half) if keep] or weight_list
        est_placement = maxrs_rectangle_exact(est_coords, width=width, height=height,
                                              weights=est_weights)
        if est_placement.center is not None:
            opt_estimate = max(
                _rectangle_value(coords, weight_list, est_placement.center, width, height),
                max(weight_list),
            )
        else:
            opt_estimate = max(weight_list)
    probability = sample_probability(len(coords), opt_estimate, epsilon, constant)
    kept = rng.random(len(coords)) < probability
    sample_coords = [c for c, keep in zip(coords, kept) if keep]
    sample_weights = [w for w, keep in zip(weight_list, kept) if keep]

    if not sample_coords:
        best_index = max(range(len(coords)), key=lambda i: weight_list[i])
        lower = (coords[best_index][0] - width / 2.0, coords[best_index][1] - height / 2.0)
        value = _rectangle_value(coords, weight_list, lower, width, height)
        return MaxRSResult(value=value, center=lower, shape="rectangle", exact=False,
                           meta={"epsilon": epsilon, "sample_size": 0,
                                 "probability": probability, "opt_estimate": opt_estimate})

    placement = maxrs_rectangle_exact(sample_coords, width=width, height=height,
                                      weights=sample_weights)
    lower = placement.center if placement.center is not None else (
        sample_coords[0][0] - width / 2.0, sample_coords[0][1] - height / 2.0)
    value = _rectangle_value(coords, weight_list, lower, width, height)
    return MaxRSResult(
        value=value,
        center=lower,
        shape="rectangle",
        exact=False,
        meta={
            "epsilon": epsilon,
            "sample_size": len(sample_coords),
            "probability": probability,
            "opt_estimate": opt_estimate,
            "method": "point-sampling",
        },
    )
