"""Prior-work approximation baselines for MaxRS.

Section 1 and Section 1.5 of the paper position Technique 1 against the
classical approach of *sampling the input objects* and running an exact
algorithm on the sample [AHR+02, THCC13, AH08].  The modules here implement
that family of baselines so that the paper's comparison ("previous
constructions... have a running time of ``O_eps(n log^Theta(d) n)``",
Section 1.1) can be reproduced empirically:

* :mod:`repro.approx.point_sampling` -- the (1 - eps)-approximation obtained
  by Bernoulli sampling of the input points followed by an exact solve on the
  sample, for disks and for axis-aligned rectangles, together with the
  doubling-based estimation of ``opt`` that the scheme needs.
* :mod:`repro.approx.grid_decomposition` -- the shifted-grid decomposition
  baseline (Hochbaum--Maass style): partition the plane into large grid
  cells, solve each cell exactly, and take the best answer over a constant
  number of grid shifts.  The answer is exact; the point of the baseline is
  that its running time degrades to the exact algorithm's on concentrated
  inputs, which is precisely the regime where Technique 1 keeps its
  near-linear bound.
"""

from .point_sampling import (
    estimate_opt_disk_by_doubling,
    maxrs_disk_sampled,
    maxrs_rectangle_sampled,
    sample_probability,
)
from .grid_decomposition import (
    maxrs_disk_grid_decomposition,
    maxrs_rectangle_grid_decomposition,
)

__all__ = [
    "sample_probability",
    "estimate_opt_disk_by_doubling",
    "maxrs_disk_sampled",
    "maxrs_rectangle_sampled",
    "maxrs_disk_grid_decomposition",
    "maxrs_rectangle_grid_decomposition",
]
