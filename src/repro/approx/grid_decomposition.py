"""Shifted-grid decomposition baselines (Hochbaum--Maass style shifting).

Both of the paper's general techniques lean on shifted grids (Lemma 2.1).
The classical use of grid shifting for geometric placement problems predates
them: partition the plane into large cells, solve every cell *exactly* on the
points it contains, and repeat for a small number of grid shifts so that at
least one shift does not cut the optimal range.

For a query range of diameter ``D`` and cells of side ``k * D``, shifting the
grid by ``D`` in each axis produces ``k`` shifts per axis; the optimal range
crosses a vertical (resp. horizontal) grid line in at most one of them, so for
``k >= 2`` some shift leaves the optimal range inside a single cell and the
best per-cell answer over all shifts equals the true optimum.  The procedure
is therefore *exact*; what varies is the running time, which interpolates
between near-linear (points spread over many cells) and the exact algorithm's
cost (all points in one cell).  Experiment E11 uses it as the
"decomposition" baseline against which Technique 1's unconditional
near-linear bound is contrasted.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core._inputs import normalize_weighted
from ..core.result import MaxRSResult
from ..exact.disk2d import maxrs_disk_exact
from ..exact.rectangle2d import maxrs_rectangle_exact

__all__ = [
    "maxrs_disk_grid_decomposition",
    "maxrs_rectangle_grid_decomposition",
]

Coords = Tuple[float, ...]


def _partition_by_cell(
    coords: Sequence[Coords],
    weights: Sequence[float],
    cell_side_x: float,
    cell_side_y: float,
    shift_x: float,
    shift_y: float,
) -> Dict[Tuple[int, int], Tuple[List[Coords], List[float]]]:
    """Group planar points into cells of the shifted grid."""
    buckets: Dict[Tuple[int, int], Tuple[List[Coords], List[float]]] = defaultdict(
        lambda: ([], [])
    )
    for coord, weight in zip(coords, weights):
        cell = (
            int(math.floor((coord[0] - shift_x) / cell_side_x)),
            int(math.floor((coord[1] - shift_y) / cell_side_y)),
        )
        bucket = buckets[cell]
        bucket[0].append(coord)
        bucket[1].append(weight)
    return buckets


def _validate_common(epsilon_like: float, name: str) -> None:
    if epsilon_like <= 0:
        raise ValueError("%s must be positive, got %r" % (name, epsilon_like))


def maxrs_disk_grid_decomposition(
    points: Sequence,
    radius: float = 1.0,
    *,
    weights: Optional[Sequence[float]] = None,
    shifts: int = 2,
) -> MaxRSResult:
    """Exact disk MaxRS via shifted-grid decomposition.

    Parameters
    ----------
    points, weights:
        The weighted planar point set.
    radius:
        Query disk radius.
    shifts:
        The shifting parameter ``k >= 2``: cells have side ``2 * radius * k``
        and the grid is tried at ``k^2`` shift combinations.  Larger ``k``
        means fewer, larger cells (fewer shifts pay off only when points are
        extremely spread out).

    Returns
    -------
    MaxRSResult
        ``exact=True``.  ``meta`` records, for the winning shift, how many
        cells were solved and the largest per-cell population -- the quantity
        that controls the running time.
    """
    _validate_common(radius, "radius")
    if shifts < 2:
        raise ValueError("the shifting argument needs at least 2 shifts per axis, got %d" % shifts)
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if any(w < 0 for w in weight_list):
        raise ValueError("grid-decomposition disk MaxRS requires non-negative weights")
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="ball", exact=True,
                           meta={"radius": radius, "n": 0, "shifts": shifts})
    if dim != 2:
        raise ValueError("grid decomposition is implemented for planar inputs, got dim=%d" % dim)

    diameter = 2.0 * radius
    cell_side = diameter * shifts
    best_value = -math.inf
    best_center: Optional[Coords] = None
    cells_solved = 0
    largest_cell = 0

    for sx in range(shifts):
        for sy in range(shifts):
            shift_x = sx * diameter
            shift_y = sy * diameter
            buckets = _partition_by_cell(coords, weight_list, cell_side, cell_side,
                                         shift_x, shift_y)
            for cell_coords, cell_weights in buckets.values():
                cells_solved += 1
                largest_cell = max(largest_cell, len(cell_coords))
                local = maxrs_disk_exact(cell_coords, radius=radius, weights=cell_weights)
                if local.center is not None and local.value > best_value:
                    best_value = local.value
                    best_center = local.center

    return MaxRSResult(
        value=best_value,
        center=best_center,
        shape="ball",
        exact=True,
        meta={
            "radius": radius,
            "n": len(coords),
            "shifts": shifts,
            "cells_solved": cells_solved,
            "largest_cell": largest_cell,
            "method": "grid-decomposition",
        },
    )


def maxrs_rectangle_grid_decomposition(
    points: Sequence,
    width: float,
    height: float,
    *,
    weights: Optional[Sequence[float]] = None,
    shifts: int = 2,
) -> MaxRSResult:
    """Exact rectangle MaxRS via shifted-grid decomposition.

    Mirrors :func:`maxrs_disk_grid_decomposition` for a ``width x height``
    axis-aligned query rectangle: cells have side ``shifts * width`` by
    ``shifts * height`` and the grid is shifted by ``width`` / ``height``.
    Because the underlying exact sweep is already ``O(n log n)`` the value of
    this baseline is mostly pedagogical (it demonstrates that the shifting
    argument is shape-agnostic) and as a sanity cross-check of the sweep on
    partitioned inputs.
    """
    if width <= 0 or height <= 0:
        raise ValueError("rectangle side lengths must be positive")
    if shifts < 2:
        raise ValueError("the shifting argument needs at least 2 shifts per axis, got %d" % shifts)
    coords, weight_list, dim = normalize_weighted(points, weights, require_positive=False)
    if any(w < 0 for w in weight_list):
        raise ValueError("grid-decomposition rectangle MaxRS requires non-negative weights")
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="rectangle", exact=True,
                           meta={"width": width, "height": height, "n": 0, "shifts": shifts})
    if dim != 2:
        raise ValueError("grid decomposition is implemented for planar inputs, got dim=%d" % dim)

    cell_side_x = width * shifts
    cell_side_y = height * shifts
    best_value = -math.inf
    best_corner: Optional[Coords] = None
    cells_solved = 0
    largest_cell = 0

    for sx in range(shifts):
        for sy in range(shifts):
            shift_x = sx * width
            shift_y = sy * height
            buckets = _partition_by_cell(coords, weight_list, cell_side_x, cell_side_y,
                                         shift_x, shift_y)
            for cell_coords, cell_weights in buckets.values():
                cells_solved += 1
                largest_cell = max(largest_cell, len(cell_coords))
                local = maxrs_rectangle_exact(cell_coords, width=width, height=height,
                                              weights=cell_weights)
                if local.center is not None and local.value > best_value:
                    best_value = local.value
                    best_corner = local.center

    return MaxRSResult(
        value=best_value,
        center=best_corner,
        shape="rectangle",
        exact=True,
        meta={
            "width": width,
            "height": height,
            "n": len(coords),
            "shifts": shifts,
            "cells_solved": cells_solved,
            "largest_cell": largest_cell,
            "method": "grid-decomposition",
        },
    )
