"""Union of axis-aligned rectangles, decomposed into disjoint pieces.

Technique 2 (Section 4) starts by replacing each color class by the *union*
of its objects, so that colored depth becomes uncolored depth over the union
regions.  For unit disks the union boundary is a set of circular arcs
(:mod:`repro.arrangement.union`); for axis-aligned boxes -- the extension this
package carries out -- the union is a rectilinear region, which we represent
as a set of pairwise-disjoint axis-aligned rectangles produced by a
vertical-slab sweep.

A rectangle is the tuple ``(xlo, ylo, xhi, yhi)`` of its closed extent.  The
decomposition uses half-open x-slabs ``[x_i, x_{i+1})`` internally, which is
exactly what the depth sweep of :mod:`repro.boxes.sweep` needs: at any
x-coordinate at most one slab of a given color is active, and within a slab
the pieces of one color are disjoint, so adding ``+1`` per piece never
double-counts a color.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "Rect",
    "rectangles_union_pieces",
    "union_area",
    "point_in_union",
]

Rect = Tuple[float, float, float, float]


def _validate_rect(rect: Sequence[float]) -> Rect:
    if len(rect) != 4:
        raise ValueError("a rectangle is (xlo, ylo, xhi, yhi); got %r" % (rect,))
    xlo, ylo, xhi, yhi = (float(v) for v in rect)
    if xlo > xhi or ylo > yhi:
        raise ValueError("rectangle has inverted extent: %r" % (rect,))
    return (xlo, ylo, xhi, yhi)


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge closed, possibly overlapping intervals into maximal disjoint ones."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


def rectangles_union_pieces(rects: Iterable[Sequence[float]]) -> List[Rect]:
    """Decompose the union of rectangles into disjoint axis-aligned pieces.

    The sweep walks the distinct x-coordinates of the input; inside each
    half-open slab ``[x_i, x_{i+1})`` the covered y-set is the merged union of
    the y-extents of the rectangles whose x-extent covers the whole slab.
    Pieces of width zero (from degenerate rectangles) are dropped, but
    zero-height pieces are kept so that degenerate but non-empty rectangles
    still contribute to membership tests.

    Returns pieces ``(xlo, ylo, xhi, yhi)``; distinct pieces overlap at most
    on shared boundary segments, never in their interiors.
    """
    rect_list = [_validate_rect(r) for r in rects]
    if not rect_list:
        return []
    xs = sorted({r[0] for r in rect_list} | {r[2] for r in rect_list})
    pieces: List[Rect] = []
    for x_left, x_right in zip(xs, xs[1:]):
        if x_right <= x_left:
            continue
        active = [
            (ylo, yhi)
            for (xlo, ylo, xhi, yhi) in rect_list
            if xlo <= x_left and x_right <= xhi
        ]
        for ylo, yhi in _merge_intervals(active):
            pieces.append((x_left, ylo, x_right, yhi))
    if len(xs) == 1:
        # All rectangles are degenerate vertical segments at the same x.
        x = xs[0]
        for ylo, yhi in _merge_intervals([(r[1], r[3]) for r in rect_list]):
            pieces.append((x, ylo, x, yhi))
    return pieces


def union_area(rects: Iterable[Sequence[float]]) -> float:
    """Area of the union of the rectangles (via the disjoint decomposition)."""
    return sum(
        (xhi - xlo) * (yhi - ylo)
        for xlo, ylo, xhi, yhi in rectangles_union_pieces(rects)
    )


def point_in_union(point: Sequence[float], rects: Iterable[Sequence[float]]) -> bool:
    """Whether ``point`` lies in the union of the closed rectangles."""
    x, y = float(point[0]), float(point[1])
    for rect in rects:
        xlo, ylo, xhi, yhi = _validate_rect(rect)
        if xlo <= x <= xhi and ylo <= y <= yhi:
            return True
    return False
