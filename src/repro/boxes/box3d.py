"""Exact colored MaxRS for axis-aligned boxes in R^3.

The colored (type-2 / group-by) objective counts *distinct colors*, not
total weight.  The open-problem extension of Section 7 asks for colored
boxes beyond the plane; as with the uncolored case (`repro.exact.box3d`),
the robust baseline is a reduction to the planar solver rather than the
asymptotically fast machinery:

an optimal box can be shifted until its top z-face passes through an input
point, so it suffices to try the ``n`` candidate bottom faces
``c = z_i - wz`` and solve the induced *planar colored* problem --
:func:`repro.exact.colored_rectangle.colored_maxrs_rectangle_exact` -- on
the points whose z-coordinate falls inside the slab ``[c, c + wz]``.
Distinct-color counts only shrink when restricting to a slab, so the number
of distinct colors in a slab is a sound upper bound used for pruning.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from ..core._inputs import normalize_colored
from ..core.result import MaxRSResult
from ..exact.colored_rectangle import colored_maxrs_rectangle_exact

__all__ = ["colored_maxrs_box3d_exact"]

_EPS = 1e-9


def colored_maxrs_box3d_exact(
    points: Sequence,
    side_lengths: Sequence[float],
    *,
    colors: Optional[Sequence] = None,
) -> MaxRSResult:
    """Optimal colored (distinct-count) placement of a box in R^3 (exact).

    Parameters
    ----------
    points:
        Points in R^3 (coordinate triples or ``ColoredPoint``).
    side_lengths:
        The box dimensions ``(wx, wy, wz)``; all must be positive.
    colors:
        Per-point color labels (defaults to the points' inherent colors).

    Returns
    -------
    MaxRSResult
        ``value`` is the maximum number of distinct colors a box of the
        given dimensions can cover; ``center`` holds the lower corner
        ``(a, b, c)`` of an optimal box.
    """
    side_lengths = tuple(float(s) for s in side_lengths)
    if len(side_lengths) != 3 or any(s <= 0 for s in side_lengths):
        raise ValueError(
            "side_lengths must be three positive numbers, got %r" % (side_lengths,))
    wx, wy, wz = side_lengths
    coords, color_list, dim = normalize_colored(points, colors)
    if coords and dim != 3:
        raise ValueError(
            "colored_maxrs_box3d_exact expects points in R^3, got dim=%d" % dim)
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="box", exact=True,
                           meta={"side_lengths": side_lengths, "n": 0, "colors": 0})

    zs = [c[2] for c in coords]
    best_value = -math.inf
    best_corner: Optional[Tuple[float, float, float]] = None
    for anchor_z in sorted(set(zs)):
        c = anchor_z - wz
        slab_indices = [i for i, z in enumerate(zs) if c - _EPS <= z <= anchor_z + _EPS]
        if not slab_indices:
            continue
        # Restricting to a slab can only lose colors, so the distinct-color
        # count of the slab upper-bounds every box anchored in it.
        slab_colors = [color_list[i] for i in slab_indices]
        if len(set(slab_colors)) <= best_value:
            continue
        slab_points = [(coords[i][0], coords[i][1]) for i in slab_indices]
        planar = colored_maxrs_rectangle_exact(slab_points, width=wx, height=wy,
                                               colors=slab_colors)
        if planar.center is not None and planar.value > best_value:
            best_value = planar.value
            best_corner = (planar.center[0], planar.center[1], c)

    return MaxRSResult(
        value=best_value,
        center=best_corner,
        shape="box",
        exact=True,
        meta={
            "side_lengths": side_lengths,
            "n": len(coords),
            "colors": len(set(color_list)),
            "method": "z-slab sweep + planar colored sweep",
        },
    )
