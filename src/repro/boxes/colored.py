"""Colored MaxRS for axis-aligned boxes: output-sensitivity and color sampling.

This module answers the paper's first open problem (Section 7) in the plane:
it transfers the two phases of Technique 2 from unit disks to ``width x
height`` axis-aligned query rectangles.

Dual formulation
----------------
A query rectangle with lower-left corner ``(a, b)`` covers the point ``p``
exactly when ``(a, b)`` lies in the *dual box* ``[p_x - width, p_x] x
[p_y - height, p_y]``.  Colored box MaxRS is therefore the problem of finding
a point of maximum colored depth among ``n`` equal-size colored boxes, which
:func:`repro.boxes.sweep.max_colored_depth_boxes` solves by sweeping the
per-color union pieces.

Output sensitivity (Theorem 4.6 analogue)
-----------------------------------------
Impose a grid whose cells have exactly the query dimensions.  Two facts
replace Lemma 4.3:

* every dual box that intersects a cell contains one of the cell's four
  corners (two overlapping intervals of equal length always share an
  endpoint of one of them, in each axis independently); hence
* the number of distinct colors whose dual boxes intersect any one cell is
  at most ``4 * opt`` (each corner has colored depth at most ``opt``), and no
  shifting of the grid is needed because the optimal point already lies in
  some cell together with all the boxes that cover it.

Running the sweep separately inside every non-empty cell therefore touches
each box at most four times and each sub-problem involves at most
``4 * opt`` colors, the output-sensitive behaviour Theorem 4.6 establishes
for disks.

Color sampling (Theorem 1.6 analogue)
-------------------------------------
The same corner argument yields a constant-factor estimate of ``opt``: every
color covering the optimal point also covers one of the four corners of the
optimal point's cell, so the best grid vertex has colored depth in
``[opt / 4, opt]``.  With that estimate, each color is kept independently
with probability ``lambda = c1 * log(n) / (eps^2 * opt')`` and the
output-sensitive solver runs on the sampled colors; Lemma 4.8's Chernoff
argument is unchanged because it never uses the shape of the ranges.  The
reported placement is re-measured against the *full* input, so the returned
value is always a true colored coverage.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core._inputs import normalize_colored
from ..core.result import MaxRSResult
from ..core.sampling import default_rng
from .sweep import max_colored_depth_boxes

__all__ = [
    "colored_maxrs_box_arrangement",
    "colored_maxrs_box_output_sensitive",
    "estimate_colored_opt_box",
    "colored_maxrs_box",
]

Coords = Tuple[float, ...]


def _dual_boxes(
    coords: Sequence[Coords], width: float, height: float
) -> List[Tuple[float, float, float, float]]:
    """Dual box of every point: placements whose rectangle covers the point."""
    return [(x - width, y - height, x, y) for x, y in coords]


def _validate(width: float, height: float, dim: int) -> None:
    if width <= 0 or height <= 0:
        raise ValueError("rectangle side lengths must be positive")
    if dim and dim != 2:
        raise ValueError("colored box MaxRS is implemented in the plane, got dim=%d" % dim)


def _colored_coverage(
    corner: Tuple[float, float],
    coords: Sequence[Coords],
    colors: Sequence[Hashable],
    width: float,
    height: float,
) -> int:
    """True number of distinct colors covered by the rectangle at ``corner``."""
    a, b = corner
    covered: Set[Hashable] = set()
    for (x, y), color in zip(coords, colors):
        if color in covered:
            continue
        if a - 1e-12 <= x <= a + width + 1e-12 and b - 1e-12 <= y <= b + height + 1e-12:
            covered.add(color)
    return len(covered)


def colored_maxrs_box_arrangement(
    points: Sequence,
    width: float,
    height: float,
    *,
    colors: Optional[Sequence[Hashable]] = None,
) -> MaxRSResult:
    """Exact colored box MaxRS via the union-piece sweep (Lemma 4.2 analogue).

    ``center`` of the result is the lower-left corner of an optimal query
    rectangle.  The running time is governed by the total number of union
    pieces over all colors (near-linear for well-separated colors, quadratic
    in the worst case), which is the quantity the output-sensitive solver
    below keeps proportional to ``opt``.
    """
    coords, color_list, dim = normalize_colored(points, colors)
    _validate(width, height, dim)
    if not coords:
        return MaxRSResult(value=0, center=None, shape="rectangle", exact=True,
                           meta={"width": width, "height": height, "n": 0})
    depth, point = max_colored_depth_boxes(_dual_boxes(coords, width, height), color_list)
    if point is None:
        point = (coords[0][0] - width, coords[0][1] - height)
        depth = 1
    value = _colored_coverage(point, coords, color_list, width, height)
    return MaxRSResult(
        value=max(depth, value),
        center=point,
        shape="rectangle",
        exact=True,
        meta={
            "width": width,
            "height": height,
            "n": len(coords),
            "colors": len(set(color_list)),
            "method": "box-arrangement",
        },
    )


def colored_maxrs_box_output_sensitive(
    points: Sequence,
    width: float,
    height: float,
    *,
    colors: Optional[Sequence[Hashable]] = None,
) -> MaxRSResult:
    """Output-sensitive exact colored box MaxRS (Theorem 4.6 analogue).

    Partitions the dual plane into cells of the query dimensions, runs the
    union-piece sweep inside every non-empty cell (each cell sees at most
    ``4 * opt`` distinct colors), and returns the best placement found.
    """
    coords, color_list, dim = normalize_colored(points, colors)
    _validate(width, height, dim)
    if not coords:
        return MaxRSResult(value=0, center=None, shape="rectangle", exact=True,
                           meta={"width": width, "height": height, "n": 0})

    duals = _dual_boxes(coords, width, height)
    # Assign every dual box to the cells it intersects (at most four).
    cells: Dict[Tuple[int, int], Tuple[List[Tuple[float, float, float, float]], List[Hashable]]] = (
        defaultdict(lambda: ([], []))
    )
    for (xlo, ylo, xhi, yhi), color in zip(duals, color_list):
        cx_lo = int(math.floor(xlo / width))
        cx_hi = int(math.floor(xhi / width))
        cy_lo = int(math.floor(ylo / height))
        cy_hi = int(math.floor(yhi / height))
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells[(cx, cy)]
                bucket[0].append((xlo, ylo, xhi, yhi))
                bucket[1].append(color)

    best_depth = 0
    best_point: Optional[Tuple[float, float]] = None
    max_cell_colors = 0
    for (cx, cy), (cell_rects, cell_colors) in cells.items():
        max_cell_colors = max(max_cell_colors, len(set(cell_colors)))
        # Clip each dual box to the cell so the per-cell sweep stays local.
        x_cell_lo, x_cell_hi = cx * width, (cx + 1) * width
        y_cell_lo, y_cell_hi = cy * height, (cy + 1) * height
        clipped = []
        clipped_colors = []
        for (xlo, ylo, xhi, yhi), color in zip(cell_rects, cell_colors):
            nxlo, nxhi = max(xlo, x_cell_lo), min(xhi, x_cell_hi)
            nylo, nyhi = max(ylo, y_cell_lo), min(yhi, y_cell_hi)
            if nxlo <= nxhi and nylo <= nyhi:
                clipped.append((nxlo, nylo, nxhi, nyhi))
                clipped_colors.append(color)
        if not clipped:
            continue
        depth, point = max_colored_depth_boxes(clipped, clipped_colors)
        if depth > best_depth and point is not None:
            best_depth = depth
            best_point = point

    if best_point is None:
        best_point = (coords[0][0] - width, coords[0][1] - height)
    value = _colored_coverage(best_point, coords, color_list, width, height)
    return MaxRSResult(
        value=max(best_depth, value),
        center=best_point,
        shape="rectangle",
        exact=True,
        meta={
            "width": width,
            "height": height,
            "n": len(coords),
            "colors": len(set(color_list)),
            "cells": len(cells),
            "max_cell_colors": max_cell_colors,
            "method": "box-output-sensitive",
        },
    )


def estimate_colored_opt_box(
    points: Sequence,
    width: float,
    height: float,
    *,
    colors: Optional[Sequence[Hashable]] = None,
) -> int:
    """Constant-factor estimate of colored box MaxRS ``opt`` via grid corners.

    Every dual box contains at least one vertex of the grid whose cells have
    the query dimensions, and every color covering the optimal point covers
    one of the four corners of the optimal point's cell.  The maximum colored
    depth over grid vertices is therefore in ``[opt / 4, opt]``; it is
    computed in one pass over the input with per-vertex color sets.
    """
    coords, color_list, dim = normalize_colored(points, colors)
    _validate(width, height, dim)
    if not coords:
        return 0
    vertex_colors: Dict[Tuple[int, int], Set[Hashable]] = defaultdict(set)
    for (x, y), color in zip(coords, color_list):
        xlo, xhi = x - width, x
        ylo, yhi = y - height, y
        gx_lo = int(math.ceil(xlo / width - 1e-12))
        gx_hi = int(math.floor(xhi / width + 1e-12))
        gy_lo = int(math.ceil(ylo / height - 1e-12))
        gy_hi = int(math.floor(yhi / height + 1e-12))
        for gx in range(gx_lo, gx_hi + 1):
            for gy in range(gy_lo, gy_hi + 1):
                vertex_colors[(gx, gy)].add(color)
    if not vertex_colors:
        return 1
    return max(len(colors_at_vertex) for colors_at_vertex in vertex_colors.values())


def colored_maxrs_box(
    points: Sequence,
    width: float,
    height: float,
    epsilon: float,
    *,
    colors: Optional[Sequence[Hashable]] = None,
    seed=None,
    constant: float = 4.0,
) -> MaxRSResult:
    """(1 - eps)-approximate colored box MaxRS via color sampling (Thm 1.6 analogue).

    Parameters mirror :func:`repro.core.technique2.colored_maxrs_disk`.  The
    two branches of the final algorithm of Section 4.4 are preserved: when
    the estimated ``opt`` is below ``c1 * eps^-2 * log n`` the exact
    output-sensitive solver runs on the full input (``meta["branch"] ==
    "exact"``); otherwise colors are sampled with probability
    ``c1 * log(n) / (eps^2 * opt')`` and the output-sensitive solver runs on
    the sample (``meta["branch"] == "sampled"``).  The returned value is the
    true colored coverage of the reported placement.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must lie strictly between 0 and 1, got %r" % epsilon)
    coords, color_list, dim = normalize_colored(points, colors)
    _validate(width, height, dim)
    if not coords:
        return MaxRSResult(value=0, center=None, shape="rectangle", exact=False,
                           meta={"width": width, "height": height, "n": 0,
                                 "epsilon": epsilon, "branch": "empty"})

    n = len(coords)
    opt_estimate = max(1, estimate_colored_opt_box(coords, width, height, colors=color_list))
    threshold = constant * (epsilon ** -2) * math.log(max(n, 2))

    if opt_estimate <= threshold:
        exact = colored_maxrs_box_output_sensitive(coords, width, height, colors=color_list)
        meta = dict(exact.meta)
        meta.update({"branch": "exact", "epsilon": epsilon, "opt_estimate": opt_estimate})
        return MaxRSResult(value=exact.value, center=exact.center, shape="rectangle",
                           exact=False, meta=meta)

    rng = default_rng(seed)
    probability = min(1.0, constant * math.log(max(n, 2)) / (epsilon * epsilon * opt_estimate))
    distinct_colors = sorted(set(color_list), key=repr)
    kept_colors = {c for c in distinct_colors if rng.random() < probability}
    sampled_coords = [c for c, color in zip(coords, color_list) if color in kept_colors]
    sampled_colors = [color for color in color_list if color in kept_colors]

    if not sampled_coords:
        sampled_coords = coords
        sampled_colors = color_list

    placement = colored_maxrs_box_output_sensitive(sampled_coords, width, height,
                                                   colors=sampled_colors)
    corner = placement.center
    if corner is None:
        corner = (coords[0][0] - width, coords[0][1] - height)
    value = _colored_coverage(corner, coords, color_list, width, height)
    return MaxRSResult(
        value=value,
        center=corner,
        shape="rectangle",
        exact=False,
        meta={
            "width": width,
            "height": height,
            "n": n,
            "epsilon": epsilon,
            "branch": "sampled",
            "opt_estimate": opt_estimate,
            "probability": probability,
            "sampled_colors": len(kept_colors),
            "method": "box-color-sampling",
        },
    )
