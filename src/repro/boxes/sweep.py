"""Maximum colored depth over axis-aligned boxes via a vertical-slab sweep.

This is the box analogue of the trapezoidal-map traversal of Lemma 4.2: the
colored problem is first turned into an uncolored one by replacing every
color class with its union (here a set of disjoint rectangle pieces, see
:mod:`repro.boxes.union`), and the resulting pieces are swept left to right
while a range-add / global-max segment tree over the compressed
y-coordinates tracks how many *distinct* colors cover each candidate y.

Correctness relies on two facts:

* pieces of one color never overlap (they come from a union decomposition
  over half-open x-slabs), so adding ``+1`` per active piece counts each
  color at most once at any sweep position; and
* an optimal point can be translated down and left until its x-coordinate is
  a piece's left boundary and its y-coordinate a piece's bottom boundary, so
  sampling the tree only at event x-coordinates and compressed y-coordinates
  loses nothing.

The sweep treats pieces as active on the half-open range ``[xlo, xhi)``.  A
configuration in which the optimum is attained *only* at an x where one
color's coverage ends exactly and no other piece of that color takes over
(which requires two input points at distance exactly ``width`` in x) can
therefore be undercounted; such ties have measure zero and the exact solvers
built on top re-measure the reported point against the full input anyway.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..structures.segment_tree import MaxAddSegmentTree
from .union import Rect, rectangles_union_pieces

__all__ = ["max_colored_depth_boxes"]


def _group_rects_by_color(
    rects: Sequence[Sequence[float]], colors: Sequence[Hashable]
) -> Dict[Hashable, List[Rect]]:
    if len(rects) != len(colors):
        raise ValueError("got %d rectangles but %d colors" % (len(rects), len(colors)))
    grouped: Dict[Hashable, List[Rect]] = defaultdict(list)
    for rect, color in zip(rects, colors):
        xlo, ylo, xhi, yhi = (float(v) for v in rect)
        grouped[color].append((xlo, ylo, xhi, yhi))
    return grouped


def max_colored_depth_boxes(
    rects: Sequence[Sequence[float]],
    colors: Sequence[Hashable],
) -> Tuple[int, Optional[Tuple[float, float]]]:
    """Point of maximum colored depth with respect to closed axis-aligned boxes.

    Parameters
    ----------
    rects:
        Rectangles ``(xlo, ylo, xhi, yhi)``; the "dual" boxes of the colored
        box MaxRS problem.
    colors:
        One hashable color label per rectangle.

    Returns
    -------
    (depth, point)
        The maximum number of distinct colors whose boxes share a common
        point, and one point attaining it (``None`` on empty input).
    """
    grouped = _group_rects_by_color(rects, colors)
    if not grouped:
        return 0, None

    # Union pieces per color; record (xlo, xhi, ylo, yhi, piece-id) events.
    pieces: List[Tuple[float, float, float, float]] = []
    for color_rects in grouped.values():
        pieces.extend(
            (xlo, xhi, ylo, yhi)
            for (xlo, ylo, xhi, yhi) in rectangles_union_pieces(color_rects)
        )
    if not pieces:
        return 0, None

    ys = sorted({p[2] for p in pieces} | {p[3] for p in pieces})
    y_index = {value: index for index, value in enumerate(ys)}
    tree = MaxAddSegmentTree(len(ys))

    events: List[Tuple[float, int, int, int]] = []  # (x, order, y_lo_idx, y_hi_idx) with order -1 remove / +1 add
    for xlo, xhi, ylo, yhi in pieces:
        lo = y_index[ylo]
        hi = y_index[yhi]
        if xhi > xlo:
            events.append((xlo, 1, lo, hi))
            events.append((xhi, -1, lo, hi))
        else:
            # Degenerate zero-width piece: active only at this single x.
            events.append((xlo, 1, lo, hi))
            events.append((xlo, 0, lo, hi))

    # Removals before additions at equal x implements half-open [xlo, xhi)
    # activation; the sentinel order 0 removes degenerate pieces after the
    # query at their own x.
    events.sort(key=lambda e: (e[0], e[1]))

    best_depth = 0
    best_point: Optional[Tuple[float, float]] = None
    index = 0
    total = len(events)
    while index < total:
        x = events[index][0]
        deferred_removals: List[Tuple[int, int]] = []
        while index < total and events[index][0] == x:
            _, order, lo, hi = events[index]
            if order == -1:
                tree.add(lo, hi, -1)
            elif order == 1:
                tree.add(lo, hi, 1)
            else:
                deferred_removals.append((lo, hi))
            index += 1
        depth, arg = tree.max_with_argmax()
        if depth > best_depth:
            best_depth = int(round(depth))
            best_point = (x, ys[arg])
        for lo, hi in deferred_removals:
            tree.add(lo, hi, -1)

    return best_depth, best_point
