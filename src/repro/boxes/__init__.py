"""Colored MaxRS for axis-aligned boxes: the Technique 2 extension (Section 7).

The paper's first open problem asks whether the output-sensitivity +
color-sampling technique of Section 4 extends to colored MaxRS with boxes.
This package carries out that extension in the plane:

* :mod:`repro.boxes.union` -- the union of axis-aligned rectangles of one
  color, decomposed into disjoint pieces (the box analogue of the
  power-diagram union boundary of Lemma 4.2);
* :mod:`repro.boxes.sweep` -- a vertical-slab sweep over the colored union
  pieces that finds a point of maximum colored depth (the analogue of the
  trapezoidal-map traversal);
* :mod:`repro.boxes.colored` -- the primal-side public API: an exact
  arrangement solver, the output-sensitive ``O(n log n + n * opt)``-style
  solver driven by a grid of query-sized cells (Theorem 4.6 analogue), the
  corner-pigeonhole ``opt`` estimator, and the (1 - eps) color-sampling
  solver (Theorem 1.6 analogue).

The correctness oracle for all of it is the existing exact colored rectangle
solver :func:`repro.exact.colored_rectangle.colored_maxrs_rectangle_exact`
([ZGH+22] baseline).
"""

from .union import rectangles_union_pieces, union_area, point_in_union
from .sweep import max_colored_depth_boxes
from .colored import (
    colored_maxrs_box,
    colored_maxrs_box_arrangement,
    colored_maxrs_box_output_sensitive,
    estimate_colored_opt_box,
)
from .box3d import colored_maxrs_box3d_exact

__all__ = [
    "rectangles_union_pieces",
    "union_area",
    "point_in_union",
    "max_colored_depth_boxes",
    "colored_maxrs_box_arrangement",
    "colored_maxrs_box_output_sensitive",
    "estimate_colored_opt_box",
    "colored_maxrs_box",
    "colored_maxrs_box3d_exact",
]
