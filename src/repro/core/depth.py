"""Depth computations in the dual setting (Section 1.4 of the paper).

After scaling so the query ball has unit radius, MaxRS with a ``d``-ball is
equivalent to replacing every input point by a unit ball centered at it and
finding the point of ``R^d`` with maximum *weighted depth*; colored MaxRS
becomes maximum *colored depth* (number of distinct colors among the balls
containing the point).

The functions here are the straightforward ``O(n)`` evaluators.  They serve
three purposes: reporting the true objective of a placement produced by an
approximate solver, acting as correctness oracles in tests, and providing the
inner loop of the small brute-force baselines.  The batched variants
(:func:`weighted_depth_batch`, :func:`colored_depth_batch`) evaluate many
probe points at once through the pluggable kernel backends of
:mod:`repro.kernels`.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Set

from .geometry import squared_distance

__all__ = [
    "weighted_depth",
    "colored_depth",
    "covering_colors",
    "coverage_count",
    "weighted_depth_batch",
    "colored_depth_batch",
]


def weighted_depth(
    point: Sequence[float],
    centers: Sequence[Sequence[float]],
    weights: Sequence[float],
    radius: float = 1.0,
) -> float:
    """Total weight of the balls (of the given radius) containing ``point``."""
    r2 = radius * radius + 1e-12
    total = 0.0
    for center, weight in zip(centers, weights):
        if squared_distance(point, center) <= r2:
            total += weight
    return total


def coverage_count(
    point: Sequence[float],
    centers: Sequence[Sequence[float]],
    radius: float = 1.0,
) -> int:
    """Number of balls (of the given radius) containing ``point``."""
    r2 = radius * radius + 1e-12
    return sum(1 for center in centers if squared_distance(point, center) <= r2)


def covering_colors(
    point: Sequence[float],
    centers: Sequence[Sequence[float]],
    colors: Sequence[Hashable],
    radius: float = 1.0,
) -> Set[Hashable]:
    """The set of distinct colors whose balls contain ``point``."""
    r2 = radius * radius + 1e-12
    found = set()
    for center, color in zip(centers, colors):
        if color in found:
            continue
        if squared_distance(point, center) <= r2:
            found.add(color)
    return found


def colored_depth(
    point: Sequence[float],
    centers: Sequence[Sequence[float]],
    colors: Sequence[Hashable],
    radius: float = 1.0,
) -> int:
    """Number of distinct colors among the balls containing ``point``."""
    return len(covering_colors(point, centers, colors, radius))


def weighted_depth_batch(
    points: Sequence[Sequence[float]],
    centers: Sequence[Sequence[float]],
    weights: Sequence[float],
    radius: float = 1.0,
    *,
    backend: str = "auto",
) -> List[float]:
    """Weighted depth of every probe point, evaluated by a kernel backend.

    Semantically ``[weighted_depth(p, centers, weights, radius) for p in
    points]``; the ``numpy`` backend computes the whole batch as one
    pairwise-distance block (see :mod:`repro.kernels`).
    """
    from ..kernels import get_kernel

    kernel = get_kernel(backend, "probe_depths", len(centers))
    return [float(v) for v in kernel(points, centers, weights, radius)]


def colored_depth_batch(
    points: Sequence[Sequence[float]],
    centers: Sequence[Sequence[float]],
    colors: Sequence[Hashable],
    radius: float = 1.0,
    *,
    backend: str = "auto",
) -> List[int]:
    """Colored depth of every probe point, evaluated by a kernel backend.

    Semantically ``[colored_depth(p, centers, colors, radius) for p in
    points]``; see :mod:`repro.kernels` for the backend contract.
    """
    from ..kernels import get_kernel

    kernel = get_kernel(backend, "colored_depth_batch", len(centers))
    return [int(v) for v in kernel(points, centers, colors, radius)]
