"""Core algorithms: the paper's two general techniques and their substrates."""

from .geometry import (
    Ball,
    Box,
    ColoredPoint,
    Interval,
    Point,
    WeightedPoint,
)
from .result import MaxRSResult
from .depth import (
    colored_depth,
    colored_depth_batch,
    coverage_count,
    covering_colors,
    weighted_depth,
    weighted_depth_batch,
)
from .technique1 import estimate_opt_ball, max_range_sum_ball
from .dynamic import DynamicMaxRS
from .colored import colored_maxrs_ball, estimate_colored_opt_ball
from .technique2 import (
    colored_maxrs_disk,
    colored_maxrs_disk_arrangement,
    colored_maxrs_disk_output_sensitive,
)

__all__ = [
    "Point",
    "WeightedPoint",
    "ColoredPoint",
    "Ball",
    "Box",
    "Interval",
    "MaxRSResult",
    "weighted_depth",
    "colored_depth",
    "weighted_depth_batch",
    "colored_depth_batch",
    "covering_colors",
    "coverage_count",
    "max_range_sum_ball",
    "estimate_opt_ball",
    "DynamicMaxRS",
    "colored_maxrs_ball",
    "estimate_colored_opt_ball",
    "colored_maxrs_disk",
    "colored_maxrs_disk_arrangement",
    "colored_maxrs_disk_output_sensitive",
]
