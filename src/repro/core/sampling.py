"""Random sampling utilities used by Technique 1.

The sampling step of Section 3.1 draws points independently and uniformly at
random from the circumscribed sphere of a grid cell.  Uniform sampling on a
``(d-1)``-sphere uses Muller's method [Mul59]: draw a standard Gaussian vector
and normalise it.

The module also provides the sample-size rule ``t = c * eps^-2 * log n`` from
Lemma 3.1 and a couple of helpers shared by the static, dynamic and colored
variants of Technique 1.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "sample_on_sphere",
    "sample_points_on_sphere",
    "sample_size",
    "default_rng",
]


def default_rng(seed=None) -> np.random.Generator:
    """Create a numpy random generator; accepts ``None``, an int, or a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def sample_on_sphere(
    center: Sequence[float], radius: float, rng: np.random.Generator
) -> Tuple[float, ...]:
    """Draw one point uniformly at random from the sphere ``∂B(center, radius)``.

    Implements Muller's method: a standard Gaussian vector normalised to unit
    length is uniform on the unit sphere.
    """
    dim = len(center)
    vec = rng.standard_normal(dim)
    norm = math.sqrt(float(np.dot(vec, vec)))
    while norm == 0.0:
        vec = rng.standard_normal(dim)
        norm = math.sqrt(float(np.dot(vec, vec)))
    scale = radius / norm
    return tuple(center[i] + vec[i] * scale for i in range(dim))


def sample_points_on_sphere(
    center: Sequence[float], radius: float, count: int, rng: np.random.Generator
) -> List[Tuple[float, ...]]:
    """Draw ``count`` independent uniform points from a sphere.

    Vectorised version of :func:`sample_on_sphere` used for the per-cell
    samples of Technique 1.
    """
    if count <= 0:
        return []
    dim = len(center)
    vecs = rng.standard_normal((count, dim))
    norms = np.linalg.norm(vecs, axis=1)
    # Regenerate the (measure-zero) degenerate rows, if any.
    bad = norms == 0.0
    while bad.any():
        vecs[bad] = rng.standard_normal((int(bad.sum()), dim))
        norms = np.linalg.norm(vecs, axis=1)
        bad = norms == 0.0
    pts = np.asarray(center, dtype=float) + vecs * (radius / norms)[:, None]
    return [tuple(float(x) for x in row) for row in pts]


def sample_size(epsilon: float, n: int, constant: float = 1.0) -> int:
    """Per-cell sample size ``t = Theta(eps^-2 log n)`` from Lemma 3.1.

    ``constant`` is the (theoretically "sufficiently large") constant ``c``;
    it is exposed so the ablation experiment E9 can sweep it.  The value is
    clamped to at least 1 so degenerate inputs still draw a sample.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1), got %r" % epsilon)
    if constant <= 0:
        raise ValueError("sample-size constant must be positive")
    n = max(2, int(n))
    return max(1, int(math.ceil(constant * (epsilon ** -2) * math.log(n))))
