"""Geometric primitives shared by every MaxRS algorithm in the library.

The paper works with weighted or colored points in ``R^d`` and with two kinds
of query ranges: axis-aligned boxes and Euclidean balls.  The primitives here
are deliberately lightweight -- coordinates are plain tuples of floats -- so
that the hot loops of the sampling-based algorithms (Technique 1) and of the
sweep-based exact baselines stay cheap to call.

All helpers treat ranges as *closed* sets, matching the paper's convention
that a point on the boundary of the query range is covered by it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

Coord = Tuple[float, ...]

__all__ = [
    "Coord",
    "Point",
    "WeightedPoint",
    "ColoredPoint",
    "Ball",
    "Box",
    "Interval",
    "as_coord",
    "squared_distance",
    "distance",
    "point_in_ball",
    "point_in_box",
    "ball_intersects_box",
    "box_distance_to_point",
    "bounding_box",
    "validate_dimension",
]


def as_coord(values: Sequence[float]) -> Coord:
    """Normalise a sequence of numbers into an immutable coordinate tuple."""
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class Point:
    """A point in ``R^d`` with no weight or color attached."""

    coords: Coord

    def __init__(self, coords: Sequence[float]):
        object.__setattr__(self, "coords", as_coord(coords))

    @property
    def dim(self) -> int:
        return len(self.coords)

    def __iter__(self):
        return iter(self.coords)

    def __getitem__(self, index: int) -> float:
        return self.coords[index]


@dataclass(frozen=True)
class WeightedPoint:
    """A point together with a (positive, unless noted otherwise) weight.

    The batched MaxRS reduction of Section 5.4 deliberately uses *negative*
    weights for guard points, so the class itself does not reject them;
    individual algorithms validate what they support.
    """

    coords: Coord
    weight: float = 1.0

    def __init__(self, coords: Sequence[float], weight: float = 1.0):
        object.__setattr__(self, "coords", as_coord(coords))
        object.__setattr__(self, "weight", float(weight))

    @property
    def dim(self) -> int:
        return len(self.coords)


@dataclass(frozen=True)
class ColoredPoint:
    """A point with a color label from ``{0, 1, ..., m - 1}`` (any hashable works)."""

    coords: Coord
    color: object = 0

    def __init__(self, coords: Sequence[float], color: object = 0):
        object.__setattr__(self, "coords", as_coord(coords))
        object.__setattr__(self, "color", color)

    @property
    def dim(self) -> int:
        return len(self.coords)


@dataclass(frozen=True)
class Ball:
    """A closed Euclidean ball (disk when ``d == 2``)."""

    center: Coord
    radius: float

    def __init__(self, center: Sequence[float], radius: float):
        if radius < 0:
            raise ValueError("ball radius must be non-negative, got %r" % radius)
        object.__setattr__(self, "center", as_coord(center))
        object.__setattr__(self, "radius", float(radius))

    @property
    def dim(self) -> int:
        return len(self.center)

    def contains(self, point: Sequence[float]) -> bool:
        return point_in_ball(point, self.center, self.radius)


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box given by its lower and upper corners."""

    lower: Coord
    upper: Coord

    def __init__(self, lower: Sequence[float], upper: Sequence[float]):
        lower = as_coord(lower)
        upper = as_coord(upper)
        if len(lower) != len(upper):
            raise ValueError("box corners must have matching dimensions")
        if any(lo > hi for lo, hi in zip(lower, upper)):
            raise ValueError("box lower corner must not exceed upper corner")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @property
    def dim(self) -> int:
        return len(self.lower)

    @property
    def side_lengths(self) -> Coord:
        return tuple(hi - lo for lo, hi in zip(self.lower, self.upper))

    @property
    def center(self) -> Coord:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lower, self.upper))

    def contains(self, point: Sequence[float]) -> bool:
        return point_in_box(point, self.lower, self.upper)

    def corners(self) -> Iterable[Coord]:
        """Yield the ``2^d`` corners of the box."""
        dims = self.dim
        for mask in range(1 << dims):
            yield tuple(
                self.upper[i] if (mask >> i) & 1 else self.lower[i]
                for i in range(dims)
            )


@dataclass(frozen=True)
class Interval:
    """A closed interval on the real line, the ``d == 1`` query range."""

    low: float
    high: float

    def __init__(self, low: float, high: float):
        low = float(low)
        high = float(high)
        if low > high:
            raise ValueError("interval low must not exceed high")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    @property
    def length(self) -> float:
        return self.high - self.low

    def contains(self, x: float) -> bool:
        return self.low <= x <= self.high


def squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance between two coordinate sequences."""
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two coordinate sequences."""
    return math.sqrt(squared_distance(a, b))


def point_in_ball(point: Sequence[float], center: Sequence[float], radius: float) -> bool:
    """Whether ``point`` lies in the closed ball of the given center and radius."""
    return squared_distance(point, center) <= radius * radius + 1e-12


def point_in_box(point: Sequence[float], lower: Sequence[float], upper: Sequence[float]) -> bool:
    """Whether ``point`` lies in the closed axis-aligned box ``[lower, upper]``."""
    return all(lo - 1e-12 <= x <= hi + 1e-12 for x, lo, hi in zip(point, lower, upper))


def box_distance_to_point(point: Sequence[float], lower: Sequence[float], upper: Sequence[float]) -> float:
    """Euclidean distance from ``point`` to the closed box ``[lower, upper]``.

    Zero when the point lies inside the box.
    """
    total = 0.0
    for x, lo, hi in zip(point, lower, upper):
        if x < lo:
            diff = lo - x
        elif x > hi:
            diff = x - hi
        else:
            diff = 0.0
        total += diff * diff
    return math.sqrt(total)


def ball_intersects_box(
    center: Sequence[float],
    radius: float,
    lower: Sequence[float],
    upper: Sequence[float],
) -> bool:
    """Whether the closed ball intersects the closed axis-aligned box."""
    return box_distance_to_point(center, lower, upper) <= radius + 1e-12


def bounding_box(points: Sequence[Sequence[float]]) -> Box:
    """Axis-aligned bounding box of a non-empty collection of coordinates."""
    if not points:
        raise ValueError("bounding_box requires at least one point")
    dims = len(points[0])
    lower = [math.inf] * dims
    upper = [-math.inf] * dims
    for p in points:
        for i in range(dims):
            if p[i] < lower[i]:
                lower[i] = p[i]
            if p[i] > upper[i]:
                upper[i] = p[i]
    return Box(lower, upper)


def validate_dimension(points: Sequence[Sequence[float]], expected: int = None) -> int:
    """Check that all coordinate sequences share one dimension and return it."""
    if not points:
        if expected is None:
            raise ValueError("cannot infer dimension from an empty point set")
        return expected
    dims = {len(p) for p in points}
    if len(dims) != 1:
        raise ValueError("points have inconsistent dimensions: %s" % sorted(dims))
    dim = dims.pop()
    if expected is not None and dim != expected:
        raise ValueError("expected dimension %d but points have dimension %d" % (expected, dim))
    if dim < 1:
        raise ValueError("points must live in dimension >= 1")
    return dim
