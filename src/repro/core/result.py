"""Result objects returned by the MaxRS solvers.

Every solver in the library -- exact or approximate, static or dynamic,
weighted or colored -- reports its answer through :class:`MaxRSResult` so that
examples, tests and the benchmark harness can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["MaxRSResult"]


@dataclass(frozen=True)
class MaxRSResult:
    """Placement returned by a MaxRS solver.

    Attributes
    ----------
    value:
        The objective achieved by the placement: total weight of covered
        points for weighted MaxRS, or number of distinct colors covered for
        colored MaxRS.
    center:
        The placement of the range in the *primal* setting.  For a ``d``-ball
        query this is the ball center; for a rectangle it is the lower-left
        corner of the optimal rectangle; for an interval it is the left
        endpoint.  ``None`` when the input was empty.
    shape:
        A short label describing the query range (``"ball"``, ``"rectangle"``,
        ``"interval"``).
    exact:
        Whether the value is exact (``True``) or an approximation guarantee
        applies (``False``).
    meta:
        Free-form diagnostics such as the number of sample points used, the
        epsilon that was requested, or the opt estimate used internally.
    """

    value: float
    center: Optional[Tuple[float, ...]]
    shape: str = "ball"
    exact: bool = True
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.center is not None:
            object.__setattr__(self, "center", tuple(float(c) for c in self.center))

    @property
    def is_empty(self) -> bool:
        """True when the solver ran on an empty input."""
        return self.center is None
