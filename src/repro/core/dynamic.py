"""Dynamic MaxRS with a ``d``-ball under insertions and deletions (Theorem 1.1).

The structure maintains, in the dual setting, a pool of probe points sampled
on the circumspheres of the non-empty grid cells (see
:mod:`repro.core.technique1`) together with the weighted depth of every probe.
A query reports the probe of maximum depth, which is a ``(1/2 - eps)``
approximation of the optimum with high probability.

Updates follow Section 3.1.1:

* the structure proceeds in *epochs*; an epoch starting with ``|B_j|`` balls
  ends as soon as the number of live balls leaves ``[|B_j| / 2, 2 |B_j|]``;
* at the start of an epoch every non-empty cell is (re)sampled with
  ``t = Theta(eps^-2 log |B_j|)`` probes and all depths are recomputed
  (the cost is charged to the at least ``|B_j| / 2`` updates of the previous
  epoch, Lemma 3.4);
* during an epoch an insertion adds the ball's weight to the probes of every
  intersected cell (sampling cells that were empty until now), and a deletion
  subtracts it.

Every ball intersects ``O(eps^-d)`` cells in each of the ``O(eps^-d)`` grids
and every cell holds ``O(eps^-2 log n)`` probes, so the amortised update time
is ``O(eps^{-2d-2} log n)`` -- Theorem 1.1.  Queries are answered from a lazy
max-heap over the per-cell maxima, so they cost ``O(log N)`` amortised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..structures.lazy_heap import LazyMaxHeap
from .geometry import validate_dimension
from .result import MaxRSResult
from .sampling import default_rng, sample_size
from .technique1 import CellKey, Technique1Grids, sample_sphere_array

__all__ = ["DynamicMaxRS"]


@dataclass
class _CellSamples:
    """Probe points of one non-empty cell together with their current depths."""

    points: np.ndarray          # shape (t, d)
    depths: np.ndarray          # shape (t,)

    @classmethod
    def empty(cls, points: np.ndarray) -> "_CellSamples":
        return cls(points=points, depths=np.zeros(len(points), dtype=float))

    @property
    def max_depth(self) -> float:
        return float(self.depths.max()) if len(self.depths) else 0.0

    def best_probe(self) -> Tuple[float, Tuple[float, ...]]:
        pos = int(np.argmax(self.depths))
        return float(self.depths[pos]), tuple(float(v) for v in self.points[pos])


class DynamicMaxRS:
    """Dynamic (1/2 - eps)-approximate MaxRS for ``d``-ball queries.

    Parameters
    ----------
    dim:
        Ambient dimension of the points.
    radius:
        Radius of the query ball (fixed for the lifetime of the structure).
    epsilon:
        Approximation parameter in ``(0, 1/2)``.
    seed:
        Seed or numpy Generator for the probe sampling.
    sample_constant:
        Constant of the ``t = c * eps^-2 * log n`` per-cell sample size.
    shift_cap:
        Optional cap on grid shifts per axis (ablation experiments only).

    Examples
    --------
    >>> structure = DynamicMaxRS(dim=2, radius=1.0, epsilon=0.3, seed=7)
    >>> ids = [structure.insert((0.1 * i, 0.0)) for i in range(5)]
    >>> structure.query().value >= 1
    True
    >>> structure.delete(ids[0])
    """

    def __init__(
        self,
        dim: int,
        radius: float = 1.0,
        epsilon: float = 0.25,
        *,
        seed=None,
        sample_constant: float = 1.0,
        shift_cap: Optional[int] = None,
    ):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.dim = int(dim)
        self.radius = float(radius)
        self.epsilon = float(epsilon)
        self.sample_constant = float(sample_constant)
        self._rng = default_rng(seed)
        self._grids = Technique1Grids(dim=self.dim, epsilon=self.epsilon, shift_cap=shift_cap)

        self._balls: Dict[int, Tuple[Tuple[float, ...], float]] = {}
        self._next_id = 0
        self._cells: Dict[CellKey, _CellSamples] = {}
        # Lazy max-heap over per-cell maximum depths; queries peek it.
        self._heap = LazyMaxHeap()

        # Epoch bookkeeping (Section 3.1.1).
        self._epoch_base: Optional[int] = None
        self._epoch_sample_size: int = 1

        # Diagnostics used by tests and the E2/E9 experiments.
        self.stats = {
            "insertions": 0,
            "deletions": 0,
            "rebuilds": 0,
            "cells_touched": 0,
        }

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._balls)

    def insert(self, point: Sequence[float], weight: float = 1.0) -> int:
        """Insert a weighted point; returns an id usable with :meth:`delete`."""
        if weight <= 0:
            raise ValueError("weights must be strictly positive")
        coords = tuple(float(c) for c in point)
        validate_dimension([coords], self.dim)
        scaled = tuple(c / self.radius for c in coords)

        ball_id = self._next_id
        self._next_id += 1
        self._balls[ball_id] = (scaled, float(weight))
        self.stats["insertions"] += 1

        if self._epoch_needs_restart():
            self._rebuild()
        else:
            self._apply_ball(scaled, float(weight))
        return ball_id

    def delete(self, ball_id: int) -> None:
        """Delete a previously inserted point by id."""
        if ball_id not in self._balls:
            raise KeyError("unknown point id %r" % ball_id)
        scaled, weight = self._balls.pop(ball_id)
        self.stats["deletions"] += 1

        if not self._balls:
            self._clear_probes()
            self._epoch_base = None
            return

        if self._epoch_needs_restart():
            self._rebuild()
        else:
            self._apply_ball(scaled, -weight)

    def query(self) -> MaxRSResult:
        """Current (approximate) best placement of the query ball."""
        if not self._balls:
            return MaxRSResult(value=0.0, center=None, shape="ball", exact=False,
                               meta={"epsilon": self.epsilon, "n": 0})
        best = self._best_probe()
        if best is None:
            # Should not happen while balls exist, but stay safe.
            any_center = next(iter(self._balls.values()))[0]
            best = (0.0, any_center)
        value, point = best
        return MaxRSResult(
            value=value,
            center=tuple(c * self.radius for c in point),
            shape="ball",
            exact=False,
            meta={
                "epsilon": self.epsilon,
                "n": len(self._balls),
                "epoch_base": self._epoch_base,
                "samples_per_cell": self._epoch_sample_size,
                "non_empty_cells": len(self._cells),
                "guarantee": 0.5 - self.epsilon,
            },
        )

    def points(self) -> Dict[int, Tuple[Tuple[float, ...], float]]:
        """Live points as ``{id: (coords, weight)}`` in original coordinates."""
        return {
            ball_id: (tuple(c * self.radius for c in scaled), weight)
            for ball_id, (scaled, weight) in self._balls.items()
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _epoch_needs_restart(self) -> bool:
        size = len(self._balls)
        if self._epoch_base is None:
            return size > 0
        return size < self._epoch_base / 2.0 or size > 2.0 * self._epoch_base

    def _clear_probes(self) -> None:
        self._cells.clear()
        self._heap.clear()

    def _rebuild(self) -> None:
        """Sampling step at the start of a new epoch (two passes, as in Section 3.1.1)."""
        self.stats["rebuilds"] += 1
        self._clear_probes()
        size = len(self._balls)
        self._epoch_base = size
        self._epoch_sample_size = sample_size(self.epsilon, max(2, size), self.sample_constant)
        if size == 0:
            return

        cell_to_balls: Dict[CellKey, list] = {}
        for ball_id, (center, _weight) in self._balls.items():
            for key in self._grids.cells_for_unit_ball(center):
                cell_to_balls.setdefault(key, []).append(ball_id)

        for key, ids in cell_to_balls.items():
            center, circumradius = self._grids.cell_circumsphere(key)
            probes = sample_sphere_array(center, circumradius, self._epoch_sample_size, self._rng)
            cell = _CellSamples.empty(probes)
            for ball_id in ids:
                ball_center, weight = self._balls[ball_id]
                diff = probes - np.asarray(ball_center)
                inside = (diff * diff).sum(axis=1) <= 1.0 + 1e-12
                cell.depths[inside] += weight
            self._cells[key] = cell
            self._heap.set(key, cell.max_depth)

    def _apply_ball(self, center: Tuple[float, ...], signed_weight: float) -> None:
        """Add (or subtract) one ball's weight to the probes of every intersected cell."""
        center_array = np.asarray(center, dtype=float)
        for key in self._grids.cells_for_unit_ball(center):
            cell = self._cells.get(key)
            if cell is None:
                if signed_weight < 0:
                    # Deleting a ball from a cell never sampled in this epoch:
                    # the cell was empty when the epoch started and the ball
                    # predates the epoch, so there is nothing to undo.
                    continue
                cell_center, circumradius = self._grids.cell_circumsphere(key)
                probes = sample_sphere_array(
                    cell_center, circumradius, self._epoch_sample_size, self._rng
                )
                cell = _CellSamples.empty(probes)
                self._cells[key] = cell
            diff = cell.points - center_array
            inside = (diff * diff).sum(axis=1) <= 1.0 + 1e-12
            if inside.any():
                cell.depths[inside] += signed_weight
            self._heap.set(key, cell.max_depth)
            self.stats["cells_touched"] += 1

    def _best_probe(self) -> Optional[Tuple[float, Tuple[float, ...]]]:
        """Probe of maximum current depth via the lazy max-heap."""
        top = self._heap.peek()
        if top is None:
            return None
        key, _cell_max = top
        return self._cells[key].best_probe()
