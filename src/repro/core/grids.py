"""Shifted uniform grids (Lemma 2.1 of the paper).

Both general techniques of the paper rely on a small collection of uniform
grids, shifted relative to each other, such that every point of ``R^d`` is
*Delta-near* (within distance ``Delta`` of the center of its cell) in at least
one of the grids.  Lemma 2.1 shows that shifting the grid by multiples of
``Delta / sqrt(d)`` along every axis -- ``ceil(s * sqrt(d) / Delta)`` shifts
per axis -- suffices.

:class:`ShiftedGrid` provides cell indexing, cell geometry (center, box,
circumscribed sphere) and enumeration of the cells intersected by a ball,
which is the basic operation of Technique 1's sampling step.
:class:`GridCollection` materialises the full Lemma 2.1 family.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["ShiftedGrid", "GridCollection", "lemma21_shift_count"]

CellIndex = Tuple[int, ...]


def lemma21_shift_count(side: float, delta: float, dim: int) -> int:
    """Number of shifts per axis required by Lemma 2.1.

    Lemma 2.1 uses shifts ``z * Delta / sqrt(d)`` for
    ``z in {0, ..., s * sqrt(d) / Delta - 1}``.
    """
    if side <= 0:
        raise ValueError("grid side length must be positive")
    if delta <= 0:
        raise ValueError("delta must be positive")
    return max(1, math.ceil(side * math.sqrt(dim) / delta))


@dataclass(frozen=True)
class ShiftedGrid:
    """A uniform grid with cell side ``side`` shifted by ``shift`` along each axis."""

    dim: int
    side: float
    shift: Tuple[float, ...]

    def __post_init__(self):
        if self.dim < 1:
            raise ValueError("grid dimension must be >= 1")
        if self.side <= 0:
            raise ValueError("grid side length must be positive")
        if len(self.shift) != self.dim:
            raise ValueError("shift vector dimension mismatch")

    @property
    def circumradius(self) -> float:
        """Radius of the sphere circumscribing a single grid cell."""
        return self.side * math.sqrt(self.dim) / 2.0

    def cell_of(self, point: Sequence[float]) -> CellIndex:
        """Index of the cell containing ``point``."""
        return tuple(
            int(math.floor((point[i] - self.shift[i]) / self.side))
            for i in range(self.dim)
        )

    def cell_lower(self, cell: CellIndex) -> Tuple[float, ...]:
        return tuple(self.shift[i] + cell[i] * self.side for i in range(self.dim))

    def cell_upper(self, cell: CellIndex) -> Tuple[float, ...]:
        return tuple(self.shift[i] + (cell[i] + 1) * self.side for i in range(self.dim))

    def cell_center(self, cell: CellIndex) -> Tuple[float, ...]:
        return tuple(
            self.shift[i] + (cell[i] + 0.5) * self.side for i in range(self.dim)
        )

    def cell_corners(self, cell: CellIndex) -> Iterator[Tuple[float, ...]]:
        """Yield the ``2^d`` corners of a cell."""
        lower = self.cell_lower(cell)
        upper = self.cell_upper(cell)
        for mask in range(1 << self.dim):
            yield tuple(
                upper[i] if (mask >> i) & 1 else lower[i] for i in range(self.dim)
            )

    def distance_to_cell_center(self, point: Sequence[float]) -> float:
        """Distance from ``point`` to the center of its containing cell."""
        center = self.cell_center(self.cell_of(point))
        return math.sqrt(sum((point[i] - center[i]) ** 2 for i in range(self.dim)))

    def cells_intersecting_ball(
        self, center: Sequence[float], radius: float
    ) -> List[CellIndex]:
        """Indices of all cells intersected by a closed ball.

        A ball of radius ``r`` intersects at most ``(r / side + 2)^d`` cells,
        which matches the ``O(epsilon^{-d})`` bound used in Lemma 3.4 when the
        ball has unit radius and ``side = 2 * epsilon / sqrt(d)``.  The
        candidate cells of the ball's bounding box are filtered with one
        vectorised box-distance computation (this is the hot path of
        Technique 1).
        """
        lo_cell = self.cell_of(tuple(center[i] - radius for i in range(self.dim)))
        hi_cell = self.cell_of(tuple(center[i] + radius for i in range(self.dim)))
        axes = [np.arange(lo_cell[i], hi_cell[i] + 1) for i in range(self.dim)]
        mesh = np.meshgrid(*axes, indexing="ij")
        candidates = np.stack([m.ravel() for m in mesh], axis=1)

        shift = np.asarray(self.shift, dtype=float)
        center_arr = np.asarray(center, dtype=float)
        lower = shift + candidates * self.side
        upper = lower + self.side
        below = np.maximum(lower - center_arr, 0.0)
        above = np.maximum(center_arr - upper, 0.0)
        gap = np.maximum(below, above)
        distances_sq = (gap * gap).sum(axis=1)
        mask = distances_sq <= radius * radius + 1e-12
        return [tuple(int(v) for v in row) for row in candidates[mask]]


class GridCollection:
    """The family of shifted grids guaranteed by Lemma 2.1.

    Parameters
    ----------
    dim:
        Ambient dimension ``d``.
    side:
        Cell side length ``s``.
    delta:
        The nearness parameter ``Delta``: every point of ``R^d`` is within
        distance ``Delta`` of its cell center in at least one grid.
    shift_cap:
        Optional cap on the number of shifts per axis.  The theoretical count
        grows like ``s * sqrt(d) / Delta`` per axis; capping trades the
        worst-case nearness guarantee for speed and is exposed for the
        ablation experiments (E9).  ``None`` keeps the Lemma 2.1 count.
    """

    def __init__(self, dim: int, side: float, delta: float, shift_cap: int = None):
        self.dim = dim
        self.side = float(side)
        self.delta = float(delta)
        shifts_per_axis = lemma21_shift_count(side, delta, dim)
        if shift_cap is not None:
            shifts_per_axis = max(1, min(shifts_per_axis, int(shift_cap)))
        self.shifts_per_axis = shifts_per_axis
        step = self.delta / math.sqrt(dim)
        self.grids: List[ShiftedGrid] = []
        for z in itertools.product(range(shifts_per_axis), repeat=dim):
            shift = tuple(step * zi for zi in z)
            self.grids.append(ShiftedGrid(dim=dim, side=self.side, shift=shift))

    def __len__(self) -> int:
        return len(self.grids)

    def __iter__(self) -> Iterator[ShiftedGrid]:
        return iter(self.grids)

    def __getitem__(self, index: int) -> ShiftedGrid:
        return self.grids[index]

    def nearest_grid_for(self, point: Sequence[float]) -> Tuple[int, float]:
        """Return ``(grid index, distance)`` of the grid whose cell center is closest.

        Used by tests to verify the Lemma 2.1 guarantee empirically.
        """
        best_index = 0
        best_distance = math.inf
        for i, grid in enumerate(self.grids):
            dist = grid.distance_to_cell_center(point)
            if dist < best_distance:
                best_distance = dist
                best_index = i
        return best_index, best_distance
