"""Input normalisation shared by the public solvers.

The public API accepts points in whichever form is most convenient for the
caller: :class:`~repro.core.geometry.WeightedPoint` /
:class:`~repro.core.geometry.ColoredPoint` instances, bare coordinate tuples
(with weights or colors supplied separately), or numpy arrays.  The helpers
here convert everything into parallel Python lists of coordinate tuples plus
weights / colors, validating dimensions along the way.

Validation happens here, once, so every solver behaves consistently: besides
dimension checks, non-finite input is rejected.  A NaN or infinite coordinate
or weight would silently poison the sweeps (NaN compares false against every
threshold, so event ordering and the ``w <= 0`` weight checks both let it
through) and the two kernel backends would be free to disagree on garbage;
rejecting at the boundary keeps "garbage in, error out" uniform across the
library.
"""

from __future__ import annotations

from math import isfinite
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .geometry import ColoredPoint, Point, WeightedPoint, validate_dimension

__all__ = ["normalize_weighted", "normalize_colored", "normalize_coords"]

Coords = Tuple[float, ...]


def _extract_coords(item) -> Coords:
    if isinstance(item, (WeightedPoint, ColoredPoint, Point)):
        return item.coords
    return tuple(float(v) for v in item)


def _require_finite_coords(coords: Sequence[Coords]) -> None:
    """Reject NaN / infinite coordinates with a pinpointed error."""
    if all(isfinite(v) for point in coords for v in point):
        return
    for index, point in enumerate(coords):
        if not all(isfinite(v) for v in point):
            raise ValueError(
                "point %d has non-finite coordinates %r; "
                "coordinates must be finite numbers" % (index, tuple(point))
            )


def _require_finite_weights(weights: Sequence[float]) -> None:
    """Reject NaN / infinite weights with a pinpointed error."""
    if all(isfinite(w) for w in weights):
        return
    for index, weight in enumerate(weights):
        if not isfinite(weight):
            raise ValueError(
                "weight %d is non-finite (%r); weights must be finite numbers"
                % (index, weight)
            )


def normalize_coords(points: Sequence) -> List[Coords]:
    """Convert a heterogeneous point sequence into a list of coordinate tuples."""
    return [_extract_coords(p) for p in points]


def _normalize_weighted_arrays(
    points: np.ndarray,
    weights: Optional[Sequence[float]],
    require_positive: bool,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Vectorised normalisation for a 2-d float array of coordinates.

    Semantically identical to the generic path -- same validation, same
    error messages, same float64 values -- but returns the (possibly
    zero-copy) arrays themselves, skipping the per-point Python loops.  The
    shared-memory execution path (:mod:`repro.parallel`) depends on this:
    store-backed shard slices flow to the NumPy kernels without ever being
    rebuilt as tuple lists.
    """
    coords = np.asarray(points, dtype=float)
    if weights is None:
        weight_arr = np.ones(coords.shape[0], dtype=float)
    else:
        weight_arr = np.asarray(weights, dtype=float)
        if weight_arr.shape != (coords.shape[0],):
            raise ValueError(
                "got %d weights for %d points" % (weight_arr.size, coords.shape[0])
            )
    if not np.isfinite(coords).all():
        # Reuse the generic checker for its pinpointed error message.
        _require_finite_coords([tuple(row) for row in coords.tolist()])
    if not np.isfinite(weight_arr).all():
        _require_finite_weights(weight_arr.tolist())
    if require_positive and bool((weight_arr <= 0).any()):
        raise ValueError(
            "weights must be strictly positive for this solver; "
            "negative or zero weights would void the approximation guarantee"
        )
    dim = coords.shape[1]
    if coords.shape[0] and dim < 1:
        raise ValueError("points must live in dimension >= 1")
    return coords, weight_arr, (dim if coords.shape[0] else 0)


def normalize_weighted(
    points: Sequence,
    weights: Optional[Sequence[float]] = None,
    *,
    require_positive: bool = True,
    prefer_arrays: bool = False,
) -> Tuple[List[Coords], List[float], int]:
    """Normalise weighted input points.

    Returns ``(coords, weights, dim)``.  When ``points`` contains
    :class:`WeightedPoint` instances their weights are used unless an explicit
    ``weights`` sequence is also given (which then takes precedence).

    With ``prefer_arrays=True`` and a 2-d NumPy array input, validation is
    vectorised and the arrays are returned as-is (``coords`` an ``(n, dim)``
    float array, ``weights`` an ``(n,)`` float array) instead of Python
    lists -- the zero-copy path the array-aware solvers opt into.  Callers
    passing ``prefer_arrays=True`` must treat the returned containers
    length-generically (``len(coords)``, not ``if coords``).
    """
    if (prefer_arrays and isinstance(points, np.ndarray)
            and points.ndim == 2):
        return _normalize_weighted_arrays(points, weights, require_positive)
    coords: List[Coords] = []
    inherent_weights: List[float] = []
    for p in points:
        coords.append(_extract_coords(p))
        if isinstance(p, WeightedPoint):
            inherent_weights.append(p.weight)
        else:
            inherent_weights.append(1.0)

    if weights is not None:
        weight_list = [float(w) for w in weights]
        if len(weight_list) != len(coords):
            raise ValueError(
                "got %d weights for %d points" % (len(weight_list), len(coords))
            )
    else:
        weight_list = inherent_weights

    _require_finite_coords(coords)
    _require_finite_weights(weight_list)
    if require_positive and any(w <= 0 for w in weight_list):
        raise ValueError(
            "weights must be strictly positive for this solver; "
            "negative or zero weights would void the approximation guarantee"
        )

    dim = validate_dimension(coords) if coords else 0
    return coords, weight_list, dim


def normalize_colored(
    points: Sequence,
    colors: Optional[Sequence[Hashable]] = None,
) -> Tuple[List[Coords], List[Hashable], int]:
    """Normalise colored input points; returns ``(coords, colors, dim)``."""
    coords: List[Coords] = []
    inherent_colors: List[Hashable] = []
    for p in points:
        coords.append(_extract_coords(p))
        if isinstance(p, ColoredPoint):
            inherent_colors.append(p.color)
        else:
            inherent_colors.append(0)

    if colors is not None:
        color_list = list(colors)
        if len(color_list) != len(coords):
            raise ValueError(
                "got %d colors for %d points" % (len(color_list), len(coords))
            )
    else:
        color_list = inherent_colors

    _require_finite_coords(coords)
    dim = validate_dimension(coords) if coords else 0
    return coords, color_list, dim
