"""Input normalisation shared by the public solvers.

The public API accepts points in whichever form is most convenient for the
caller: :class:`~repro.core.geometry.WeightedPoint` /
:class:`~repro.core.geometry.ColoredPoint` instances, bare coordinate tuples
(with weights or colors supplied separately), or numpy arrays.  The helpers
here convert everything into parallel Python lists of coordinate tuples plus
weights / colors, validating dimensions along the way.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from .geometry import ColoredPoint, Point, WeightedPoint, validate_dimension

__all__ = ["normalize_weighted", "normalize_colored", "normalize_coords"]

Coords = Tuple[float, ...]


def _extract_coords(item) -> Coords:
    if isinstance(item, (WeightedPoint, ColoredPoint, Point)):
        return item.coords
    return tuple(float(v) for v in item)


def normalize_coords(points: Sequence) -> List[Coords]:
    """Convert a heterogeneous point sequence into a list of coordinate tuples."""
    return [_extract_coords(p) for p in points]


def normalize_weighted(
    points: Sequence,
    weights: Optional[Sequence[float]] = None,
    *,
    require_positive: bool = True,
) -> Tuple[List[Coords], List[float], int]:
    """Normalise weighted input points.

    Returns ``(coords, weights, dim)``.  When ``points`` contains
    :class:`WeightedPoint` instances their weights are used unless an explicit
    ``weights`` sequence is also given (which then takes precedence).
    """
    coords: List[Coords] = []
    inherent_weights: List[float] = []
    for p in points:
        coords.append(_extract_coords(p))
        if isinstance(p, WeightedPoint):
            inherent_weights.append(p.weight)
        else:
            inherent_weights.append(1.0)

    if weights is not None:
        weight_list = [float(w) for w in weights]
        if len(weight_list) != len(coords):
            raise ValueError(
                "got %d weights for %d points" % (len(weight_list), len(coords))
            )
    else:
        weight_list = inherent_weights

    if require_positive and any(w <= 0 for w in weight_list):
        raise ValueError(
            "weights must be strictly positive for this solver; "
            "negative or zero weights would void the approximation guarantee"
        )

    dim = validate_dimension(coords) if coords else 0
    return coords, weight_list, dim


def normalize_colored(
    points: Sequence,
    colors: Optional[Sequence[Hashable]] = None,
) -> Tuple[List[Coords], List[Hashable], int]:
    """Normalise colored input points; returns ``(coords, colors, dim)``."""
    coords: List[Coords] = []
    inherent_colors: List[Hashable] = []
    for p in points:
        coords.append(_extract_coords(p))
        if isinstance(p, ColoredPoint):
            inherent_colors.append(p.color)
        else:
            inherent_colors.append(0)

    if colors is not None:
        color_list = list(colors)
        if len(color_list) != len(coords):
            raise ValueError(
                "got %d colors for %d points" % (len(color_list), len(coords))
            )
    else:
        color_list = inherent_colors

    dim = validate_dimension(coords) if coords else 0
    return coords, color_list, dim
