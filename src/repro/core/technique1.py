"""Technique 1: sampling points in ``R^d`` (Section 3 of the paper).

The technique works in the dual setting: every input point of weight ``w``
becomes a unit ball of weight ``w`` (after rescaling so the query ball has
unit radius), and MaxRS becomes the problem of finding a point of maximum
weighted depth.  Instead of sampling the *input* (as prior (1-eps) schemes
do), Technique 1 samples a set of *probe points* in ``R^d``:

1. Build the Lemma 2.1 collection of shifted grids with cell side
   ``s = 2 * eps / sqrt(d)`` and nearness parameter ``Delta = eps^2``;
   the circumsphere of every cell then has radius exactly ``eps``.
2. For every non-empty cell (a cell intersected by at least one ball) draw
   ``t = Theta(eps^-2 log n)`` points uniformly at random from the cell's
   circumsphere (Lemma 3.1).
3. Report the sampled point of maximum weighted depth, where the depth of a
   sample only counts balls intersecting the sample's cell -- exactly as the
   paper's update rule does.

Lemmas 3.1--3.3 show the reported point has depth at least ``(1/2 - eps) opt``
with high probability, and Lemma 3.4 bounds the work per ball by
``O(eps^{-2d-2} log n)``, which is the source of Theorem 1.2's
``O(eps^{-2d-2} n log n)`` running time.

This module implements the static algorithm (Theorem 1.2).  The dynamic
variant (Theorem 1.1) lives in :mod:`repro.core.dynamic` and the colored
variant (Theorem 1.5) in :mod:`repro.core.colored`; all three share the
:class:`Technique1Grids` helper defined here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels import get_kernel
from ._inputs import normalize_weighted
from .grids import GridCollection, ShiftedGrid
from .result import MaxRSResult
from .sampling import default_rng, sample_size

__all__ = ["Technique1Grids", "max_range_sum_ball", "estimate_opt_ball"]

CellKey = Tuple[int, Tuple[int, ...]]


@dataclass(frozen=True)
class Technique1Parameters:
    """Derived parameters of Technique 1 for a given ``(d, eps)`` pair."""

    dim: int
    epsilon: float
    side: float
    delta: float
    circumradius: float

    @classmethod
    def for_epsilon(cls, dim: int, epsilon: float) -> "Technique1Parameters":
        if dim < 1:
            raise ValueError("dimension must be >= 1")
        if not 0 < epsilon < 0.5:
            raise ValueError("Technique 1 requires 0 < epsilon < 1/2, got %r" % epsilon)
        side = 2.0 * epsilon / math.sqrt(dim)
        delta = epsilon * epsilon
        return cls(
            dim=dim,
            epsilon=epsilon,
            side=side,
            delta=delta,
            circumradius=side * math.sqrt(dim) / 2.0,
        )


class Technique1Grids:
    """The Lemma 2.1 grid family specialised to Technique 1's parameters.

    Provides enumeration of the cells (across all grids in the family) that a
    unit ball intersects, and geometry of each cell's circumsphere.  These two
    operations are all the static, dynamic and colored variants need.
    """

    def __init__(self, dim: int, epsilon: float, shift_cap: Optional[int] = None):
        self.params = Technique1Parameters.for_epsilon(dim, epsilon)
        self.collection = GridCollection(
            dim=dim,
            side=self.params.side,
            delta=self.params.delta,
            shift_cap=shift_cap,
        )

    @property
    def dim(self) -> int:
        return self.params.dim

    @property
    def epsilon(self) -> float:
        return self.params.epsilon

    @property
    def circumradius(self) -> float:
        return self.params.circumradius

    def __len__(self) -> int:
        return len(self.collection)

    def cells_for_unit_ball(self, center: Sequence[float]) -> Iterator[CellKey]:
        """All ``(grid index, cell index)`` pairs whose cell intersects the unit ball."""
        for grid_index, grid in enumerate(self.collection):
            for cell in grid.cells_intersecting_ball(center, 1.0):
                yield grid_index, cell

    def cell_circumsphere(self, key: CellKey) -> Tuple[Tuple[float, ...], float]:
        """Center and radius of the circumsphere of the cell identified by ``key``."""
        grid_index, cell = key
        grid: ShiftedGrid = self.collection[grid_index]
        return grid.cell_center(cell), grid.circumradius


def sample_sphere_array(
    center: Sequence[float], radius: float, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` uniform points on a sphere as a ``(count, d)`` numpy array.

    Vectorised Muller sampling shared by the static, dynamic and colored
    variants of Technique 1.
    """
    dim = len(center)
    vecs = rng.standard_normal((count, dim))
    norms = np.linalg.norm(vecs, axis=1)
    bad = norms == 0.0
    while bad.any():
        vecs[bad] = rng.standard_normal((int(bad.sum()), dim))
        norms = np.linalg.norm(vecs, axis=1)
        bad = norms == 0.0
    return np.asarray(center, dtype=float) + vecs * (radius / norms)[:, None]


def _best_sample_for_cell(
    samples: np.ndarray,
    ball_indices: Sequence[int],
    coords: np.ndarray,
    weights: np.ndarray,
    probe_depths=None,
) -> Tuple[float, Optional[Tuple[float, ...]]]:
    """Maximum weighted depth among ``samples`` counting only the listed balls.

    ``probe_depths`` is the batched depth kernel evaluating all samples
    against the cell's balls (unit radius, scaled coordinates); it defaults
    to the NumPy backend's kernel (the historical inline implementation).
    """
    if samples.size == 0 or not ball_indices:
        return -math.inf, None
    if probe_depths is None:
        probe_depths = get_kernel("numpy", "probe_depths")
    index_array = np.asarray(ball_indices, dtype=int)
    depths = np.asarray(probe_depths(samples, coords[index_array], weights[index_array], 1.0))
    best_pos = int(np.argmax(depths))
    return float(depths[best_pos]), tuple(float(v) for v in samples[best_pos])


def max_range_sum_ball(
    points: Sequence,
    radius: float = 1.0,
    epsilon: float = 0.25,
    *,
    weights: Optional[Sequence[float]] = None,
    seed=None,
    sample_constant: float = 1.0,
    shift_cap: Optional[int] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """Static (1/2 - eps)-approximate MaxRS with a ``d``-ball query (Theorem 1.2).

    Parameters
    ----------
    points:
        Input points (``WeightedPoint`` instances or coordinate sequences).
    radius:
        Radius of the query ball in the original coordinates.
    epsilon:
        Approximation parameter in ``(0, 1/2)``; the returned placement covers
        at least ``(1/2 - eps) * opt`` total weight with high probability.
    weights:
        Optional explicit weights (must be positive).
    seed:
        Seed (or numpy Generator) controlling the sampling randomness.
    sample_constant:
        Constant ``c`` of the per-cell sample size ``t = c * eps^-2 * log n``.
    shift_cap:
        Optional cap on grid shifts per axis (ablation experiments only).
    backend:
        Kernel backend for the probe-depth evaluation (``"python"``,
        ``"numpy"`` or ``"auto"``; see :mod:`repro.kernels`).  The sampling
        randomness is backend-independent: both backends see identical
        samples for a given seed.

    Returns
    -------
    MaxRSResult
        ``center`` is the placement of the ball center in the original
        (unscaled) coordinates and ``value`` the total weight it covers,
        evaluated with respect to the balls intersecting the winning cell.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    coords, weight_list, dim = normalize_weighted(points, weights)
    if not coords:
        return MaxRSResult(value=0.0, center=None, shape="ball", exact=False,
                           meta={"epsilon": epsilon, "n": 0})

    rng = default_rng(seed)
    scale = 1.0 / radius
    scaled = [tuple(c * scale for c in p) for p in coords]
    scaled_array = np.asarray(scaled, dtype=float)
    weight_array = np.asarray(weight_list, dtype=float)

    grids = Technique1Grids(dim=dim, epsilon=epsilon, shift_cap=shift_cap)
    t = sample_size(epsilon, len(scaled), sample_constant)
    probe_kernel = get_kernel(backend, "probe_depths", len(scaled))

    # Pass 1: bucket ball indices by the cells they intersect.
    cell_to_balls: Dict[CellKey, List[int]] = {}
    for index, center in enumerate(scaled):
        for key in grids.cells_for_unit_ball(center):
            cell_to_balls.setdefault(key, []).append(index)

    # Pass 2: sample each non-empty cell's circumsphere and evaluate depths.
    # Cells are visited in decreasing order of their trivial upper bound (the
    # total weight of the balls intersecting them); once the bound drops to
    # the best value found so far no further cell can improve the answer, so
    # the loop stops.  The (1/2 - eps) guarantee is unaffected: if the
    # optimum's cell is skipped, the current best already dominates the best
    # sample that cell could have produced.
    cell_items = sorted(
        cell_to_balls.items(),
        key=lambda item: sum(weight_list[i] for i in item[1]),
        reverse=True,
    )
    best_value = 0.0
    best_point: Optional[Tuple[float, ...]] = None
    cells_evaluated = 0
    for key, ball_indices in cell_items:
        upper_bound = sum(weight_list[i] for i in ball_indices)
        if upper_bound <= best_value:
            break
        cells_evaluated += 1
        center, circumradius = grids.cell_circumsphere(key)
        samples = sample_sphere_array(center, circumradius, t, rng)
        value, point = _best_sample_for_cell(samples, ball_indices, scaled_array, weight_array,
                                             probe_depths=probe_kernel)
        if point is not None and value > best_value:
            best_value = value
            best_point = point

    if best_point is None:
        # Degenerate fall-back: report the heaviest input point as the center.
        heaviest = max(range(len(coords)), key=lambda i: weight_list[i])
        best_point = scaled[heaviest]
        best_value = weight_list[heaviest]

    original_center = tuple(c * radius for c in best_point)
    return MaxRSResult(
        value=best_value,
        center=original_center,
        shape="ball",
        exact=False,
        meta={
            "epsilon": epsilon,
            "n": len(coords),
            "samples_per_cell": t,
            "non_empty_cells": len(cell_to_balls),
            "cells_evaluated": cells_evaluated,
            "grids": len(grids),
            "guarantee": 0.5 - epsilon,
        },
    )


def estimate_opt_ball(
    points: Sequence,
    radius: float = 1.0,
    *,
    weights: Optional[Sequence[float]] = None,
    seed=None,
    sample_constant: float = 1.0,
    shift_cap: Optional[int] = None,
    backend: str = "auto",
) -> float:
    """Constant-factor estimate of ``opt`` used as a subroutine by other algorithms.

    Runs Theorem 1.2 with ``eps = 1/4`` so the returned value ``opt'``
    satisfies ``opt / 4 <= opt' <= opt`` with high probability.
    """
    result = max_range_sum_ball(
        points,
        radius=radius,
        epsilon=0.25,
        weights=weights,
        seed=seed,
        sample_constant=sample_constant,
        shift_cap=shift_cap,
        backend=backend,
    )
    return result.value
