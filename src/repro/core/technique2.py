"""Technique 2: output-sensitivity and color sampling (Section 4 of the paper).

All algorithms here solve *colored disk MaxRS* in the plane (the dual view:
``n`` colored unit disks, find a point covered by the maximum number of
distinct colors).  Three levels are provided, mirroring Section 4:

``colored_maxrs_disk_arrangement``
    The *first algorithm* (Lemma 4.2): merge the disks of each color into a
    union region, decompose the plane by the boundary arcs and find the
    deepest cell.  Exact; expected time ``O(n log n + k)`` where ``k`` is the
    number of bichromatic boundary intersections.

``colored_maxrs_disk_output_sensitive``
    The *second algorithm* (Theorem 4.6): a Lemma 2.1 grid with unit cells
    localises the problem; inside every cell the disks that do not contain a
    cell corner are discarded (Lemma 4.3), bounding the number of colors per
    cell by ``4 * opt`` and hence the total work by ``O(n log n + n * opt)``.
    Exact.

``colored_maxrs_disk``
    The *final algorithm* (Theorem 1.6): estimate ``opt`` with Technique 1,
    randomly sample colors with probability ``~ log n / (eps^2 opt')``, and
    run the output-sensitive algorithm on the sampled colors.  Returns a
    ``(1 - eps)``-approximation with high probability in expected
    ``O(eps^-2 n log n)`` time.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..arrangement.decomposition import (
    bichromatic_intersection_points,
    max_colored_depth_from_arcs,
)
from ..arrangement.union import union_boundary_arcs
from ..kernels import get_kernel
from ._inputs import normalize_colored
from .colored import estimate_colored_opt_ball
from .depth import colored_depth
from .geometry import point_in_ball
from .grids import GridCollection
from .result import MaxRSResult
from .sampling import default_rng

__all__ = [
    "colored_maxrs_disk_arrangement",
    "colored_maxrs_disk_output_sensitive",
    "colored_maxrs_disk",
]


# --------------------------------------------------------------------------- #
# The first algorithm (Lemma 4.2)
# --------------------------------------------------------------------------- #

def _group_by_color(
    coords: Sequence[Tuple[float, float]], colors: Sequence[Hashable]
) -> Dict[Hashable, List[Tuple[float, float]]]:
    groups: Dict[Hashable, List[Tuple[float, float]]] = {}
    for point, color in zip(coords, colors):
        groups.setdefault(color, []).append(point)
    return groups


def _arrangement_best_point(
    coords: Sequence[Tuple[float, float]],
    colors: Sequence[Hashable],
    radius: float,
    backend: str = "auto",
) -> Tuple[int, Optional[Tuple[float, float]], int]:
    """Core of Lemma 4.2: returns ``(depth, witness point, k)``.

    ``k`` is the number of bichromatic boundary intersections (the
    output-sensitivity parameter measured by experiment E4).  Besides the
    deepest open cell of the decomposition, the arrangement *vertices* are
    also evaluated: with closed disks a degenerate input (several circles
    through one point) can attain its maximum only there, and the exact
    sweep baseline counts such points, so this keeps the two exact solvers
    in agreement even off general position.  The vertex depths are computed
    in one batch by the selected kernel backend (:mod:`repro.kernels`).
    """
    if not coords:
        return 0, None, 0
    arcs = []
    for color, members in _group_by_color(coords, colors).items():
        arcs.extend(union_boundary_arcs(members, radius, color))
    vertices = bichromatic_intersection_points(arcs)
    k = len(vertices)
    depth, witness = max_colored_depth_from_arcs(arcs)
    best_depth = depth if witness is not None else 0
    best_point = witness
    if vertices:
        depth_kernel = get_kernel(backend, "colored_depth_batch", len(coords))
        for vertex, vertex_depth in zip(
            vertices, depth_kernel(vertices, coords, colors, radius)
        ):
            if vertex_depth > best_depth:
                best_depth = int(vertex_depth)
                best_point = vertex
    return best_depth, best_point, k


def colored_maxrs_disk_arrangement(
    points: Sequence,
    radius: float = 1.0,
    *,
    colors: Optional[Sequence[Hashable]] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """Exact colored disk MaxRS through the union/trapezoidal-map route (Lemma 4.2).

    ``backend`` selects the kernel backend for the batched vertex-depth
    evaluation (see :mod:`repro.kernels`).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    coords, color_list, dim = normalize_colored(points, colors)
    if coords and dim != 2:
        raise ValueError("colored_maxrs_disk_arrangement expects points in the plane")
    if not coords:
        return MaxRSResult(value=0, center=None, shape="ball", exact=True,
                           meta={"radius": radius, "n": 0})

    depth, witness, k = _arrangement_best_point(coords, color_list, radius, backend=backend)
    if witness is None:
        witness = coords[0]
    # Report the true colored depth of the witness with respect to the full
    # input; under general position this equals the cell depth found above.
    value = colored_depth(witness, coords, color_list, radius)
    return MaxRSResult(
        value=value,
        center=witness,
        shape="ball",
        exact=True,
        meta={
            "radius": radius,
            "n": len(coords),
            "colors": len(set(color_list)),
            "bichromatic_intersections": k,
            "cell_depth": depth,
        },
    )


# --------------------------------------------------------------------------- #
# The second algorithm (Theorem 4.6)
# --------------------------------------------------------------------------- #

def colored_maxrs_disk_output_sensitive(
    points: Sequence,
    radius: float = 1.0,
    *,
    colors: Optional[Sequence[Hashable]] = None,
    shift_cap: Optional[int] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """Exact colored disk MaxRS in ``O(n log n + n * opt)`` expected time (Theorem 4.6).

    A Lemma 2.1 grid family with cell side 1 and nearness 0.25 (in units of
    the disk radius) localises the problem.  Within every non-empty cell only
    the disks containing at least one cell corner are kept (Lemma 4.3 shows
    this never discards a disk containing the optimum in the grid where the
    optimum is 0.25-near, and bounds the surviving colors by ``4 * opt``);
    Lemma 4.2's algorithm then solves each cell.

    ``shift_cap`` limits the number of grid shifts per axis (ablations only;
    the faithful Lemma 2.1 family uses ``ceil(sqrt(2) / 0.25) = 6`` shifts).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    coords, color_list, dim = normalize_colored(points, colors)
    if coords and dim != 2:
        raise ValueError("colored_maxrs_disk_output_sensitive expects points in the plane")
    if not coords:
        return MaxRSResult(value=0, center=None, shape="ball", exact=True,
                           meta={"radius": radius, "n": 0})

    scale = 1.0 / radius
    scaled = [(x * scale, y * scale) for x, y in coords]
    grid_family = GridCollection(dim=2, side=1.0, delta=0.25, shift_cap=shift_cap)

    best_depth = 0
    best_witness: Optional[Tuple[float, float]] = None
    cells_solved = 0
    max_k = 0
    for grid_index, grid in enumerate(grid_family):
        # Bucket disks by the cells they intersect (each unit disk meets O(1) cells).
        cell_to_disks: Dict[Tuple[int, ...], List[int]] = {}
        for index, center in enumerate(scaled):
            for cell in grid.cells_intersecting_ball(center, 1.0):
                cell_to_disks.setdefault(cell, []).append(index)

        for cell, disk_indices in cell_to_disks.items():
            corners = list(grid.cell_corners(cell))
            kept = [
                i for i in disk_indices
                if any(point_in_ball(corner, scaled[i], 1.0) for corner in corners)
            ]
            if not kept:
                continue
            cell_colors = [color_list[i] for i in kept]
            if len(set(cell_colors)) <= best_depth:
                # This cell cannot beat the best subproblem found so far; the
                # skip never discards the optimum because the winning cell's
                # distinct-color count is at least its depth.
                continue
            cells_solved += 1
            cell_coords = [scaled[i] for i in kept]
            depth, witness, k = _arrangement_best_point(cell_coords, cell_colors, 1.0,
                                                        backend=backend)
            max_k = max(max_k, k)
            if depth > best_depth and witness is not None:
                best_depth = depth
                best_witness = witness

    if best_witness is None:
        best_witness = scaled[0]
    original_witness = (best_witness[0] * radius, best_witness[1] * radius)
    value = colored_depth(original_witness, coords, color_list, radius)
    return MaxRSResult(
        value=value,
        center=original_witness,
        shape="ball",
        exact=True,
        meta={
            "radius": radius,
            "n": len(coords),
            "colors": len(set(color_list)),
            "grids": len(grid_family),
            "cells_solved": cells_solved,
            "max_bichromatic_intersections": max_k,
        },
    )


# --------------------------------------------------------------------------- #
# The final algorithm (Theorem 1.6)
# --------------------------------------------------------------------------- #

def colored_maxrs_disk(
    points: Sequence,
    radius: float = 1.0,
    epsilon: float = 0.2,
    *,
    colors: Optional[Sequence[Hashable]] = None,
    seed=None,
    sampling_constant: float = 2.0,
    estimator_sample_constant: float = 1.0,
    shift_cap: Optional[int] = None,
    backend: str = "auto",
) -> MaxRSResult:
    """(1 - eps)-approximate colored disk MaxRS via color sampling (Theorem 1.6).

    Parameters
    ----------
    points:
        Colored points in the plane.
    radius:
        Disk radius.
    epsilon:
        Approximation parameter in ``(0, 1)``.
    colors:
        Optional explicit colors (otherwise taken from ``ColoredPoint`` inputs).
    seed:
        Seed or numpy Generator driving both the opt estimation and the color
        sampling.
    sampling_constant:
        The constant ``c_1`` in the color-sampling probability
        ``lambda = c_1 log n / (eps^2 opt')`` and in the "small opt" cut-off.
    estimator_sample_constant:
        Sample-size constant forwarded to the Theorem 1.5 estimator.
    shift_cap:
        Optional cap forwarded to the output-sensitive solver (ablations).
    backend:
        Kernel backend forwarded to the output-sensitive solver's
        vertex-depth evaluation (see :mod:`repro.kernels`).

    Returns
    -------
    MaxRSResult
        ``value`` is the true colored depth (w.r.t. the full input) of the
        returned center, which is at least ``(1 - eps) * opt`` with high
        probability.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    coords, color_list, dim = normalize_colored(points, colors)
    if coords and dim != 2:
        raise ValueError("colored_maxrs_disk expects points in the plane")
    if not coords:
        return MaxRSResult(value=0, center=None, shape="ball", exact=False,
                           meta={"radius": radius, "n": 0, "epsilon": epsilon})

    rng = default_rng(seed)
    n = len(coords)

    # Phase 0: constant-factor estimate opt' with opt/4 <= opt' <= opt (Theorem 1.5).
    opt_estimate = max(1, estimate_colored_opt_ball(
        coords,
        radius=radius,
        colors=color_list,
        seed=rng,
        sample_constant=estimator_sample_constant,
    ))

    threshold = sampling_constant * (epsilon ** -2) * math.log(max(2, n))
    if opt_estimate <= threshold:
        exact = colored_maxrs_disk_output_sensitive(
            coords, radius=radius, colors=color_list, shift_cap=shift_cap, backend=backend
        )
        meta = dict(exact.meta)
        meta.update({"epsilon": epsilon, "opt_estimate": opt_estimate, "branch": "exact"})
        return MaxRSResult(value=exact.value, center=exact.center, shape="ball",
                           exact=True, meta=meta)

    # Phase 1: sample colors independently with probability lambda.
    lam = min(1.0, sampling_constant * math.log(max(2, n)) / (epsilon ** 2 * opt_estimate))
    distinct_colors = sorted(set(color_list), key=repr)
    chosen = {color for color in distinct_colors if rng.random() < lam}
    sampled_indices = [i for i, color in enumerate(color_list) if color in chosen]
    if not sampled_indices:
        # Degenerate (tiny lambda): fall back to the full exact algorithm.
        sampled_indices = list(range(n))

    sample_coords = [coords[i] for i in sampled_indices]
    sample_colors = [color_list[i] for i in sampled_indices]

    # Phase 2: exact output-sensitive algorithm on the sampled colors.
    sampled_result = colored_maxrs_disk_output_sensitive(
        sample_coords, radius=radius, colors=sample_colors, shift_cap=shift_cap,
        backend=backend
    )
    center = sampled_result.center if sampled_result.center is not None else coords[0]
    value = colored_depth(center, coords, color_list, radius)
    return MaxRSResult(
        value=value,
        center=center,
        shape="ball",
        exact=False,
        meta={
            "radius": radius,
            "n": n,
            "epsilon": epsilon,
            "opt_estimate": opt_estimate,
            "branch": "sampled",
            "lambda": lam,
            "sampled_colors": len(chosen),
            "sampled_points": len(sampled_indices),
            "guarantee": 1.0 - epsilon,
        },
    )
