"""Colored MaxRS with a ``d``-ball via Technique 1 (Theorem 1.5, Section 3.2).

In the dual setting the input is a set of colored unit balls and the goal is
a point covered by the maximum number of *distinctly colored* balls.  The
algorithm is the colored twin of :func:`repro.core.technique1.max_range_sum_ball`:

1. Build the same shifted-grid family and per-cell circumsphere samples.
2. Process the balls grouped (sorted) by color.  Every sample point keeps a
   "most recent color" flag; when a ball of color ``j`` contains the sample
   and the flag differs from ``j``, the flag is set to ``j`` and the colored
   depth is incremented.  This counts each color at most once per sample.
3. Report the sample of maximum colored depth.

The analysis of Section 3 carries over verbatim (the randomized game of
Lemma 3.1 only needs the covering objects to be unit balls), giving a
``(1/2 - eps)`` guarantee with high probability and an
``O(eps^{-2d-2} n log n)`` running time.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ._inputs import normalize_colored
from .result import MaxRSResult
from .sampling import default_rng, sample_size
from .technique1 import CellKey, Technique1Grids, sample_sphere_array

__all__ = ["colored_maxrs_ball", "estimate_colored_opt_ball"]


def _best_colored_sample_for_cell(
    samples: np.ndarray,
    members: Sequence[Tuple[Hashable, int]],
    coords: np.ndarray,
) -> Tuple[int, Optional[Tuple[float, ...]]]:
    """Maximum colored depth among ``samples``.

    ``members`` lists ``(color, ball index)`` pairs grouped by color.  The
    paper processes balls in color order keeping a "most recent color" flag
    per sample so every color is counted at most once; here the same counting
    is done per color group with one vectorised containment test (a sample's
    colored depth increases by one when at least one ball of the group
    contains it), which is semantically identical.
    """
    if samples.size == 0 or not members:
        return 0, None
    indices = np.asarray([ball_index for _color, ball_index in members], dtype=int)
    centers = coords[indices]
    # One containment matrix for the whole cell: (num samples, num balls).
    diff = samples[:, None, :] - centers[None, :, :]
    inside = (diff * diff).sum(axis=2) <= 1.0 + 1e-12
    depths = np.zeros(len(samples), dtype=int)
    position = 0
    total = len(members)
    while position < total:
        color = members[position][0]
        group_start = position
        while position < total and members[position][0] == color:
            position += 1
        depths += inside[:, group_start:position].any(axis=1)
    best_pos = int(np.argmax(depths))
    return int(depths[best_pos]), tuple(float(v) for v in samples[best_pos])


def colored_maxrs_ball(
    points: Sequence,
    radius: float = 1.0,
    epsilon: float = 0.25,
    *,
    colors: Optional[Sequence[Hashable]] = None,
    seed=None,
    sample_constant: float = 1.0,
    shift_cap: Optional[int] = None,
) -> MaxRSResult:
    """(1/2 - eps)-approximate colored MaxRS with a ``d``-ball query (Theorem 1.5).

    Parameters mirror :func:`repro.core.technique1.max_range_sum_ball`, except
    that points carry colors instead of weights and the objective is the
    number of distinct colors covered by the placed ball.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    coords, color_list, dim = normalize_colored(points, colors)
    if not coords:
        return MaxRSResult(value=0, center=None, shape="ball", exact=False,
                           meta={"epsilon": epsilon, "n": 0})

    rng = default_rng(seed)
    scale = 1.0 / radius
    scaled = [tuple(c * scale for c in p) for p in coords]
    scaled_array = np.asarray(scaled, dtype=float)

    grids = Technique1Grids(dim=dim, epsilon=epsilon, shift_cap=shift_cap)
    t = sample_size(epsilon, len(scaled), sample_constant)

    # Bucket (color, ball index) pairs by intersected cell; inserting in color
    # order realises the paper's "process balls grouped by color".
    cell_to_members: Dict[CellKey, List[Tuple[Hashable, int]]] = {}
    order = sorted(range(len(scaled)), key=lambda i: repr(color_list[i]))
    for index in order:
        center = scaled[index]
        color = color_list[index]
        for key in grids.cells_for_unit_ball(center):
            cell_to_members.setdefault(key, []).append((color, index))

    # Visit cells in decreasing order of their trivial upper bound (number of
    # distinct colors among the balls intersecting the cell) and stop once the
    # bound cannot beat the best value found; the (1/2 - eps) guarantee is
    # unaffected (see the analogous comment in technique1.max_range_sum_ball).
    cell_items = sorted(
        cell_to_members.items(),
        key=lambda item: len({color for color, _ in item[1]}),
        reverse=True,
    )
    best_value = 0
    best_point: Optional[Tuple[float, ...]] = None
    cells_evaluated = 0
    for key, members in cell_items:
        upper_bound = len({color for color, _ in members})
        if upper_bound <= best_value:
            break
        cells_evaluated += 1
        center, circumradius = grids.cell_circumsphere(key)
        samples = sample_sphere_array(center, circumradius, t, rng)
        value, point = _best_colored_sample_for_cell(samples, members, scaled_array)
        if point is not None and value > best_value:
            best_value = value
            best_point = point

    if best_point is None:
        best_point = scaled[0]
        best_value = 1

    original_center = tuple(c * radius for c in best_point)
    return MaxRSResult(
        value=best_value,
        center=original_center,
        shape="ball",
        exact=False,
        meta={
            "epsilon": epsilon,
            "n": len(coords),
            "colors": len(set(color_list)),
            "samples_per_cell": t,
            "non_empty_cells": len(cell_to_members),
            "cells_evaluated": cells_evaluated,
            "grids": len(grids),
            "guarantee": 0.5 - epsilon,
        },
    )


def estimate_colored_opt_ball(
    points: Sequence,
    radius: float = 1.0,
    *,
    colors: Optional[Sequence[Hashable]] = None,
    seed=None,
    sample_constant: float = 1.0,
    shift_cap: Optional[int] = None,
) -> int:
    """Constant-factor estimate of the colored ``opt`` (Theorem 1.5 with eps = 1/4).

    Used by the final algorithm of Section 4.4, which needs a value ``opt'``
    with ``opt / 4 <= opt' <= opt`` (with high probability).
    """
    result = colored_maxrs_ball(
        points,
        radius=radius,
        epsilon=0.25,
        colors=colors,
        seed=seed,
        sample_constant=sample_constant,
        shift_cap=shift_cap,
    )
    return int(result.value)
