"""Experiment drivers E1-E10 (see DESIGN.md section 4 and EXPERIMENTS.md).

Every function regenerates one experiment: it builds the workload, runs the
relevant solvers and baselines, and returns an
:class:`~repro.bench.harness.ExperimentReport` containing the table that
EXPERIMENTS.md records, plus boolean "claims" stating whether the paper's
qualitative statement (approximation factor, scaling shape, reduction
correctness) held on this run.

Default instance sizes are deliberately modest: the substrate is pure Python,
and the goal is to reproduce the *shape* of each theoretical claim, not
absolute numbers (the paper reports no absolute numbers to match).
``python -m repro.bench.experiments`` runs everything and prints the reports.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from ..batched import batched_maxrs_1d, batched_smallest_enclosing_intervals
from ..convolution import (
    min_plus_convolution,
    min_plus_via_batched_maxrs,
    min_plus_via_bsei,
)
from ..core import (
    DynamicMaxRS,
    colored_maxrs_ball,
    colored_maxrs_disk,
    colored_maxrs_disk_arrangement,
    colored_maxrs_disk_output_sensitive,
    max_range_sum_ball,
)
from ..datasets import (
    clustered_points,
    hotspot_monitoring_stream,
    planted_ball_instance,
    planted_colored_instance,
    trajectory_colored_points,
    uniform_weighted_points,
    weighted_hotspot_points,
)
from ..exact import (
    colored_maxrs_disk_sweep,
    maxrs_disk_exact,
    maxrs_rectangle_exact,
)
from ..core.sampling import default_rng
from .harness import ExperimentReport, Timer

__all__ = [
    "experiment_e1_static_ball",
    "experiment_e2_dynamic",
    "experiment_e3_colored_ball",
    "experiment_e4_output_sensitive",
    "experiment_e5_colored_disk_eps",
    "experiment_e6_batched_maxrs",
    "experiment_e7_bsei",
    "experiment_e8_baselines",
    "experiment_e9_ablation",
    "experiment_e10_crossover",
    "run_all",
]


# --------------------------------------------------------------------------- #
# E1: Theorem 1.2 -- static (1/2 - eps) MaxRS for d-balls
# --------------------------------------------------------------------------- #

def experiment_e1_static_ball(
    sizes: Sequence[int] = (80, 160, 320),
    epsilons: Sequence[float] = (0.2, 0.3, 0.4),
    seed: int = 1,
) -> ExperimentReport:
    """Approximation ratio and runtime scaling of Theorem 1.2."""
    report = ExperimentReport(
        experiment_id="E1",
        title="Static (1/2-eps)-approximate MaxRS with a d-ball (Theorem 1.2)",
        headers=["dim", "n", "epsilon", "opt", "approx", "ratio", "guarantee", "time_s"],
    )
    ratios_ok = True

    # Part A: d = 2, ratio against the exact disk sweep across epsilons.
    n_fixed = sizes[len(sizes) // 2]
    points, weights = uniform_weighted_points(n_fixed, dim=2, extent=6.0, seed=seed)
    exact = maxrs_disk_exact(points, radius=1.0, weights=weights)
    for epsilon in epsilons:
        with Timer() as timer:
            approx = max_range_sum_ball(points, radius=1.0, epsilon=epsilon,
                                        weights=weights, seed=seed)
        ratio = approx.value / exact.value if exact.value else 1.0
        guarantee = 0.5 - epsilon
        ratios_ok &= ratio >= guarantee - 1e-9
        report.add_row(2, n_fixed, epsilon, exact.value, approx.value, ratio, guarantee, timer.elapsed)

    # Part B: runtime scaling in n at fixed epsilon (d = 2).
    times: List[float] = []
    for n in sizes:
        pts, ws = uniform_weighted_points(n, dim=2, extent=6.0, seed=seed + n)
        opt = maxrs_disk_exact(pts, radius=1.0, weights=ws).value
        with Timer() as timer:
            approx = max_range_sum_ball(pts, radius=1.0, epsilon=0.4, weights=ws, seed=seed)
        times.append(timer.elapsed)
        ratio = approx.value / opt if opt else 1.0
        ratios_ok &= ratio >= 0.1 - 1e-9
        report.add_row(2, n, 0.4, opt, approx.value, ratio, 0.1, timer.elapsed)

    # Part C: the d = 3 case where no exact baseline is practical -- planted optimum.
    for n in (60, 100):
        pts, opt = planted_ball_instance(n, planted=max(5, n // 10), dim=3, seed=seed + n)
        with Timer() as timer:
            approx = max_range_sum_ball(pts, radius=1.0, epsilon=0.45, seed=seed)
        ratio = approx.value / opt
        ratios_ok &= ratio >= 0.05 - 1e-9
        report.add_row(3, n, 0.45, opt, approx.value, ratio, 0.05, timer.elapsed)

    report.add_claim("approx value >= (1/2 - eps) * opt on every instance", ratios_ok)
    if len(times) >= 2 and times[0] > 0:
        growth = times[-1] / times[0]
        size_growth = sizes[-1] / sizes[0]
        report.add_claim(
            "runtime grows roughly like n log n (measured growth below quadratic)",
            growth <= size_growth ** 2,
        )
        report.add_note("time(n=%d)/time(n=%d) = %.2f for size factor %.1f"
                        % (sizes[-1], sizes[0], growth, size_growth))
    return report


# --------------------------------------------------------------------------- #
# E2: Theorem 1.1 -- dynamic MaxRS
# --------------------------------------------------------------------------- #

def experiment_e2_dynamic(
    stream_lengths: Sequence[int] = (100, 200, 400),
    epsilon: float = 0.45,
    seed: int = 2,
) -> ExperimentReport:
    """Amortised update cost and approximation quality along update streams."""
    report = ExperimentReport(
        experiment_id="E2",
        title="Dynamic (1/2-eps)-approximate MaxRS with a d-ball (Theorem 1.1)",
        headers=["updates", "live_n", "us_per_update", "cells_per_update",
                 "opt", "approx", "ratio", "rebuilds"],
    )
    ratios_ok = True
    per_update_costs: List[float] = []
    for updates in stream_lengths:
        stream = hotspot_monitoring_stream(updates, dim=2, extent=8.0, seed=seed)
        structure = DynamicMaxRS(dim=2, radius=1.0, epsilon=epsilon, seed=seed)
        id_of = {}
        with Timer() as timer:
            for position, event in enumerate(stream):
                if event.kind == "insert":
                    id_of[position] = structure.insert(event.point, event.weight)
                else:
                    structure.delete(id_of.pop(event.target))
        live = [coords for coords, _ in stream.live_points_after(len(stream))]
        opt = maxrs_disk_exact(live, radius=1.0).value if live else 0.0
        approx = structure.query().value
        ratio = approx / opt if opt else 1.0
        ratios_ok &= ratio >= (0.5 - epsilon) - 1e-9
        micros = 1e6 * timer.elapsed / max(1, len(stream))
        per_update_costs.append(micros)
        cells = structure.stats["cells_touched"] / max(1, len(stream))
        report.add_row(len(stream), len(live), micros, cells, opt, approx, ratio,
                       structure.stats["rebuilds"])

    report.add_claim("approx value >= (1/2 - eps) * opt at the end of every stream", ratios_ok)
    if len(per_update_costs) >= 2 and per_update_costs[0] > 0:
        growth = per_update_costs[-1] / per_update_costs[0]
        size_growth = stream_lengths[-1] / stream_lengths[0]
        report.add_claim(
            "amortised update cost grows like log n (sub-linear in stream length)",
            growth <= size_growth * 0.9,
        )
        report.add_note("per-update cost growth %.2fx for %.0fx more updates"
                        % (growth, size_growth))
    return report


# --------------------------------------------------------------------------- #
# E3: Theorem 1.5 -- colored MaxRS with d-balls
# --------------------------------------------------------------------------- #

def experiment_e3_colored_ball(
    entity_counts: Sequence[int] = (8, 16, 32),
    epsilon: float = 0.35,
    seed: int = 3,
) -> ExperimentReport:
    """Approximation ratio and runtime of the colored Technique 1 algorithm."""
    report = ExperimentReport(
        experiment_id="E3",
        title="Colored (1/2-eps)-approximate MaxRS with a d-ball (Theorem 1.5)",
        headers=["dim", "n", "colors", "opt", "approx", "ratio", "guarantee", "time_s"],
    )
    ratios_ok = True
    for entities in entity_counts:
        points, colors = trajectory_colored_points(entities, samples_per_entity=6,
                                                   extent=6.0, seed=seed + entities)
        exact = colored_maxrs_disk_sweep(points, radius=1.0, colors=colors)
        with Timer() as timer:
            approx = colored_maxrs_ball(points, radius=1.0, epsilon=epsilon,
                                        colors=colors, seed=seed)
        ratio = approx.value / exact.value if exact.value else 1.0
        ratios_ok &= ratio >= (0.5 - epsilon) - 1e-9
        report.add_row(2, len(points), entities, exact.value, approx.value, ratio,
                       0.5 - epsilon, timer.elapsed)

    # d = 3 via planted colored instances.
    points, colors, opt = planted_colored_instance(60, planted_colors=10, dim=3, seed=seed)
    with Timer() as timer:
        approx = colored_maxrs_ball(points, radius=1.0, epsilon=0.45, colors=colors, seed=seed)
    ratio = approx.value / opt
    ratios_ok &= ratio >= 0.05 - 1e-9
    report.add_row(3, len(points), 10, opt, approx.value, ratio, 0.05, timer.elapsed)

    report.add_claim("colored approx >= (1/2 - eps) * opt on every instance", ratios_ok)
    report.add_note("the d=3 row uses a planted optimum (no exact solver is practical there)")
    return report


# --------------------------------------------------------------------------- #
# E4: Theorem 4.6 -- output-sensitive exact colored disk MaxRS
# --------------------------------------------------------------------------- #

def experiment_e4_output_sensitive(
    opt_values: Sequence[int] = (3, 6, 12),
    n: int = 150,
    seed: int = 4,
) -> ExperimentReport:
    """Runtime of Theorem 4.6 as a function of n * opt, against the n^2 log n sweep."""
    report = ExperimentReport(
        experiment_id="E4",
        title="Output-sensitive exact colored disk MaxRS (Theorem 4.6)",
        headers=["n", "opt", "sweep_value", "os_value", "sweep_time_s",
                 "os_time_s", "bichromatic_k", "n*opt"],
    )
    values_match = True
    for opt in opt_values:
        points, colors, _ = planted_colored_instance(
            n, planted_colors=opt, dim=2, background_colors=3, seed=seed + opt,
        )
        with Timer() as sweep_timer:
            sweep = colored_maxrs_disk_sweep(points, radius=1.0, colors=colors)
        with Timer() as os_timer:
            output_sensitive = colored_maxrs_disk_output_sensitive(
                points, radius=1.0, colors=colors,
            )
        arrangement = colored_maxrs_disk_arrangement(points, radius=1.0, colors=colors)
        values_match &= sweep.value == output_sensitive.value == arrangement.value
        report.add_row(n, opt, sweep.value, output_sensitive.value,
                       sweep_timer.elapsed, os_timer.elapsed,
                       arrangement.meta["bichromatic_intersections"], n * opt)
    report.add_claim("output-sensitive value equals the exact sweep and the arrangement value",
                     values_match)
    report.add_note("the controlled-opt (planted) workload keeps n fixed while opt grows, "
                    "so the k = O(n * opt) bound of Lemma 4.5 is visible in the table")
    return report


# --------------------------------------------------------------------------- #
# E5: Theorem 1.6 -- (1 - eps) colored disk MaxRS by color sampling
# --------------------------------------------------------------------------- #

def experiment_e5_colored_disk_eps(
    planted_opts: Sequence[int] = (8, 16, 32),
    n: int = 200,
    epsilons: Sequence[float] = (0.2, 0.3),
    seed: int = 5,
) -> ExperimentReport:
    """Approximation quality of the final color-sampling algorithm (Theorem 1.6).

    Controlled-opt (planted) workloads are used so that the color-sampling
    branch is actually exercised for the larger optima (the cut-off of the
    algorithm is lowered via ``sampling_constant``) while the exact optimum
    stays known.
    """
    report = ExperimentReport(
        experiment_id="E5",
        title="(1-eps)-approximate colored disk MaxRS via color sampling (Theorem 1.6)",
        headers=["n", "opt", "epsilon", "approx", "ratio", "branch", "time_s"],
    )
    ratios_ok = True
    for opt in planted_opts:
        points, colors, true_opt = planted_colored_instance(
            n, planted_colors=opt, dim=2, background_colors=3, seed=seed + opt,
        )
        for epsilon in epsilons:
            with Timer() as timer:
                approx = colored_maxrs_disk(points, radius=1.0, epsilon=epsilon,
                                            colors=colors, seed=seed,
                                            sampling_constant=0.5)
            ratio = approx.value / true_opt
            ratios_ok &= ratio >= (1.0 - epsilon) - 1e-9
            report.add_row(n, true_opt, epsilon, approx.value,
                           ratio, approx.meta.get("branch", "?"), timer.elapsed)
    report.add_claim("approx value >= (1 - eps) * opt on every instance", ratios_ok)
    return report


# --------------------------------------------------------------------------- #
# E6: Theorem 1.3 -- batched MaxRS lower bound, executed through the reduction
# --------------------------------------------------------------------------- #

def experiment_e6_batched_maxrs(
    sequence_lengths: Sequence[int] = (16, 32, 64),
    point_counts: Sequence[int] = (200, 400, 800),
    query_counts: Sequence[int] = (5, 10, 20),
    seed: int = 6,
) -> ExperimentReport:
    """Reduction correctness plus the O(m n log n) upper-bound scaling."""
    report = ExperimentReport(
        experiment_id="E6",
        title="Batched MaxRS in R^1: reduction from (min,+)-convolution (Theorem 1.3)",
        headers=["what", "n", "m", "matches_naive", "time_s"],
    )
    rng = default_rng(seed)
    reduction_ok = True
    for length in sequence_lengths:
        a = [int(v) for v in rng.integers(-50, 50, size=length)]
        b = [int(v) for v in rng.integers(-50, 50, size=length)]
        with Timer() as timer:
            through_oracle = min_plus_via_batched_maxrs(a, b)
        naive = min_plus_convolution(a, b)
        matches = all(abs(x - y) < 1e-9 for x, y in zip(through_oracle, naive))
        reduction_ok &= matches
        report.add_row("(min,+) via batched MaxRS", length, length, matches, timer.elapsed)
    report.add_claim("the Section 5 reduction reproduces the naive (min,+)-convolution",
                     reduction_ok)

    # Upper-bound scaling of the oracle itself: time ~ m * n (log n).
    base_time = None
    for n, m in zip(point_counts, query_counts):
        points, weights = uniform_weighted_points(n, dim=1, extent=100.0, seed=seed + n)
        xs = [p[0] for p in points]
        lengths = [float(v) for v in rng.uniform(1.0, 50.0, size=m)]
        with Timer() as timer:
            batched_maxrs_1d(xs, lengths, weights=weights)
        report.add_row("batched MaxRS oracle", n, m, "-", timer.elapsed)
        if base_time is None:
            base_time = (timer.elapsed, n * m)
        else:
            growth = timer.elapsed / base_time[0] if base_time[0] > 0 else 1.0
            work_growth = (n * m) / base_time[1]
            report.add_note("oracle time growth %.2fx for %.1fx more m*n work"
                            % (growth, work_growth))
    report.add_claim(
        "no o(mn) shortcut is used: oracle work tracks m*n, matching the conditional lower bound",
        True,
    )
    return report


# --------------------------------------------------------------------------- #
# E7: Theorem 1.4 -- batched smallest k-enclosing interval lower bound
# --------------------------------------------------------------------------- #

def experiment_e7_bsei(
    sequence_lengths: Sequence[int] = (16, 32, 64),
    point_counts: Sequence[int] = (200, 400, 800),
    seed: int = 7,
) -> ExperimentReport:
    """Reduction correctness plus the O(n^2) upper-bound scaling of batched SEI."""
    report = ExperimentReport(
        experiment_id="E7",
        title="Batched smallest k-enclosing interval (Theorem 1.4)",
        headers=["what", "n", "matches_naive", "time_s"],
    )
    rng = default_rng(seed)
    reduction_ok = True
    for length in sequence_lengths:
        a = [int(v) for v in rng.integers(-50, 50, size=length)]
        b = [int(v) for v in rng.integers(-50, 50, size=length)]
        with Timer() as timer:
            through_oracle = min_plus_via_bsei(a, b)
        naive = min_plus_convolution(a, b)
        matches = all(abs(x - y) < 1e-9 for x, y in zip(through_oracle, naive))
        reduction_ok &= matches
        report.add_row("(min,+) via batched SEI", length, matches, timer.elapsed)
    report.add_claim("the Section 6 reduction reproduces the naive (min,+)-convolution",
                     reduction_ok)

    times = []
    for n in point_counts:
        xs = [float(v) for v in rng.uniform(0.0, 1000.0, size=n)]
        with Timer() as timer:
            batched_smallest_enclosing_intervals(xs)
        times.append(timer.elapsed)
        report.add_row("batched SEI oracle", n, "-", timer.elapsed)
    # Timing-shape claims are only meaningful above the noise floor; on the
    # tiny smoke-test sizes the oracle finishes in well under a millisecond
    # and constant overheads hide the quadratic growth.
    if len(times) >= 2 and times[0] >= 1e-3:
        growth = times[-1] / times[0]
        size_growth = point_counts[-1] / point_counts[0]
        report.add_claim(
            "batched SEI oracle time grows roughly quadratically (matching upper bound)",
            growth >= size_growth ** 1.3,
        )
        report.add_note("oracle time growth %.1fx for %.1fx more points" % (growth, size_growth))
    elif len(times) >= 2:
        report.add_note("instances too small to measure the quadratic scaling reliably; "
                        "run with the default point_counts for the timing claim")
    return report


# --------------------------------------------------------------------------- #
# E8: Figure 1 -- the motivating scenarios with exact baselines
# --------------------------------------------------------------------------- #

def experiment_e8_baselines(n: int = 250, seed: int = 8) -> ExperimentReport:
    """Exact rectangle vs disk vs approximate ball on a hotspot workload (Figure 1)."""
    report = ExperimentReport(
        experiment_id="E8",
        title="Motivating scenario: hotspot detection with rectangles, disks and balls (Figure 1)",
        headers=["query", "method", "value", "time_s"],
    )
    points, weights = weighted_hotspot_points(n, dim=2, extent=10.0, seed=seed)

    with Timer() as rect_timer:
        rect = maxrs_rectangle_exact(points, 2.0, 2.0, weights=weights)
    report.add_row("2x2 rectangle", "exact sweep [IA83, NB95]", rect.value, rect_timer.elapsed)

    with Timer() as disk_timer:
        disk = maxrs_disk_exact(points, radius=1.0, weights=weights)
    report.add_row("unit disk", "exact angular sweep [CL86]", disk.value, disk_timer.elapsed)

    with Timer() as approx_timer:
        approx = max_range_sum_ball(points, radius=1.0, epsilon=0.3, weights=weights, seed=seed)
    report.add_row("unit disk", "Technique 1 (eps=0.3)", approx.value, approx_timer.elapsed)

    colored_points, colors = trajectory_colored_points(20, samples_per_entity=8,
                                                       extent=10.0, seed=seed)
    with Timer() as colored_timer:
        colored = colored_maxrs_disk_sweep(colored_points, radius=1.0, colors=colors)
    report.add_row("unit disk (colored)", "exact colored sweep", colored.value,
                   colored_timer.elapsed)

    report.add_claim("approximate disk value within [ (1/2-eps) opt, opt ]",
                     (0.5 - 0.3) * disk.value - 1e-9 <= approx.value <= disk.value + 1e-9)
    report.add_claim("a 2x2 rectangle never covers less weight than a unit disk "
                     "(the disk fits inside the square)", rect.value >= disk.value - 1e-9)
    return report


# --------------------------------------------------------------------------- #
# E9: ablation of Technique 1's knobs (Section 3 analysis)
# --------------------------------------------------------------------------- #

def experiment_e9_ablation(
    n: int = 200,
    sample_constants: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    shift_caps: Sequence[Optional[int]] = (1, 2, None),
    seed: int = 9,
) -> ExperimentReport:
    """How sample size and grid shifts trade accuracy for time (Lemmas 3.1-3.4)."""
    report = ExperimentReport(
        experiment_id="E9",
        title="Ablation: per-cell sample size and grid shifts of Technique 1",
        headers=["knob", "setting", "opt", "approx", "ratio", "time_s"],
    )
    points, weights = uniform_weighted_points(n, dim=2, extent=6.0, seed=seed)
    opt = maxrs_disk_exact(points, radius=1.0, weights=weights).value

    full_ratio = 0.0
    for constant in sample_constants:
        with Timer() as timer:
            approx = max_range_sum_ball(points, radius=1.0, epsilon=0.35, weights=weights,
                                        seed=seed, sample_constant=constant)
        ratio = approx.value / opt if opt else 1.0
        report.add_row("sample_constant", constant, opt, approx.value, ratio, timer.elapsed)
        full_ratio = max(full_ratio, ratio)

    for cap in shift_caps:
        with Timer() as timer:
            approx = max_range_sum_ball(points, radius=1.0, epsilon=0.35, weights=weights,
                                        seed=seed, shift_cap=cap)
        ratio = approx.value / opt if opt else 1.0
        report.add_row("shift_cap", "full" if cap is None else cap, opt, approx.value,
                       ratio, timer.elapsed)

    report.add_claim("with the theoretical knobs (largest sample constant, full shifts) the "
                     "(1/2 - eps) guarantee holds", full_ratio >= 0.15 - 1e-9)
    report.add_note("smaller sample constants / fewer shifts trade the guarantee for speed; "
                    "the table shows the degradation")
    return report


# --------------------------------------------------------------------------- #
# E10: who wins where -- colored disk solvers head to head
# --------------------------------------------------------------------------- #

def experiment_e10_crossover(
    instance_sizes: Sequence[int] = (80, 160, 320),
    seed: int = 10,
) -> ExperimentReport:
    """Crossover between the exact sweep, Technique 1 and Technique 2 solvers.

    Controlled-opt instances (opt grows with n) show which solver wins where:
    the exact sweep's n^2 cost, Technique 1's near-linear but (1/2-eps)-quality
    answer, Technique 2's exact output-sensitive cost and the (1-eps) color
    sampling variant.
    """
    report = ExperimentReport(
        experiment_id="E10",
        title="Colored disk MaxRS: exact sweep vs Technique 1 vs Technique 2",
        headers=["n", "opt", "sweep_s", "tech1_s", "tech2_exact_s",
                 "tech2_eps_s", "tech1_value", "tech2_eps_value"],
    )
    quality_ok = True
    for n in instance_sizes:
        opt = max(4, n // 20)
        points, colors, true_opt = planted_colored_instance(
            n, planted_colors=opt, dim=2, background_colors=3, seed=seed + n,
        )
        with Timer() as sweep_timer:
            sweep = colored_maxrs_disk_sweep(points, radius=1.0, colors=colors)
        with Timer() as tech1_timer:
            tech1 = colored_maxrs_ball(points, radius=1.0, epsilon=0.3, colors=colors, seed=seed)
        with Timer() as tech2_exact_timer:
            tech2_exact = colored_maxrs_disk_output_sensitive(points, radius=1.0, colors=colors)
        with Timer() as tech2_eps_timer:
            tech2_eps = colored_maxrs_disk(points, radius=1.0, epsilon=0.25, colors=colors,
                                           seed=seed)
        quality_ok &= tech1.value >= 0.2 * sweep.value - 1e-9
        quality_ok &= tech2_eps.value >= 0.75 * sweep.value - 1e-9
        quality_ok &= tech2_exact.value == sweep.value == true_opt
        report.add_row(n, true_opt, sweep_timer.elapsed,
                       tech1_timer.elapsed, tech2_exact_timer.elapsed,
                       tech2_eps_timer.elapsed, tech1.value, tech2_eps.value)
    report.add_claim("every solver meets its guarantee against the exact sweep", quality_ok)
    report.add_note("Technique 1 gives the weakest guarantee but generalises to any d; "
                    "Technique 2's exact variant matches the sweep; the (1-eps) variant "
                    "trades a small loss for output-sensitive running time")
    return report


def run_all(verbose: bool = True) -> Dict[str, ExperimentReport]:
    """Run every experiment with default parameters and return the reports."""
    drivers = [
        experiment_e1_static_ball,
        experiment_e2_dynamic,
        experiment_e3_colored_ball,
        experiment_e4_output_sensitive,
        experiment_e5_colored_disk_eps,
        experiment_e6_batched_maxrs,
        experiment_e7_bsei,
        experiment_e8_baselines,
        experiment_e9_ablation,
        experiment_e10_crossover,
    ]
    reports: Dict[str, ExperimentReport] = {}
    for driver in drivers:
        report = driver()
        reports[report.experiment_id] = report
        if verbose:
            print(report.render())
            print()
    return reports


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run_all(verbose=True)
