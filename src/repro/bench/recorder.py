"""Persisting experiment reports and benchmark results to CSV, JSON and JSONL.

``python -m repro experiments run`` can archive the tables it prints so
EXPERIMENTS.md (and any downstream analysis) can be regenerated from files
rather than terminal scrollback, and ``repro bench grid`` persists its
unified benchmark artifacts and the committed perf trajectory through the
same module.  The formats are intentionally plain:

* one CSV file per experiment: the report's header row followed by its data
  rows, then a blank line and the claim outcomes (booleans use the JSON
  spelling ``true``/``false`` so the CSV and JSON archives of one report
  agree);
* a single JSON file for a whole run: experiment id, title, headers, rows,
  claims and notes;
* one JSON document per benchmark grid run (:func:`write_bench_json`,
  schema in :mod:`repro.bench.grid`) and one JSON line per suite run in the
  committed ``PERF_HISTORY.jsonl`` trajectory (:func:`append_history` /
  :func:`load_history`).

Every writer is **atomic**: content lands in a temporary file in the
destination directory which replaces the target via :func:`os.replace` only
after the writer completes, so a crash mid-write can never corrupt a
committed artifact or the perf history.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from typing import Callable, Dict, Iterable, List, Optional, TextIO

from .harness import ExperimentReport

__all__ = [
    "report_to_dict",
    "write_report_csv",
    "write_reports_json",
    "write_reports_csv_dir",
    "atomic_write_text",
    "write_bench_json",
    "append_history",
    "load_history",
]


def atomic_write_text(path: str, write: Callable[[TextIO], object],
                      newline: Optional[str] = None) -> None:
    """Run ``write(handle)`` against a temporary file and atomically replace
    ``path`` with it.

    The temporary file lives in the destination directory (so the final
    :func:`os.replace` stays on one filesystem).  If the writer raises, the
    temporary file is removed and any existing ``path`` is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp",
                                    prefix=os.path.basename(path) + ".")
    try:
        with os.fdopen(fd, "w", newline=newline) as handle:
            write(handle)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def report_to_dict(report: ExperimentReport) -> Dict[str, object]:
    """A JSON-serialisable view of one experiment report."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "headers": list(report.headers),
        "rows": [list(row) for row in report.rows],
        "claims": dict(report.claims),
        "notes": list(report.notes),
        "all_claims_hold": report.all_claims_hold,
    }


def _csv_value(value: object) -> object:
    """CSV cell encoding: booleans use the JSON spelling (``true``/``false``)
    so a report's CSV and JSON archives agree on claim outcomes."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return value


def write_report_csv(report: ExperimentReport, path: str) -> None:
    """Atomically write one report's table (and claim outcomes) as CSV."""
    def _write(handle: TextIO) -> None:
        writer = csv.writer(handle)
        writer.writerow(report.headers)
        for row in report.rows:
            writer.writerow([_csv_value(cell) for cell in row])
        if report.claims:
            writer.writerow([])
            writer.writerow(["claim", "holds"])
            for description, holds in report.claims.items():
                writer.writerow([description, _csv_value(holds)])

    atomic_write_text(path, _write, newline="")


def write_reports_json(reports: Iterable[ExperimentReport], path: str) -> None:
    """Atomically write a collection of reports as one JSON document."""
    payload: List[Dict[str, object]] = [report_to_dict(report) for report in reports]

    def _write(handle: TextIO) -> None:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")

    atomic_write_text(path, _write)


def write_reports_csv_dir(reports: Iterable[ExperimentReport], directory: str) -> List[str]:
    """Write one CSV per report into ``directory``; returns the file paths."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for report in reports:
        path = os.path.join(directory, "%s.csv" % report.experiment_id.lower())
        write_report_csv(report, path)
        paths.append(path)
    return paths


def write_bench_json(payload: Dict[str, object], path: str) -> None:
    """Atomically write one unified benchmark artifact (the versioned
    ``repro-bench-grid`` schema; see :mod:`repro.bench.grid` and
    ``docs/benchmarks.md``)."""
    def _write(handle: TextIO) -> None:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")

    atomic_write_text(path, _write)


def append_history(path: str, entries: Iterable[Dict[str, object]]) -> int:
    """Append one JSON line per entry to the perf-history file.

    The append is implemented as an atomic read-modify-replace of the whole
    file (history files are small), so a crash mid-append can never truncate
    or tear the committed trajectory.  Returns the number of lines appended.
    """
    lines: List[str] = []
    if os.path.exists(path):
        with open(path) as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
    new_lines = [json.dumps(entry, sort_keys=True, default=str) for entry in entries]
    atomic_write_text(path, lambda handle: handle.write(
        "\n".join(lines + new_lines) + "\n"))
    return len(new_lines)


def load_history(path: str) -> List[Dict[str, object]]:
    """Parse a ``PERF_HISTORY.jsonl`` trajectory into a list of entries.

    Blank lines and torn (non-JSON or non-object) lines are skipped so a
    half-written line from a crashed legacy writer cannot poison later
    comparisons.
    """
    entries: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                entries.append(record)
    return entries
