"""Persisting experiment reports to CSV and JSON.

``python -m repro experiments run`` can archive the tables it prints so
EXPERIMENTS.md (and any downstream analysis) can be regenerated from files
rather than terminal scrollback.  The formats are intentionally plain:

* one CSV file per experiment: the report's header row followed by its data
  rows, then a blank line and the claim outcomes;
* a single JSON file for a whole run: experiment id, title, headers, rows,
  claims and notes.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List

from .harness import ExperimentReport

__all__ = [
    "report_to_dict",
    "write_report_csv",
    "write_reports_json",
    "write_reports_csv_dir",
]


def report_to_dict(report: ExperimentReport) -> Dict[str, object]:
    """A JSON-serialisable view of one experiment report."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "headers": list(report.headers),
        "rows": [list(row) for row in report.rows],
        "claims": dict(report.claims),
        "notes": list(report.notes),
        "all_claims_hold": report.all_claims_hold,
    }


def write_report_csv(report: ExperimentReport, path: str) -> None:
    """Write one report's table (and claim outcomes) as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(report.headers)
        for row in report.rows:
            writer.writerow(row)
        if report.claims:
            writer.writerow([])
            writer.writerow(["claim", "holds"])
            for description, holds in report.claims.items():
                writer.writerow([description, holds])


def write_reports_json(reports: Iterable[ExperimentReport], path: str) -> None:
    """Write a collection of reports as one JSON document."""
    payload: List[Dict[str, object]] = [report_to_dict(report) for report in reports]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")


def write_reports_csv_dir(reports: Iterable[ExperimentReport], directory: str) -> List[str]:
    """Write one CSV per report into ``directory``; returns the file paths."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for report in reports:
        path = os.path.join(directory, "%s.csv" % report.experiment_id.lower())
        write_report_csv(report, path)
        paths.append(path)
    return paths
