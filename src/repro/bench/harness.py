"""Small utilities shared by the experiment drivers and the benchmark suite."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Timer", "ExperimentReport", "format_table", "geometric_sizes"]


class Timer:
    """Context manager measuring wall-clock time in seconds."""

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain-text table with right-padded columns."""
    rendered_rows = [[_format_value(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * widths[i] for i in range(len(headers)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered_rows
    ]
    return "\n".join([line, separator] + body)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)


@dataclass
class ExperimentReport:
    """Result of one experiment: a table plus free-form notes.

    ``headers``/``rows`` carry the data the paper-vs-measured comparison in
    EXPERIMENTS.md is based on; ``claims`` summarise whether the theorem's
    qualitative statement held on this run.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    claims: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(list(values))

    def add_claim(self, description: str, holds: bool) -> None:
        self.claims[description] = bool(holds)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claims.values()) if self.claims else True

    def render(self) -> str:
        parts = ["[%s] %s" % (self.experiment_id, self.title),
                 format_table(self.headers, self.rows)]
        if self.claims:
            parts.append("claims:")
            for description, holds in self.claims.items():
                parts.append("  [%s] %s" % ("ok" if holds else "FAIL", description))
        for note in self.notes:
            parts.append("note: %s" % note)
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.render()


def geometric_sizes(start: int, factor: float, count: int) -> List[int]:
    """A geometric progression of instance sizes for scaling experiments."""
    if start < 1 or factor <= 1.0 or count < 1:
        raise ValueError("start >= 1, factor > 1 and count >= 1 are required")
    sizes = []
    current = float(start)
    for _ in range(count):
        sizes.append(int(round(current)))
        current *= factor
    return sizes
