"""Declarative benchmark grids with one unified, versioned result schema.

One grid suite declares a **workload x size x backend x executor** grid
(:class:`GridCase`), runs every cell through the library's real entry
points (engine, kernels, streaming monitors, serving front end, parallel
executors -- see :mod:`repro.bench.suites`) and emits a single
JSON artifact under the ``repro-bench-grid/1`` schema::

    {
      "schema": "repro-bench-grid/1",
      "quick": true,
      "generated_at": "2026-08-08T12:00:00Z",
      "suites": [
        {
          "suite": "kernels",
          "quick": true,
          "config": {"n_sweep": 10000, ...},
          "cases": [
            {"id": "kernels/rectangle_sweep/n=10000/backend=numpy",
             "axes": {"workload": "rectangle_sweep", "size": 10000,
                      "backend": "numpy", "executor": null},
             "metrics": {"seconds": 0.61, "value": 24.80}},
            ...
          ],
          "checks":  [{"name": "...", "passed": true, "detail": "..."}],
          "summary": {"speedup_rectangle_sweep": 10.7, ...},
          "gates":   {"speedup_rectangle_sweep": 10.7},
          "span_summary": {...}                    // optional, repro.obs
        }
      ]
    }

``checks`` are hard correctness gates (backend agreement, bit-for-bit
executor equivalence, differential serving answers): any failed check makes
the run exit non-zero.  ``gates`` are the machine-portable *ratio* metrics
(speedups, throughput ratios) the noise-band comparator
(:mod:`repro.bench.compare`) tracks against the committed
``PERF_HISTORY.jsonl`` trajectory; ``summary`` additionally carries
non-gated context metrics.  Each suite run also appends one JSON line --
``suite``, ``quick``, ``gates``, ``summary``, ``checks_passed`` -- to
``PERF_HISTORY.jsonl`` when a history path is given, building the committed
perf trajectory CI regresses against.

Cases run sequentially in declaration order, so a suite may use an early
case (e.g. a serial baseline) as the reference later cases are checked
against via the shared ``context`` dict.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .recorder import append_history, write_bench_json

__all__ = [
    "BENCH_SCHEMA",
    "GridCase",
    "CaseResult",
    "CheckResult",
    "SuiteRun",
    "GridSuite",
    "timed",
    "capture_spans",
    "run_suite",
    "run_grid",
]

BENCH_SCHEMA = "repro-bench-grid/1"


@dataclass(frozen=True)
class GridCase:
    """One cell of a benchmark grid: workload x size x backend x executor."""

    suite: str
    workload: str
    size: int
    backend: Optional[str] = None
    executor: Optional[str] = None

    @property
    def axes(self) -> Dict[str, object]:
        """The grid coordinates of this cell as a plain dict."""
        return {"workload": self.workload, "size": self.size,
                "backend": self.backend, "executor": self.executor}

    @property
    def case_id(self) -> str:
        """A stable, human-readable identifier for this cell."""
        parts = [self.suite, self.workload, "n=%d" % self.size]
        if self.backend is not None:
            parts.append("backend=%s" % self.backend)
        if self.executor is not None:
            parts.append("executor=%s" % self.executor)
        return "/".join(parts)


@dataclass
class CaseResult:
    """The measured metrics of one grid cell."""

    case_id: str
    axes: Dict[str, object]
    metrics: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (one entry of the artifact's ``cases``)."""
        return {"id": self.case_id, "axes": dict(self.axes),
                "metrics": dict(self.metrics)}


@dataclass
class CheckResult:
    """One correctness gate outcome (agreement, differential, acceptance)."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (one entry of the artifact's ``checks``)."""
        return {"name": self.name, "passed": bool(self.passed),
                "detail": self.detail}


@dataclass
class SuiteRun:
    """Everything one suite run produced: cases, checks, summary, gates."""

    suite: str
    quick: bool
    config: Dict[str, object]
    cases: List[CaseResult]
    checks: List[CheckResult]
    summary: Dict[str, object]
    gates: Dict[str, object]
    span_summary: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """True when every correctness check passed."""
        return all(check.passed for check in self.checks)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (one entry of the artifact's ``suites``)."""
        payload: Dict[str, object] = {
            "suite": self.suite,
            "quick": self.quick,
            "config": dict(self.config),
            "cases": [case.to_dict() for case in self.cases],
            "checks": [check.to_dict() for check in self.checks],
            "summary": dict(self.summary),
            "gates": dict(self.gates),
        }
        if self.span_summary is not None:
            payload["span_summary"] = self.span_summary
        return payload

    def history_entry(self) -> Dict[str, object]:
        """One ``PERF_HISTORY.jsonl`` line for this run."""
        return {
            "schema": BENCH_SCHEMA,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "suite": self.suite,
            "quick": self.quick,
            "cases": len(self.cases),
            "checks_passed": self.ok,
            "gates": dict(self.gates),
            "summary": dict(self.summary),
        }


class GridSuite:
    """Base class for one declarative benchmark grid.

    Subclasses implement :meth:`defaults` (sizes and axes per quick/full
    mode), :meth:`build` (expand the grid into cases plus a shared context),
    :meth:`run_case` (measure one cell) and :meth:`finish` (correctness
    checks + summary/gate metrics over all cells); :meth:`span_probe` may
    additionally record a per-phase :mod:`repro.obs` span summary outside
    the timed cells.
    """

    name = ""
    description = ""

    def defaults(self, quick: bool) -> Dict[str, object]:
        """The suite's default config (sizes, axes) for quick/full mode."""
        raise NotImplementedError

    def build(self, config: Dict[str, object]) -> Tuple[List[GridCase], Dict[str, object]]:
        """Expand the grid into ordered cases and build the shared context."""
        raise NotImplementedError

    def run_case(self, case: GridCase, config: Dict[str, object],
                 context: Dict[str, object]) -> CaseResult:
        """Measure one grid cell."""
        raise NotImplementedError

    def finish(self, results: List[CaseResult], config: Dict[str, object],
               context: Dict[str, object]) -> Tuple[List[CheckResult], Dict[str, object], Dict[str, object]]:
        """Derive ``(checks, summary, gates)`` from the finished cells."""
        raise NotImplementedError

    def span_probe(self, config: Dict[str, object],
                   context: Dict[str, object]) -> Optional[Dict[str, object]]:
        """Optional per-phase span summary recorded outside the timed cells."""
        return None


def timed(function: Callable[[], object], repeats: int = 1) -> Tuple[float, object]:
    """Best-of-``repeats`` wall-clock seconds and the (last) return value."""
    best = math.inf
    value = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        value = function()
        best = min(best, time.perf_counter() - started)
    return best, value


def capture_spans(function: Callable[[], object]) -> Dict[str, object]:
    """Run ``function`` with tracing forced on; returns the per-span-name
    summary (:func:`repro.obs.summarize_spans`) of every captured span."""
    from .. import obs

    sink = obs.ListSink()
    obs.add_sink(sink)
    previous = obs.set_enabled(True)
    try:
        function()
    finally:
        obs.set_enabled(previous)
        obs.remove_sink(sink)
    return obs.summarize_spans(sink.spans())


def _log(log: Optional[Callable[[str], object]], message: str) -> None:
    if log is not None:
        log(message)


def run_suite(name: str, quick: bool = False,
              overrides: Optional[Dict[str, object]] = None,
              spans: bool = True,
              log: Optional[Callable[[str], object]] = print) -> SuiteRun:
    """Run one grid suite end to end and return its :class:`SuiteRun`.

    ``overrides`` merges over the suite's :meth:`GridSuite.defaults` (the
    CLI exposes this as ``--set key=value``); ``spans=False`` skips the
    optional span probe.
    """
    from .suites import get_suite

    suite = get_suite(name)
    config = dict(suite.defaults(quick))
    config.update(overrides or {})
    config["quick"] = bool(quick)
    cases, context = suite.build(config)
    _log(log, "[%s] %d cases (%s)" % (suite.name, len(cases),
                                      "quick" if quick else "full"))
    results: List[CaseResult] = []
    for case in cases:
        result = suite.run_case(case, config, context)
        results.append(result)
        seconds = result.metrics.get("seconds")
        _log(log, "  %-58s %s" % (
            result.case_id,
            "%8.3fs" % seconds if isinstance(seconds, (int, float)) else ""))
    checks, summary, gates = suite.finish(results, config, context)
    span_summary = suite.span_probe(config, context) if spans else None
    for check in checks:
        _log(log, "  check %-50s [%s]%s" % (
            check.name, "ok" if check.passed else "FAIL",
            "" if check.passed else " " + check.detail))
    if summary:
        _log(log, "  summary: %s" % summary)
    return SuiteRun(suite=suite.name, quick=bool(quick), config=config,
                    cases=results, checks=checks, summary=summary,
                    gates=gates, span_summary=span_summary)


def run_grid(names: Optional[Sequence[str]] = None, quick: bool = False,
             output: str = "BENCH_grid.json",
             history: Optional[str] = None,
             overrides: Optional[Dict[str, object]] = None,
             spans: bool = True,
             log: Optional[Callable[[str], object]] = print) -> int:
    """Run the named suites (default: all), write one unified artifact and
    optionally append each suite's history line; returns the exit code
    (1 on any failed correctness check, else 0)."""
    from .suites import SUITES

    wanted = list(names) if names else sorted(SUITES)
    runs = [run_suite(name, quick=quick, overrides=overrides,
                      spans=spans, log=log) for name in wanted]
    payload = {
        "schema": BENCH_SCHEMA,
        "quick": bool(quick),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "suites": [run.to_dict() for run in runs],
    }
    write_bench_json(payload, output)
    _log(log, "wrote %s" % output)
    if history:
        appended = append_history(history, [run.history_entry() for run in runs])
        _log(log, "appended %d entries to %s" % (appended, history))
    failed = [(run.suite, check) for run in runs
              for check in run.checks if not check.passed]
    if failed:
        for suite_name, check in failed:
            _log(log, "FAIL [%s] %s: %s" % (suite_name, check.name, check.detail))
        return 1
    return 0
