"""Noise-band regression comparison against the committed perf trajectory.

``repro bench compare`` loads the committed ``PERF_HISTORY.jsonl``
trajectory (one JSON line per suite run; see :mod:`repro.bench.grid`), picks
each suite's **latest matching baseline** (same suite name and quick/full
mode) and compares the current artifact's ``gates`` against it:

* gates carry only machine-portable *ratio* metrics (speedups, throughput
  ratios), never raw wall-clock seconds, so a baseline recorded on one
  machine remains meaningful on another;
* each metric's **direction** is inferred from its name: ``speedup``/
  ``per_sec``/``ratio``/``_over_`` metrics regress when they *drop*,
  ``seconds``/``latency`` metrics regress when they *rise*;
* a metric only regresses when it moves beyond the relative **noise band**
  (``--noise 0.25`` = 25 %): benchmark ratios jitter run to run, and a gate
  that fires inside the jitter band would train everyone to ignore it.

A failed correctness check in the current artifact is always a failure,
band or no band.  :func:`self_test` proves the comparator can actually fail
by synthesising a baseline from the current artifact and injecting a
regression twice the noise band -- CI runs it so a silently broken
comparator cannot keep passing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .recorder import load_history

__all__ = [
    "metric_direction",
    "latest_baselines",
    "compare_gates",
    "compare_artifact",
    "self_test",
    "Regression",
]

_LOWER_IS_BETTER = ("seconds", "latency", "_ms", "wait")
_HIGHER_IS_BETTER = ("speedup", "per_sec", "ratio", "_over_", "throughput")


def metric_direction(name: str) -> int:
    """+1 when higher values are better, -1 when lower values are better.

    Unknown names default to higher-is-better, matching the gate contract
    (gates are ratio metrics where bigger means faster).
    """
    lowered = name.lower()
    if any(token in lowered for token in _HIGHER_IS_BETTER):
        return 1
    if any(token in lowered for token in _LOWER_IS_BETTER):
        return -1
    return 1


@dataclass
class Regression:
    """One gate metric that moved beyond the noise band the wrong way."""

    suite: str
    metric: str
    baseline: float
    current: float
    change: float  # signed relative change, positive = improved

    def describe(self) -> str:
        return ("%s/%s regressed %.0f%% beyond the noise band: "
                "baseline %.3f -> current %.3f"
                % (self.suite, self.metric, -100.0 * self.change,
                   self.baseline, self.current))


def latest_baselines(entries: Sequence[Dict[str, object]],
                     quick: Optional[bool] = None) -> Dict[str, Dict[str, object]]:
    """The last history entry per suite, filtered to one quick/full mode.

    History lines are appended chronologically, so "last wins" picks the
    most recent committed baseline for each suite.
    """
    baselines: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        suite = entry.get("suite")
        if not isinstance(suite, str):
            continue
        if quick is not None and bool(entry.get("quick")) != bool(quick):
            continue
        baselines[suite] = entry
    return baselines


def compare_gates(suite: str, baseline_gates: Dict[str, object],
                  current_gates: Dict[str, object],
                  noise: float) -> List[Regression]:
    """Every gate metric present in both dicts that regressed beyond the
    relative noise band, honouring each metric's direction."""
    regressions: List[Regression] = []
    for metric, baseline_value in baseline_gates.items():
        current_value = current_gates.get(metric)
        if (not isinstance(baseline_value, (int, float))
                or not isinstance(current_value, (int, float))
                or isinstance(baseline_value, bool)
                or isinstance(current_value, bool)
                or baseline_value == 0):
            continue
        change = (float(current_value) - float(baseline_value)) \
            / abs(float(baseline_value))
        change *= metric_direction(metric)
        if change < -noise:
            regressions.append(Regression(
                suite=suite, metric=metric,
                baseline=float(baseline_value),
                current=float(current_value), change=change))
    return regressions


def compare_artifact(artifact: Dict[str, object],
                     history: Sequence[Dict[str, object]],
                     noise: float = 0.25,
                     log: Optional[Callable[[str], object]] = print) -> int:
    """Compare one ``repro-bench-grid`` artifact against the history.

    Returns the exit code: 1 when any suite regressed beyond the noise band
    or failed a correctness check, else 0.  Suites with no committed
    baseline are reported and skipped (the next history append becomes
    their baseline).
    """
    def _log(message: str) -> None:
        if log is not None:
            log(message)

    quick = bool(artifact.get("quick"))
    baselines = latest_baselines(history, quick=quick)
    failures = 0
    for suite_payload in artifact.get("suites", []):
        suite = suite_payload.get("suite", "?")
        checks = suite_payload.get("checks", [])
        failed_checks = [check for check in checks if not check.get("passed")]
        for check in failed_checks:
            _log("FAIL [%s] check %r: %s" % (suite, check.get("name"),
                                             check.get("detail", "")))
        failures += len(failed_checks)
        baseline = baselines.get(suite)
        if baseline is None:
            _log("[%s] no committed baseline (quick=%s); skipping gate "
                 "comparison" % (suite, quick))
            continue
        regressions = compare_gates(
            suite, baseline.get("gates", {}) or {},
            suite_payload.get("gates", {}) or {}, noise)
        for regression in regressions:
            _log("FAIL " + regression.describe())
        failures += len(regressions)
        compared = [metric for metric in (baseline.get("gates", {}) or {})
                    if metric in (suite_payload.get("gates", {}) or {})]
        if not regressions:
            _log("[%s] %d gate metrics within the %.0f%% noise band of the "
                 "%s baseline" % (suite, len(compared), 100.0 * noise,
                                  baseline.get("recorded_at", "committed")))
    return 1 if failures else 0


def self_test(artifact: Dict[str, object], noise: float = 0.25,
              log: Optional[Callable[[str], object]] = print) -> int:
    """Prove the comparator can fail: synthesise a baseline from the current
    artifact, inject a regression of twice the noise band into one gate
    metric per suite, and require the comparison to flag every injection.

    Machine-independent by construction (the baseline is this very run), so
    CI can run it on every push.  Returns 0 when the comparator caught all
    injected regressions, 1 otherwise.
    """
    def _log(message: str) -> None:
        if log is not None:
            log(message)

    injected = 0
    caught = 0
    for suite_payload in artifact.get("suites", []):
        suite = suite_payload.get("suite", "?")
        gates = {metric: value
                 for metric, value in (suite_payload.get("gates", {}) or {}).items()
                 if isinstance(value, (int, float))
                 and not isinstance(value, bool) and value != 0}
        if not gates:
            continue
        metric = sorted(gates)[0]
        # Move the metric exactly twice the band in its regressing
        # direction.  (Dividing by ``1 + 2*noise`` instead would shrink the
        # injected drop to ``2n/(1+2n)`` -- inside the band for any
        # ``noise >= 0.5``, so the self-test would fail itself.)
        base = float(gates[metric])
        degraded = dict(gates)
        degraded[metric] = base - metric_direction(metric) * 2.0 * noise * abs(base)
        injected += 1
        regressions = compare_gates(suite, gates, degraded, noise)
        if any(r.metric == metric for r in regressions):
            caught += 1
            _log("[self-test] %s/%s: injected %.0f%% regression caught"
                 % (suite, metric, 200.0 * noise))
        else:
            _log("[self-test] FAIL %s/%s: injected regression NOT caught"
                 % (suite, metric))
    if injected == 0:
        _log("[self-test] FAIL: no numeric gate metrics to inject into")
        return 1
    if caught != injected:
        return 1
    _log("[self-test] comparator caught %d/%d injected regressions"
         % (caught, injected))
    return 0


def load_artifact(path: str) -> Dict[str, object]:
    """Read one ``repro-bench-grid`` JSON artifact."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError("%s: expected a JSON object artifact" % path)
    return payload


def run_compare(current: str, history: str, noise: float = 0.25,
                run_self_test: bool = False,
                log: Optional[Callable[[str], object]] = print) -> int:
    """The ``repro bench compare`` entry point: load artifact + history,
    compare (and optionally self-test); returns the exit code."""
    artifact = load_artifact(current)
    if run_self_test:
        status = self_test(artifact, noise=noise, log=log)
        if status != 0:
            return status
    try:
        entries = load_history(history)
    except FileNotFoundError:
        if log is not None:
            log("no history at %s; nothing to compare against" % history)
        return 0
    return compare_artifact(artifact, entries, noise=noise, log=log)
