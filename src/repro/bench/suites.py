"""The built-in benchmark grid suites.

Each suite here subsumes one of the former ad-hoc benchmark scripts
(``benchmarks/bench_{engine,kernels,streaming,service,parallel}.py`` are now
thin wrappers over these specs) and declares its workload x size x backend x
executor grid through the driver in :mod:`repro.bench.grid`:

* ``kernels``   -- every hot sweep kernel, pure-Python reference vs the
                   vectorised NumPy backend, with cross-backend agreement
                   checks at sizes the unit suite cannot afford;
* ``engine``    -- direct one-shot solver calls vs the sharded execution
                   engine on rectangle (linearithmic) and disk (quadratic)
                   workloads, gated on value equality and, at full size, on
                   the sharded disk path beating the direct sweep outright;
* ``streaming`` -- the exact-recompute baseline vs the dirty-shard monitors
                   (python / batched-auto / threaded) and the multi-query
                   shared store on a localized churn stream, differentially
                   checked on the post-churn optimum;
* ``service``   -- a mixed open-loop request trace through the serial
                   one-query-at-a-time loop and the serving front end per
                   routing mode, with the bit-for-bit differential and the
                   >= 3x service-direct throughput gate, plus a
                   heterogeneous every-query-family trace (differential
                   only);
* ``parallel``  -- the same exact-rectangle batch on the serial, pickle
                   process-pool and zero-copy shared-memory engines, gated
                   bit-for-bit against serial and on shared-process beating
                   process;
* ``serving_slo`` -- the network front end over a real socket: an
                   open-loop loadgen replay of a query-only trace at fixed
                   offered rates (p50/p95/p99 from the scheduled send), the
                   bit-identical wire-vs-``serve_trace`` differential, and
                   a bounded-admission overload case gated on shedding
                   instead of unbounded queue growth;
* ``zoo``       -- the long-tail query families (top-k peels, decayed
                   weights, batched members, colored 3-d boxes) as one
                   heterogeneous trace through the serial loop and the
                   serving front end per routing mode, with the bit-for-bit
                   differential on direct routing, the strict value
                   differential on plan-aware routing (which shards the
                   quadratic top-k members), and the colored box3d solver
                   checked direct vs engine.

All imports of the measured subsystems happen lazily inside the suites so
``import repro.bench`` stays light.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Tuple

from .grid import CaseResult, CheckResult, GridCase, GridSuite, capture_spans, timed

__all__ = ["SUITES", "get_suite",
           "KernelsSuite", "EngineSuite", "StreamingSuite",
           "ServiceSuite", "ParallelSuite", "ZooSuite", "ServingSloSuite"]


def _isclose(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


# --------------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------------- #

class KernelsSuite(GridSuite):
    """Hot sweep kernels: pure-Python reference vs vectorised NumPy."""

    name = "kernels"
    description = ("interval/rectangle/disk sweeps and probe batches, "
                   "python vs numpy backend, agreement-checked")

    def defaults(self, quick: bool) -> Dict[str, object]:
        """Workload sizes (engineering-target sizes at full scale) and the
        backend axis."""
        return {
            "n_sweep": 10_000 if quick else 100_000,
            "n_disk": 2_000 if quick else 10_000,
            "n_probes": 1_000 if quick else 5_000,
            "repeats": 2 if quick else 1,
            "backends": ["python", "numpy"],
        }

    def build(self, config):
        """Generate the four kernel workloads once; grid = kernel x backend."""
        from ..datasets import clustered_points, uniform_weighted_points

        n_sweep = int(config["n_sweep"])
        n_disk = int(config["n_disk"])
        n_probes = int(config["n_probes"])
        sweep_points, sweep_weights = uniform_weighted_points(
            n_sweep, dim=2, extent=math.sqrt(n_sweep) * 0.95, seed=1)
        xs = [p[0] for p in sweep_points]
        disk_points = clustered_points(
            n_disk, dim=2, extent=math.sqrt(n_disk) * 0.8, clusters=6,
            cluster_std=2.0, seed=2)
        disk_weights = [1.0] * n_disk
        probe_centers, probe_weights = uniform_weighted_points(
            n_probes, dim=2, extent=8.0, seed=3)
        probes = [(x + 0.1, y - 0.1) for x, y in probe_centers[:512]]

        def first(result):
            return float(result[0])

        workloads: Dict[str, Tuple[int, Callable, Callable]] = {
            "interval_sweep": (
                n_sweep,
                lambda module: module.interval_sweep(xs, sweep_weights, 2.0, True),
                first),
            "rectangle_sweep": (
                n_sweep,
                lambda module: module.rectangle_sweep(
                    sweep_points, sweep_weights, 2.0, 2.0),
                first),
            "disk_sweep": (
                n_disk,
                lambda module: module.disk_sweep(disk_points, disk_weights, 1.0),
                first),
            "probe_depths": (
                n_probes,
                lambda module: module.probe_depths(
                    probes, probe_centers, probe_weights, 1.0),
                lambda depths: float(max(depths))),
        }
        cases = [GridCase(self.name, workload, n, backend=backend)
                 for workload, (n, _, _) in workloads.items()
                 for backend in config["backends"]]
        return cases, {"workloads": workloads}

    def run_case(self, case, config, context):
        """Best-of-``repeats`` wall clock of one kernel on one backend."""
        from .. import kernels

        n, run, objective = context["workloads"][case.workload]
        module = kernels.get_backend(case.backend)
        seconds, returned = timed(lambda: run(module), int(config["repeats"]))
        return CaseResult(case.case_id, case.axes,
                          {"seconds": round(seconds, 6),
                           "value": objective(returned)})

    def finish(self, results, config, context):
        """Cross-backend agreement per kernel; speedup gates per kernel."""
        checks: List[CheckResult] = []
        summary: Dict[str, object] = {}
        gates: Dict[str, object] = {}
        for workload in context["workloads"]:
            per = {r.axes["backend"]: r for r in results
                   if r.axes["workload"] == workload}
            python, numpy_ = per.get("python"), per.get("numpy")
            if python is None or numpy_ is None:
                continue
            checks.append(CheckResult(
                "%s backend agreement" % workload,
                _isclose(python.metrics["value"], numpy_.metrics["value"]),
                "python=%r numpy=%r" % (python.metrics["value"],
                                        numpy_.metrics["value"])))
            if numpy_.metrics["seconds"] > 0:
                speedup = round(
                    python.metrics["seconds"] / numpy_.metrics["seconds"], 3)
                summary["speedup_%s" % workload] = speedup
                gates["speedup_%s" % workload] = speedup
        return checks, summary, gates


# --------------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------------- #

class EngineSuite(GridSuite):
    """Direct one-shot solver calls vs the sharded execution engine."""

    name = "engine"
    description = ("rectangle (linearithmic) and disk (quadratic) workloads, "
                   "direct sweep vs QueryEngine per executor")

    def defaults(self, quick: bool) -> Dict[str, object]:
        """One size per mode; extents scale with sqrt(n) to hold density."""
        return {
            "n": 4_000 if quick else 12_000,
            "workers": 4,
            "width": 2.0,
            "height": 2.0,
            "radius": 1.0,
            "rect_executors": ["direct", "serial", "thread"],
            "disk_executors": ["direct", "serial"],
        }

    def build(self, config):
        """Uniform weighted cloud (rectangle) + clustered cloud (disk)."""
        from ..datasets import clustered_points, uniform_weighted_points

        n = int(config["n"])
        rect_points, rect_weights = uniform_weighted_points(
            n, dim=2, extent=math.sqrt(n) * 0.55, seed=211)
        disk_points = clustered_points(
            n, dim=2, extent=math.sqrt(n) * 0.73, clusters=6,
            cluster_std=2.0, seed=212)
        cases = [GridCase(self.name, "rectangle", n, executor=executor)
                 for executor in config["rect_executors"]]
        cases += [GridCase(self.name, "disk", n, executor=executor)
                  for executor in config["disk_executors"]]
        return cases, {"rect": (rect_points, rect_weights),
                       "disk": disk_points}

    def run_case(self, case, config, context):
        """'direct' times the one-shot solver; everything else the engine
        (cache cleared, so the solvers are measured, not the LRU)."""
        from ..engine import Query, QueryEngine
        from ..exact import maxrs_disk_exact, maxrs_rectangle_exact

        width, height = float(config["width"]), float(config["height"])
        radius = float(config["radius"])
        if case.workload == "rectangle":
            points, weights = context["rect"]
            query = Query.rectangle(width, height)
        else:
            points, weights = context["disk"], None
            query = Query.disk(radius)

        if case.executor == "direct":
            if case.workload == "rectangle":
                seconds, result = timed(lambda: maxrs_rectangle_exact(
                    points, width=width, height=height, weights=weights))
            else:
                seconds, result = timed(lambda: maxrs_disk_exact(
                    points, radius=radius))
        else:
            with QueryEngine(points, weights=weights, executor=case.executor,
                             workers=int(config["workers"])) as engine:
                def run():
                    engine.clear_cache()
                    return engine.solve(query)
                seconds, result = timed(run)
        return CaseResult(case.case_id, case.axes,
                          {"seconds": round(seconds, 6),
                           "value": result.value,
                           "exact": bool(result.exact)})

    def finish(self, results, config, context):
        """Engine answers must match the direct sweep; at full size the
        sharded disk path must beat the quadratic direct sweep outright."""
        checks: List[CheckResult] = []
        summary: Dict[str, object] = {}
        gates: Dict[str, object] = {}
        for workload in ("rectangle", "disk"):
            per = {r.axes["executor"]: r for r in results
                   if r.axes["workload"] == workload}
            direct = per.get("direct")
            if direct is None:
                continue
            for executor, result in per.items():
                if executor == "direct":
                    continue
                checks.append(CheckResult(
                    "%s %s == direct value" % (workload, executor),
                    _isclose(result.metrics["value"], direct.metrics["value"])
                    and result.metrics["exact"],
                    "engine=%r direct=%r" % (result.metrics["value"],
                                             direct.metrics["value"])))
            serial = per.get("serial")
            if serial is not None and serial.metrics["seconds"] > 0:
                speedup = round(
                    direct.metrics["seconds"] / serial.metrics["seconds"], 3)
                summary["%s_sharded_speedup" % workload] = speedup
                if workload == "disk":
                    gates["disk_sharded_speedup"] = speedup
                    if not config["quick"] and speedup <= 1.0:
                        checks.append(CheckResult(
                            "sharded disk beats the direct quadratic sweep",
                            False, "sharded is only %.2fx at n=%d"
                            % (speedup, config["n"])))
        return checks, summary, gates


# --------------------------------------------------------------------------- #
# streaming
# --------------------------------------------------------------------------- #

def _streaming_workload(n_live: int, churn_events: int, seed: int = 1):
    """Base insertions reaching ``n_live`` live points, then a localized
    churn phase (inserts clustered around a few active sites, deletions
    among points near those same sites -- the hotspot-monitoring regime
    dirty-shard re-solves are built for)."""
    from ..core.sampling import default_rng
    from ..datasets import UpdateEvent, uniform_points

    extent = math.sqrt(n_live) * 0.8
    base = uniform_points(n_live, dim=2, extent=extent, seed=seed)
    rng = default_rng(seed + 1)
    events = [UpdateEvent(kind="insert", point=point) for point in base]
    sites = [base[int(rng.integers(0, n_live))] for _ in range(8)]
    site_reach = 4.5
    local_alive = [
        index for index, (x, y) in enumerate(base)
        if any((x - sx) ** 2 + (y - sy) ** 2 <= site_reach ** 2
               for sx, sy in sites)
    ]
    for _ in range(churn_events):
        if rng.random() < 0.5 and local_alive:
            position = int(rng.integers(0, len(local_alive)))
            events.append(UpdateEvent(kind="delete",
                                      target=local_alive.pop(position)))
        else:
            site = sites[int(rng.integers(0, len(sites)))]
            point = (float(site[0] + rng.normal(0.0, 1.5)),
                     float(site[1] + rng.normal(0.0, 1.5)))
            events.append(UpdateEvent(kind="insert", point=point))
            local_alive.append(len(events) - 1)
    return events, n_live


def _measure_monitor(monitor, events, n_base: int, churn_events: int,
                     query_every: int, batch_size: int, latency_probes: int):
    """Ingest the base set untimed, time the churn phase plus a few
    single-update query latencies; returns (metrics, post-churn value)."""
    from ..datasets import UpdateEvent

    base, churn = events[:n_base], events[n_base:n_base + churn_events]
    monitor.apply_batch(base, 0)
    monitor.current()  # settle: pay the initial full solve outside the clock

    started = time.perf_counter()
    snapshots = monitor.apply_stream(churn, chunk_size=batch_size,
                                     query_every=query_every,
                                     start_index=n_base)
    elapsed = time.perf_counter() - started

    after = monitor.current()
    if isinstance(after, dict):
        value_after_churn = {name: result.value for name, result in after.items()}
    else:
        value_after_churn = after.value

    probe_event = UpdateEvent(kind="insert",
                              point=churn[0].point or (0.0, 0.0))
    latencies = []
    for probe in range(latency_probes):
        monitor.apply(probe_event, len(events) + 1000 + probe)
        probe_started = time.perf_counter()
        monitor.current()
        latencies.append(time.perf_counter() - probe_started)

    metrics = {
        "events": len(churn),
        "queries": len(snapshots),
        "seconds": round(elapsed, 6),
        "events_per_sec": (round(len(churn) / elapsed, 3)
                           if elapsed > 0 else None),
        "mean_query_latency": (round(sum(latencies) / len(latencies), 6)
                               if latencies else None),
    }
    if hasattr(monitor, "close"):
        monitor.close()
    return metrics, value_after_churn


class StreamingSuite(GridSuite):
    """Recompute vs dirty-shard monitors on a localized churn stream."""

    name = "streaming"
    description = ("exact-recompute baseline vs dirty-shard (python/batched/"
                   "threaded) and the multi-query shared store")

    RADIUS = 1.0

    def defaults(self, quick: bool) -> Dict[str, object]:
        """Live-set size, churn lengths (the recompute baseline replays a
        shorter churn: its queries are seconds each) and the query cadence."""
        query_every = 50 if quick else 100
        return {
            "n_live": 5_000 if quick else 50_000,
            "query_every": query_every,
            "baseline_events": 2 * query_every,
            "sharded_events": 600 if quick else 4_000,
            "batch_size": 256,
            "latency_probes": 2 if quick else 3,
            "workers": 4,
        }

    def _variants(self, config):
        """Ordered variant list: (workload, backend, executor, churn)."""
        baseline = int(config["baseline_events"])
        sharded = int(config["sharded_events"])
        return [
            ("recompute", None, None, baseline),
            ("dirty-shard", "python", None, sharded),
            ("dirty-shard", "auto", None, sharded),
            ("dirty-shard", "auto", "thread", sharded),
            ("multi-query", "auto", None, sharded),
        ]

    def build(self, config):
        """One shared event list sized for the longest churn phase."""
        from ..engine import Query

        max_churn = max(churn for _, _, _, churn in self._variants(config))
        events, n_base = _streaming_workload(int(config["n_live"]), max_churn)
        multi_queries = {
            "disk-r": Query.disk(self.RADIUS),
            "disk-0.9r": Query.disk(0.9 * self.RADIUS),
            "rect-1x1": Query.rectangle(self.RADIUS, self.RADIUS),
        }
        cases = [GridCase(self.name, workload, int(config["n_live"]),
                          backend=backend, executor=executor)
                 for workload, backend, executor, _ in self._variants(config)]
        return cases, {"events": events, "n_base": n_base,
                       "multi_queries": multi_queries, "values": {}}

    def _make_monitor(self, case, config, context):
        from ..streaming import (ExactRecomputeMonitor, MultiQueryMonitor,
                                 ShardedMaxRSMonitor)

        if case.workload == "recompute":
            return ExactRecomputeMonitor(radius=self.RADIUS)
        if case.workload == "multi-query":
            return MultiQueryMonitor(context["multi_queries"])
        workers = int(config["workers"]) if case.executor else None
        return ShardedMaxRSMonitor(radius=self.RADIUS, backend=case.backend,
                                   executor=case.executor, workers=workers)

    def run_case(self, case, config, context):
        """Replay this variant's churn; park the post-churn value for the
        differential checks in :meth:`finish`."""
        churn_events = int(config["sharded_events"])
        for workload, backend, executor, events in self._variants(config):
            if (workload == case.workload and backend == case.backend
                    and executor == case.executor):
                churn_events = events
                break
        monitor = self._make_monitor(case, config, context)
        metrics, value = _measure_monitor(
            monitor, context["events"], context["n_base"], churn_events,
            int(config["query_every"]), int(config["batch_size"]),
            int(config["latency_probes"]))
        context["values"][case.case_id] = value
        metrics["value_after_churn"] = value
        return CaseResult(case.case_id, case.axes, metrics)

    def finish(self, results, config, context):
        """Every exact monitor that replayed the same churn must agree on
        the post-churn optimum; the recompute baseline is cross-checked via
        a fresh dirty-shard replay of its (shorter) churn."""
        from ..streaming import ShardedMaxRSMonitor

        by_id = {r.case_id: r for r in results}
        def value_of(workload, backend=None, executor=None):
            case = GridCase(self.name, workload, int(config["n_live"]),
                            backend=backend, executor=executor)
            return context["values"][case.case_id], by_id[case.case_id]

        checks: List[CheckResult] = []
        reference, ref_result = value_of("dirty-shard", "python")
        for backend, executor in (("auto", None), ("auto", "thread")):
            value, _ = value_of("dirty-shard", backend, executor)
            checks.append(CheckResult(
                "dirty-shard/%s/%s vs python" % (backend, executor or "inline"),
                _isclose(value, reference),
                "%r vs %r" % (value, reference)))
        multi_value, multi_result = value_of("multi-query", "auto")
        checks.append(CheckResult(
            "multi-query disk-r vs dirty-shard",
            _isclose(multi_value["disk-r"], reference),
            "%r vs %r" % (multi_value["disk-r"], reference)))
        # Recompute ran a shorter churn; replay that same short churn
        # through a fresh dirty-shard monitor to close the loop.
        recompute_value, recompute_result = value_of("recompute")
        _, cross_value = _measure_monitor(
            ShardedMaxRSMonitor(radius=self.RADIUS), context["events"],
            context["n_base"], int(config["baseline_events"]),
            int(config["query_every"]), int(config["batch_size"]), 0)
        checks.append(CheckResult(
            "dirty-shard vs recompute (short churn)",
            _isclose(cross_value, recompute_value),
            "%r vs %r" % (cross_value, recompute_value)))

        _, batched_result = value_of("dirty-shard", "auto")
        summary: Dict[str, object] = {}
        gates: Dict[str, object] = {}
        if (batched_result.metrics["events_per_sec"]
                and recompute_result.metrics["events_per_sec"]):
            ratio = round(batched_result.metrics["events_per_sec"]
                          / recompute_result.metrics["events_per_sec"], 2)
            summary["dirty_shard_batched_vs_recompute"] = ratio
            gates["dirty_shard_batched_vs_recompute"] = ratio
            if not config["quick"] and ratio < 5.0:
                checks.append(CheckResult(
                    "dirty-shard batched >= 5x recompute at full size",
                    False, "only %.1fx" % ratio))
        if (batched_result.metrics["mean_query_latency"]
                and recompute_result.metrics["mean_query_latency"]):
            latency_ratio = round(
                recompute_result.metrics["mean_query_latency"]
                / batched_result.metrics["mean_query_latency"], 1)
            summary["query_latency_recompute_over_dirty"] = latency_ratio
            gates["query_latency_recompute_over_dirty"] = latency_ratio
        if multi_result.metrics["events_per_sec"]:
            summary["multi_query_events_per_sec"] = \
                multi_result.metrics["events_per_sec"]
        return checks, summary, gates


# --------------------------------------------------------------------------- #
# service
# --------------------------------------------------------------------------- #

class ServiceSuite(GridSuite):
    """Serving front end (coalescing + micro-batching) vs a serial loop."""

    name = "service"
    description = ("mixed Zipf request trace through the serial loop and "
                   "MaxRSService per routing, bit-for-bit differential")

    RADIUS = 0.5
    MIN_SPEEDUP = 3.0

    def defaults(self, quick: bool) -> Dict[str, object]:
        """Trace lengths and dataset sizes (the trace shape is identical in
        quick mode; only the dataset shrinks)."""
        return {
            "requests": 10_000,
            "hetero_requests": 200 if quick else 400,
            "n_points": 400 if quick else 1000,
            "extent": 8.0 if quick else 10.0,
            "window": 64,
            "seed": 11,
            "routings": ["direct", "sharded", "auto"],
        }

    def _headline_catalog(self):
        from ..engine import Query
        catalog = [Query.rectangle(w, h) for w, h in
                   ((1.0, 1.0), (2.0, 1.0), (1.0, 2.0), (2.0, 2.0),
                    (0.5, 0.5), (3.0, 1.5), (1.5, 3.0), (0.75, 1.25))]
        catalog.append(Query.disk(0.4))
        return catalog

    def _hetero_catalog(self):
        from ..engine import Query
        return [
            Query.rectangle(1.0, 1.0),
            Query.rectangle(2.0, 2.0),
            Query.disk(0.4),
            Query.colored_disk(0.75),
            Query.disk_approx(1.0, epsilon=0.4, seed=7),
        ]

    def build(self, config):
        """Dataset + two traces; grid = trace x (serial-loop | routing)."""
        from ..datasets import clustered_points, request_trace

        n_points = int(config["n_points"])
        extent = float(config["extent"])
        seed = int(config["seed"])
        coords = clustered_points(n_points, dim=2, extent=extent, seed=seed)
        colors = [index % 12 for index in range(n_points)]
        traces = {
            "headline": request_trace(
                int(config["requests"]), catalog=self._headline_catalog(),
                shuffle=False, zipf_s=1.3, update_every=100, update_batch=8,
                seed=seed, extent=extent),
            "hetero": request_trace(
                int(config["hetero_requests"]), catalog=self._hetero_catalog(),
                shuffle=False, zipf_s=1.6, update_every=100, update_batch=8,
                seed=seed + 1, extent=extent),
        }
        cases = [GridCase(self.name, "headline", len(traces["headline"]),
                          executor="serial-loop")]
        cases += [GridCase(self.name, "headline", len(traces["headline"]),
                           executor=routing) for routing in config["routings"]]
        cases += [GridCase(self.name, "hetero", len(traces["hetero"]),
                           executor=executor)
                  for executor in ("serial-loop", "direct")]
        return cases, {"coords": coords, "colors": colors, "traces": traces,
                       "baselines": {}, "responses": {}}

    def _run_serial_loop(self, trace, coords, colors):
        """One request at a time, every query a fresh direct solver call."""
        from ..engine.planner import solve_query
        from ..streaming import ShardedMaxRSMonitor

        monitor = ShardedMaxRSMonitor(radius=self.RADIUS)
        answers: List[Optional[Tuple]] = []
        position = 0
        started = time.perf_counter()
        for request in trace:
            if request.kind == "query":
                result = solve_query(request.query, coords, None,
                                     colors if request.query.colored else None)
                answers.append(("q", result.value, result.center, result.exact))
            elif request.kind == "monitor":
                result = monitor.current()
                answers.append(("m", result.value, result.center))
            else:
                for event in request.events:
                    monitor.apply(event, position)
                    position += 1
                answers.append(None)
        elapsed = time.perf_counter() - started
        monitor.close()
        return elapsed, answers

    def _run_service(self, trace, coords, colors, routing, window):
        from ..service import MaxRSService
        from ..streaming import ShardedMaxRSMonitor

        monitor = ShardedMaxRSMonitor(radius=self.RADIUS)
        with MaxRSService(coords, colors=colors, monitor=monitor,
                          routing=routing, cache_ttl=3600.0,
                          max_batch=window) as service:
            report = service.serve_trace(trace, window=window)
            snapshot = service.snapshot()
        return report.elapsed, report.responses, snapshot

    def run_case(self, case, config, context):
        """Replay one trace through one execution mode, parking the answers
        for the differential in :meth:`finish`."""
        trace = context["traces"][case.workload]
        coords, colors = context["coords"], context["colors"]
        if case.executor == "serial-loop":
            elapsed, answers = self._run_serial_loop(trace, coords, colors)
            context["baselines"][case.workload] = answers
            metrics = {"seconds": round(elapsed, 6),
                       "requests_per_sec": round(len(trace) / elapsed, 3)}
        else:
            elapsed, responses, snapshot = self._run_service(
                trace, coords, colors, case.executor, int(config["window"]))
            context["responses"][(case.workload, case.executor)] = responses
            metrics = {"seconds": round(elapsed, 6),
                       "requests_per_sec": round(len(trace) / elapsed, 3),
                       "coalesced": snapshot["coalesced"],
                       "cache_hits": snapshot["cache_hits"],
                       "solver_calls": snapshot["solver_calls"],
                       "latency_p95_seconds": snapshot["latency_p95"]}
        return CaseResult(case.case_id, case.axes, metrics)

    def _differential(self, trace, coords, colors, responses, baseline,
                      check_static_bits):
        """Serving guarantees: direct answers bit-identical to fresh solver
        calls, exact values and monitor reads equal to the serial baseline.
        Returns (checked counts, first failure detail or None)."""
        from ..engine.planner import solve_query

        static_checked = monitor_checked = 0
        memo: Dict[object, Tuple] = {}
        for index, (request, response) in enumerate(zip(trace, responses)):
            if response.error is not None:
                return (static_checked, monitor_checked,
                        "request %d failed: %r" % (index, response.error))
            answer = baseline[index]
            if request.kind == "query":
                if check_static_bits:
                    served = response.served_query
                    if served not in memo:
                        reference = solve_query(
                            served, coords, None,
                            colors if served.colored else None)
                        memo[served] = (reference.value, reference.center,
                                        reference.exact)
                    if memo[served] != (response.result.value,
                                        response.result.center,
                                        response.result.exact):
                        return (static_checked, monitor_checked,
                                "request %d: served answer differs from the "
                                "direct call for %s" % (index, served.describe()))
                if request.query.exact and response.result.value != answer[1]:
                    return (static_checked, monitor_checked,
                            "request %d: value %r != baseline %r"
                            % (index, response.result.value, answer[1]))
                static_checked += 1
            elif request.kind == "monitor":
                if (response.result.value, response.result.center) != answer[1:]:
                    return (static_checked, monitor_checked,
                            "request %d: monitor read drifted" % index)
                monitor_checked += 1
        return static_checked, monitor_checked, None

    def finish(self, results, config, context):
        """Differential per routing + the >= 3x service-direct gate."""
        by_key = {(r.axes["workload"], r.axes["executor"]): r for r in results}
        checks: List[CheckResult] = []
        summary: Dict[str, object] = {}
        gates: Dict[str, object] = {}
        for (workload, routing), responses in sorted(context["responses"].items()):
            trace = context["traces"][workload]
            static, monitor, failure = self._differential(
                trace, context["coords"], context["colors"], responses,
                context["baselines"][workload],
                check_static_bits=(routing == "direct"))
            checks.append(CheckResult(
                "%s %s differential (%d static + %d monitor)"
                % (workload, routing, static, monitor),
                failure is None, failure or ""))
        serial = by_key[("headline", "serial-loop")]
        for routing in config["routings"]:
            variant = by_key.get(("headline", routing))
            if variant is None:
                continue
            speedup = round(variant.metrics["requests_per_sec"]
                            / serial.metrics["requests_per_sec"], 2)
            summary["speedup_%s_vs_serial" % routing] = speedup
        direct_speedup = summary.get("speedup_direct_vs_serial")
        if direct_speedup is not None:
            gates["speedup_direct_vs_serial"] = direct_speedup
            checks.append(CheckResult(
                "service-direct >= %.1fx the serial loop" % self.MIN_SPEEDUP,
                direct_speedup >= self.MIN_SPEEDUP,
                "measured %.2fx" % direct_speedup))
        return checks, summary, gates

    def span_probe(self, config, context):
        """One small traced sharded replay so the artifact records *where*
        serving time goes (flush vs static solving vs kernel work)."""
        from ..datasets import request_trace

        trace = request_trace(300, catalog=self._headline_catalog(),
                              shuffle=False, zipf_s=1.3, update_every=100,
                              update_batch=8, seed=int(config["seed"]) + 2,
                              extent=float(config["extent"]))
        spans = capture_spans(lambda: self._run_service(
            trace, context["coords"], context["colors"], "sharded",
            int(config["window"])))
        return {"requests": len(trace), "routing": "sharded", "spans": spans}


# --------------------------------------------------------------------------- #
# zoo
# --------------------------------------------------------------------------- #

class ZooSuite(ServiceSuite):
    """The long-tail query families served as one heterogeneous trace.

    Reuses the :class:`ServiceSuite` trace/differential machinery over a
    trace that mixes top-k, decayed and batched queries into the headline
    shapes (:func:`repro.datasets.requests.zoo_query_catalog`), plus a
    colored box3d workload checked direct vs the sharded engine.  The
    dataset is unweighted on purpose: every top-k / batched optimum is then
    an integer count, so the strict per-request value equality of the
    differential is safe even for the sharded answers plan-aware routing
    produces (decayed queries always route direct -- their weights depend
    on global arrival order -- so they stay bit-identical regardless).
    """

    name = "zoo"
    description = ("topk/decayed/batched trace through the serial loop and "
                   "MaxRSService per routing, plus colored box3d direct vs "
                   "engine, differentially gated")

    RADIUS = 0.5

    def defaults(self, quick: bool) -> Dict[str, object]:
        """Trace length, planar dataset size and the 3-d box dataset size."""
        return {
            "requests": 300 if quick else 600,
            "n_points": 400 if quick else 900,
            "n_box": 240 if quick else 600,
            "extent": 8.0 if quick else 10.0,
            "window": 64,
            "seed": 23,
            "routings": ["direct", "auto"],
            "families": ["topk", "decayed", "batched"],
        }

    def _base_catalog(self):
        from ..engine import Query
        return [Query.rectangle(1.0, 1.0), Query.disk(0.4)]

    def build(self, config):
        """Planar dataset + zoo trace; 3-d colored dataset for the box."""
        from ..datasets import (clustered_points, request_trace,
                                trajectory_colored_points)
        from ..engine import Query

        n_points = int(config["n_points"])
        extent = float(config["extent"])
        seed = int(config["seed"])
        coords = clustered_points(n_points, dim=2, extent=extent, seed=seed)
        n_box = int(config["n_box"])
        entities = 12
        box_points, box_colors = trajectory_colored_points(
            entities, samples_per_entity=max(1, n_box // entities), dim=3,
            extent=extent, seed=seed + 1)
        traces = {
            # families_backend is pinned: "auto" resolves per micro-batch in
            # the service but per call in the serial loop, which flips
            # kernels near the threshold and breaks the strict decayed-value
            # differential in the last float bits.
            "zoo": request_trace(
                int(config["requests"]), catalog=self._base_catalog(),
                families=tuple(config["families"]),
                families_backend="numpy", shuffle=False,
                zipf_s=1.2, update_every=120, update_batch=8, seed=seed,
                extent=extent),
        }
        cases = [GridCase(self.name, "zoo", len(traces["zoo"]),
                          executor="serial-loop")]
        cases += [GridCase(self.name, "zoo", len(traces["zoo"]),
                           executor=routing) for routing in config["routings"]]
        cases += [GridCase(self.name, "box3d", len(box_points),
                           executor=executor)
                  for executor in ("direct", "serial")]
        return cases, {"coords": coords, "colors": None, "traces": traces,
                       "box": (box_points, box_colors),
                       "box_query": Query.colored_box3d(1.5, 1.5, 1.5),
                       "baselines": {}, "responses": {}, "box_results": {}}

    def run_case(self, case, config, context):
        """Zoo-trace cells reuse the service machinery; box3d cells time the
        direct solver call vs the sharded engine."""
        if case.workload != "box3d":
            return super().run_case(case, config, context)
        from ..boxes import colored_maxrs_box3d_exact
        from ..engine import QueryEngine

        points, colors = context["box"]
        query = context["box_query"]
        if case.executor == "direct":
            seconds, result = timed(lambda: colored_maxrs_box3d_exact(
                points, (query.width, query.height, query.depth),
                colors=colors))
        else:
            with QueryEngine(points, colors=colors,
                             executor=case.executor) as engine:
                def run():
                    engine.clear_cache()
                    return engine.solve(query)
                seconds, result = timed(run)
        context["box_results"][case.executor] = result
        return CaseResult(case.case_id, case.axes,
                          {"seconds": round(seconds, 6),
                           "value": result.value,
                           "exact": bool(result.exact)})

    def finish(self, results, config, context):
        """Differential per routing (bit-for-bit on direct), the box3d
        engine agreement check and the portable speedup gates."""
        by_key = {(r.axes["workload"], r.axes["executor"]): r for r in results}
        checks: List[CheckResult] = []
        summary: Dict[str, object] = {}
        gates: Dict[str, object] = {}
        for (workload, routing), responses in sorted(context["responses"].items()):
            trace = context["traces"][workload]
            static, monitor, failure = self._differential(
                trace, context["coords"], context["colors"], responses,
                context["baselines"][workload],
                check_static_bits=(routing == "direct"))
            checks.append(CheckResult(
                "%s %s differential (%d static + %d monitor)"
                % (workload, routing, static, monitor),
                failure is None, failure or ""))
        serial = by_key[("zoo", "serial-loop")]
        for routing in config["routings"]:
            variant = by_key.get(("zoo", routing))
            if variant is None:
                continue
            speedup = round(variant.metrics["requests_per_sec"]
                            / serial.metrics["requests_per_sec"], 2)
            summary["speedup_%s_vs_serial" % routing] = speedup
        if "speedup_direct_vs_serial" in summary:
            gates["speedup_direct_vs_serial"] = \
                summary["speedup_direct_vs_serial"]
        direct_box = context["box_results"].get("direct")
        engine_box = context["box_results"].get("serial")
        if direct_box is not None and engine_box is not None:
            checks.append(CheckResult(
                "box3d engine == direct value",
                _isclose(engine_box.value, direct_box.value)
                and engine_box.exact,
                "engine=%r direct=%r" % (engine_box.value, direct_box.value)))
            direct_case = by_key[("box3d", "direct")]
            engine_case = by_key[("box3d", "serial")]
            if engine_case.metrics["seconds"] > 0:
                ratio = round(direct_case.metrics["seconds"]
                              / engine_case.metrics["seconds"], 3)
                summary["box3d_sharded_speedup"] = ratio
                gates["box3d_sharded_speedup"] = ratio
        return checks, summary, gates

    def span_probe(self, config, context):
        """One small traced plan-aware replay of a zoo trace, so the
        artifact records where the peel rounds and direct detours go."""
        from ..datasets import request_trace

        trace = request_trace(150, catalog=self._base_catalog(),
                              families=tuple(config["families"]),
                              families_backend="numpy",
                              shuffle=False, zipf_s=1.2, update_every=120,
                              update_batch=8, seed=int(config["seed"]) + 2,
                              extent=float(config["extent"]))
        spans = capture_spans(lambda: self._run_service(
            trace, context["coords"], context["colors"], "auto",
            int(config["window"])))
        return {"requests": len(trace), "routing": "auto", "spans": spans}


# --------------------------------------------------------------------------- #
# parallel
# --------------------------------------------------------------------------- #

class ParallelSuite(GridSuite):
    """Pickle-based process pool vs zero-copy shared-memory execution."""

    name = "parallel"
    description = ("same exact-rectangle batch on serial / process / "
                   "shared-process engines, bit-for-bit gated")

    def defaults(self, quick: bool) -> Dict[str, object]:
        """Dataset size, batch rounds and the executor axis."""
        return {
            "n": 60_000 if quick else 200_000,
            "rounds": 3 if quick else 4,
            "workers": 2,
            "executors": ["serial", "process", "shared-process"],
        }

    def build(self, config):
        """One large weighted dataset; two rectangle queries with distinct
        plans so nothing is answered from a cache."""
        from ..datasets import uniform_weighted_points
        from ..engine import Query

        n = int(config["n"])
        points, weights = uniform_weighted_points(n, dim=2, extent=100.0,
                                                  seed=7)
        cases = [GridCase(self.name, "rectangle-batch", n, executor=executor)
                 for executor in config["executors"]]
        return cases, {"points": points, "weights": weights,
                       "queries": [Query.rectangle(2.0, 1.6),
                                   Query.rectangle(2.5, 2.0)],
                       "warmup": Query.rectangle(3.0, 2.4),
                       "raw": {}}

    def run_case(self, case, config, context):
        """Time ``rounds`` replays of the batch with the result cache off;
        round 1 is the cold publish/pickle round, later rounds the warm
        steady state."""
        from ..engine import QueryEngine

        engine = QueryEngine(context["points"], weights=context["weights"],
                             executor=case.executor,
                             workers=int(config["workers"]), cache_size=0)
        try:
            setup_started = time.perf_counter()
            engine.solve(context["warmup"])  # start the pool outside the timer
            setup = time.perf_counter() - setup_started
            round_times: List[float] = []
            batch_results = []
            for _ in range(int(config["rounds"])):
                started = time.perf_counter()
                batch_results = engine.solve_batch(context["queries"])
                round_times.append(time.perf_counter() - started)
            stats = dict(engine.stats)
        finally:
            engine.close()
        context["raw"][case.executor] = batch_results
        warm = (round(sum(round_times[1:]) / (len(round_times) - 1), 4)
                if len(round_times) > 1 else None)
        return CaseResult(case.case_id, case.axes, {
            "seconds": round(sum(round_times), 6),
            "setup_seconds": round(setup, 4),
            "cold_seconds": round(round_times[0], 4),
            "warm_seconds": warm,
            "shards_solved": stats["shards_solved"],
        })

    def finish(self, results, config, context):
        """Bit-for-bit gate vs serial + shared-process-beats-process gates."""
        by_executor = {r.axes["executor"]: r for r in results}
        serial_raw = context["raw"].get("serial", [])
        checks: List[CheckResult] = []
        for executor in ("process", "shared-process"):
            mismatches = [
                "%s: value=%r center=%r vs serial value=%r center=%r"
                % (query.describe(), result.value, result.center,
                   reference.value, reference.center)
                for query, reference, result in zip(
                    context["queries"], serial_raw,
                    context["raw"].get(executor, []))
                if (result.value != reference.value
                    or result.center != reference.center)]
            checks.append(CheckResult(
                "%s bit-for-bit vs serial" % executor,
                not mismatches, "; ".join(mismatches)))
        summary: Dict[str, object] = {}
        gates: Dict[str, object] = {}
        process = by_executor.get("process")
        shared = by_executor.get("shared-process")
        if process and shared and shared.metrics["seconds"] > 0:
            total = round(process.metrics["seconds"]
                          / shared.metrics["seconds"], 3)
            summary["speedup_shared_vs_process_total"] = total
            gates["speedup_shared_vs_process_total"] = total
            if process.metrics["warm_seconds"] and shared.metrics["warm_seconds"]:
                warm = round(process.metrics["warm_seconds"]
                             / shared.metrics["warm_seconds"], 3)
                summary["speedup_shared_vs_process_warm"] = warm
                gates["speedup_shared_vs_process_warm"] = warm
            checks.append(CheckResult(
                "shared-process beats the pickle-based process backend",
                total > 1.0, "shared-process is %.2fx process" % total))
        return checks, summary, gates

    def span_probe(self, config, context):
        """One traced shared-process batch replay for per-phase attribution."""
        from ..engine import QueryEngine

        def replay():
            engine = QueryEngine(context["points"], weights=context["weights"],
                                 executor="shared-process",
                                 workers=int(config["workers"]), cache_size=0)
            try:
                engine.solve_batch(context["queries"])
            finally:
                engine.close()
        return {"executor": "shared-process",
                "queries": len(context["queries"]),
                "spans": capture_spans(replay)}


# --------------------------------------------------------------------------- #
# serving_slo
# --------------------------------------------------------------------------- #

class ServingSloSuite(GridSuite):
    """Open-loop SLO latency of the network front end, over a real socket.

    Every case boots a fresh :class:`repro.net.MaxRSServer` (an embedded
    asyncio thread on an ephemeral port) over a fresh
    :class:`~repro.service.MaxRSService` and replays a query-only trace with
    :func:`repro.net.run_loadgen` -- requests fire at their recorded arrival
    times, so the measured p50/p95/p99 are true open-loop latencies (from
    the *scheduled* send, coordinated-omission-free).

    Two case families:

    * ``steady`` -- the numpy-pinned default catalog at >= 2 fixed offered
      rates the service sustains.  Hard checks: nothing sheds, and every
      wire answer is **bit-identical** (encoding-equal) to an in-process
      :meth:`~repro.service.MaxRSService.serve_trace` replay of the same
      trace.  The tracked gate per rate is ``achieved_over_offered`` (a
      machine-portable ratio ~1.0 while the server keeps up).
    * ``overload`` -- distinct slow pure-Python rectangle queries offered
      far above capacity at a deliberately small admission queue.  Hard
      checks: the server *sheds* (503s) instead of queueing unboundedly,
      and the observed queue depth never exceeds ``max_pending``.
    """

    name = "serving_slo"
    description = ("open-loop socket replay: steady-rate latency percentiles "
                   "+ bit-identical wire answers + bounded-queue overload shed")

    def defaults(self, quick: bool) -> Dict[str, object]:
        """Trace sizes, the fixed offered rates, and the overload shape."""
        return {
            "requests": 120 if quick else 400,
            "n_points": 300 if quick else 600,
            "base_rate": 100.0,
            "rate_multipliers": [1.0, 3.0],
            "clients": 8,
            "max_pending": 256,
            "overload_requests": 150 if quick else 300,
            "overload_points": 1500 if quick else 3000,
            "overload_multiplier": 15.0,
            "overload_max_pending": 16,
            "overload_max_batch": 4,
            "seed": 11,
        }

    def _slow_catalog(self):
        # Distinct widths defeat coalescing/caching across families; the
        # pure-Python backend makes each solve slow enough to overload.
        from ..engine import Query
        return [Query.rectangle(1.0 + 0.001 * i, 1.0, backend="python")
                for i in range(40)]

    def build(self, config):
        """Dataset + steady/overload traces + the in-process reference."""
        from ..datasets import default_query_catalog, request_trace, uniform_points
        from ..net import result_to_dict
        from ..service import MaxRSService

        seed = int(config["seed"])
        coords = uniform_points(int(config["n_points"]), seed=seed)
        # backend="numpy" pins the kernel per query: "auto" would resolve
        # per micro-batch, and differing batch shapes between the wire and
        # the in-process replay could pick different (tie-breaking) kernels.
        catalog = default_query_catalog(backend="numpy", heavy=False)
        steady = list(request_trace(
            int(config["requests"]), catalog=catalog, monitor_fraction=0.0,
            update_every=0, rate=float(config["base_rate"]), seed=seed))
        overload = list(request_trace(
            int(config["overload_requests"]), catalog=self._slow_catalog(),
            monitor_fraction=0.0, update_every=0,
            rate=float(config["base_rate"]), seed=seed + 1))
        with MaxRSService(coords) as service:
            replay = service.serve_trace(steady)
        reference = [None if response.result is None
                     else result_to_dict(response.result)
                     for response in replay.responses]
        cases = [GridCase(self.name, "steady", len(steady),
                          executor="x%g" % multiplier)
                 for multiplier in config["rate_multipliers"]]
        cases.append(GridCase(self.name, "overload", len(overload),
                              executor="x%g" % config["overload_multiplier"]))
        overload_coords = uniform_points(int(config["overload_points"]),
                                         seed=seed + 2)
        return cases, {"coords": coords, "overload_coords": overload_coords,
                       "steady": steady, "overload": overload,
                       "reference": reference, "reports": {}, "depths": {}}

    def _replay(self, coords, events, *, speedup, clients, max_pending,
                max_batch=None, timeout=60.0):
        from ..net import MaxRSServer, run_loadgen
        from ..service import MaxRSService

        service = MaxRSService(coords)
        server = MaxRSServer(service, max_pending=max_pending,
                             max_batch=max_batch)
        server.start_in_thread()
        try:
            report = run_loadgen(server.host, server.port, events,
                                 speedup=speedup, clients=clients,
                                 timeout=timeout)
            depth = server.snapshot()["server"]["max_queue_depth"]
        finally:
            server.stop()
            service.close()
        return report, depth

    def run_case(self, case, config, context):
        """One socket replay: fresh server + service, open-loop loadgen."""
        multiplier = float(case.executor.lstrip("x"))
        if case.workload == "steady":
            events, coords = context["steady"], context["coords"]
            max_pending, max_batch = int(config["max_pending"]), None
        else:
            events, coords = context["overload"], context["overload_coords"]
            max_pending = int(config["overload_max_pending"])
            max_batch = int(config["overload_max_batch"])
        report, depth = self._replay(
            coords, events, speedup=multiplier,
            clients=int(config["clients"]), max_pending=max_pending,
            max_batch=max_batch)
        context["reports"][(case.workload, case.executor)] = report
        context["depths"][(case.workload, case.executor)] = (depth, max_pending)
        latency = report.percentiles()
        metrics = {
            "requests": report.requests,
            "served": report.served,
            "shed": report.shed,
            "errors": report.errors,
            "offered_per_sec": round(report.offered_rate, 3),
            "achieved_per_sec": round(report.achieved_rate, 3),
            "shed_rate": round(report.shed_rate, 4),
            "max_queue_depth": depth,
            "latency_p50_ms": round(latency["p50"] * 1e3, 3),
            "latency_p95_ms": round(latency["p95"] * 1e3, 3),
            "latency_p99_ms": round(latency["p99"] * 1e3, 3),
        }
        return CaseResult(case.case_id, case.axes, metrics)

    def finish(self, results, config, context):
        """Differential + no-shed gates per steady rate; bounded overload."""
        checks: List[CheckResult] = []
        summary: Dict[str, object] = {}
        gates: Dict[str, object] = {}
        reference = context["reference"]
        for (workload, executor), report in sorted(context["reports"].items()):
            tag = executor.lstrip("x")
            if workload == "steady":
                mismatches = []
                for record, expected in zip(report.records, reference):
                    wire = (record.response.result
                            if record.response is not None else None)
                    if wire != expected:
                        mismatches.append(
                            "request %d: wire %r != in-process %r"
                            % (record.index, wire, expected))
                checks.append(CheckResult(
                    "steady x%s wire answers bit-identical to serve_trace "
                    "(%d compared)" % (tag, len(report.records)),
                    not mismatches, "; ".join(mismatches[:3])))
                checks.append(CheckResult(
                    "steady x%s served without shedding" % tag,
                    report.shed == 0 and report.errors == 0,
                    "shed=%d errors=%d" % (report.shed, report.errors)))
                ratio = round(min(report.achieved_rate
                                  / report.offered_rate, 1.0), 3)
                summary["achieved_over_offered_x%s" % tag] = ratio
                gates["achieved_over_offered_x%s" % tag] = ratio
            else:
                depth, max_pending = context["depths"][(workload, executor)]
                checks.append(CheckResult(
                    "overload x%s sheds instead of queueing unboundedly" % tag,
                    report.shed > 0,
                    "shed=%d of %d" % (report.shed, report.requests)))
                checks.append(CheckResult(
                    "overload x%s queue depth bounded by max_pending=%d"
                    % (tag, max_pending),
                    depth <= max_pending,
                    "max depth observed %d" % depth))
                summary["overload_shed_rate"] = round(report.shed_rate, 4)
                summary["overload_max_queue_depth"] = depth
        return checks, summary, gates

    def span_probe(self, config, context):
        """One short traced socket replay: where wire time goes
        (accept/decode/dispatch/serve/respond)."""
        events = context["steady"][:40]

        def replay():
            self._replay(context["coords"], events, speedup=1.0,
                         clients=int(config["clients"]),
                         max_pending=int(config["max_pending"]))
        return {"requests": len(events), "spans": capture_spans(replay)}


SUITES: Dict[str, Callable[[], GridSuite]] = {
    suite.name: suite for suite in
    (KernelsSuite, EngineSuite, StreamingSuite, ServiceSuite, ParallelSuite,
     ZooSuite, ServingSloSuite)
}
"""Registry of the built-in grid suites, keyed by suite name."""


def get_suite(name: str) -> GridSuite:
    """Instantiate the named suite; raises ``KeyError`` with the known names
    on a typo."""
    try:
        factory = SUITES[name]
    except KeyError:
        raise KeyError("unknown bench suite %r (known: %s)"
                       % (name, ", ".join(sorted(SUITES))))
    return factory()
