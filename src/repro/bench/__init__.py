"""Benchmark harness: timing helpers, table formatting and the E1-E15 experiments.

The paper has no empirical tables (it is a theory paper), so EXPERIMENTS.md
defines one experiment per theorem / claim (see DESIGN.md section 4).  Each
experiment is a function in :mod:`repro.bench.experiments` (E1-E10) or
:mod:`repro.bench.experiments_extended` (E11-E15) that generates the
workload, runs the relevant solvers and returns an :class:`ExperimentReport`
whose rows can be printed as a plain-text table; ``benchmarks/`` wraps the hot
kernels of the same experiments in pytest-benchmark targets, and
:mod:`repro.bench.recorder` archives reports as CSV/JSON.
"""

from .harness import ExperimentReport, Timer, format_table, geometric_sizes
from .recorder import report_to_dict, write_report_csv, write_reports_csv_dir, write_reports_json
from . import experiments
from . import experiments_extended

__all__ = [
    "Timer",
    "ExperimentReport",
    "format_table",
    "geometric_sizes",
    "experiments",
    "experiments_extended",
    "report_to_dict",
    "write_report_csv",
    "write_reports_csv_dir",
    "write_reports_json",
]
